"""BERT encoder models (Devlin et al., 2018).

BERT-base and BERT-large are the encoder-only benchmarks of the paper
(Figs. 1(b), 5(c), 6(b), 14, 16).  Encoders process the whole sequence in
one pass, so the workload phase is forced to ``ENCODE``.
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...ir.tensor import DataType
from ..workload import Workload
from .common import TransformerConfig, build_transformer_graph

BERT_BASE = TransformerConfig(
    name="bert-base",
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    ffn_hidden=3072,
    vocab_size=30522,
    activation="gelu",
    gated_ffn=False,
    norm="layernorm",
    causal=False,
)

BERT_LARGE = TransformerConfig(
    name="bert-large",
    hidden_size=1024,
    num_layers=24,
    num_heads=16,
    ffn_hidden=4096,
    vocab_size=30522,
    activation="gelu",
    gated_ffn=False,
    norm="layernorm",
    causal=False,
)


def build_bert_base(
    workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8
) -> Graph:
    """Build a BERT-base encoder graph."""
    return build_transformer_graph(BERT_BASE, workload.encode(), blocks=blocks, dtype=dtype)


def build_bert_large(
    workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8
) -> Graph:
    """Build a BERT-large encoder graph (the paper's "BERT" benchmark)."""
    return build_transformer_graph(BERT_LARGE, workload.encode(), blocks=blocks, dtype=dtype)
