"""Experiment harness: one module per paper table/figure.

==================  ==========================================
Paper artefact      Module
==================  ==========================================
Fig. 1(b), 5, 6     :mod:`repro.experiments.motivation`
Fig. 14             :mod:`repro.experiments.end_to_end`
Fig. 15             :mod:`repro.experiments.allocation_report`
Fig. 16             :mod:`repro.experiments.workload_scale`
Fig. 17             :mod:`repro.experiments.generative`
Fig. 18             :mod:`repro.experiments.compile_time`
§5.5 analyses       :mod:`repro.experiments.overheads`
Sensitivity (ext.)  :mod:`repro.experiments.sensitivity`
SLO curves (ext.)   :mod:`repro.experiments.serving`
==================  ==========================================
"""

from .allocation_report import allocation_report
from .common import (
    COMPILER_NAMES,
    FIG14_MODELS,
    FIG16_MODELS,
    FIG17_MODELS,
    encode_workload,
    generative_cycles,
    geometric_mean,
    make_compiler,
    run_model,
    speedup,
)
from .compile_time import measure_compile_time
from .end_to_end import run_end_to_end, summarize
from .generative import run_generative
from .motivation import (
    allocation_heatmaps,
    bert_intensity_vs_sequence,
    intensity_comparison,
    mode_ratio_curves,
    resnet_layer_intensity,
)
from .overheads import prime_scalability, switch_overhead
from .sensitivity import run_sensitivity
from .serving import run_slo_curve
from .workload_scale import memory_ratio_trend, run_workload_scale

__all__ = [
    "COMPILER_NAMES",
    "FIG14_MODELS",
    "FIG16_MODELS",
    "FIG17_MODELS",
    "allocation_heatmaps",
    "allocation_report",
    "bert_intensity_vs_sequence",
    "encode_workload",
    "generative_cycles",
    "geometric_mean",
    "intensity_comparison",
    "make_compiler",
    "measure_compile_time",
    "memory_ratio_trend",
    "mode_ratio_curves",
    "prime_scalability",
    "resnet_layer_intensity",
    "run_end_to_end",
    "run_sensitivity",
    "run_generative",
    "run_model",
    "run_slo_curve",
    "run_workload_scale",
    "speedup",
    "summarize",
    "switch_overhead",
]
