"""Inter-segment overhead model (Eqs. 1, 2 and 4 of the paper).

When execution moves from segment ``S'`` to segment ``S`` three costs
arise (Fig. 10):

1. **Write-back** ``T_wb`` — live intermediate data held in memory-mode
   arrays of ``S'`` that the next segments still need, but that does not
   fit in the memory capacity carried into ``S``, must be stored to main
   memory (and later re-loaded).
2. **Mode switch** ``T_swc`` — arrays changing between compute and memory
   mode pay the per-array switch latency (Eq. 1).
3. **Weight reload** ``T_rw`` — compute arrays of ``S`` must be programmed
   with the weights of the new segment's operators (Eq. 2), bounded from
   below by the time to fetch those weights over the off-chip link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from ..hardware.deha import DualModeHardwareAbstraction
from .arithmetic import OperatorProfile
from .latency import OperatorAllocation


@dataclass(frozen=True)
class SegmentResources:
    """Aggregate mode allocation of one segment.

    Attributes:
        compute_arrays: Total arrays in compute mode across the segment.
        memory_arrays: Total arrays in memory mode across the segment
            (operator buffers plus boundary buffers).
        live_output_elements: Elements produced by the segment that later
            segments (or the graph output) still need.
        static_weight_elements: Static weights the segment's compute arrays
            must be programmed with.
        idle_arrays: Arrays the segment leaves unused.  A dual-mode
            compiler can switch them to memory mode to keep live data on
            chip across the segment boundary; a fixed-mode compiler cannot.
    """

    compute_arrays: int
    memory_arrays: int
    live_output_elements: int = 0
    static_weight_elements: int = 0
    idle_arrays: int = 0

    @property
    def total_arrays(self) -> int:
        """Total arrays the segment occupies."""
        return self.compute_arrays + self.memory_arrays


def aggregate_resources(
    profiles: Mapping[str, OperatorProfile],
    allocations: Mapping[str, OperatorAllocation],
    live_output_elements: int = 0,
    num_arrays_total: Optional[int] = None,
    static_weight_elements: Optional[int] = None,
) -> SegmentResources:
    """Summarise a segment's allocation for the inter-segment cost model.

    ``static_weight_elements`` optionally carries the window's
    already-aggregated static weights (the segmentation DP precomputes
    them as prefix sums); when omitted they are summed from the profiles
    here — both paths are the same integer sum.
    """
    compute = sum(allocations[name].compute_arrays for name in profiles)
    memory = sum(allocations[name].memory_arrays for name in profiles)
    weights = (
        static_weight_elements
        if static_weight_elements is not None
        else sum(p.weight_elements for p in profiles.values() if p.has_static_weight)
    )
    idle = max(0, num_arrays_total - compute - memory) if num_arrays_total is not None else 0
    return SegmentResources(
        compute_arrays=compute,
        memory_arrays=memory,
        live_output_elements=live_output_elements,
        static_weight_elements=weights,
        idle_arrays=idle,
    )


def mode_switch_counts(
    previous: Optional[SegmentResources], current: SegmentResources
) -> Dict[str, int]:
    """Number of arrays switching mode between two adjacent segments.

    Arrays keep their mode whenever possible (the code generator assigns
    physical arrays to maximise reuse), so only the *net* change in each
    direction incurs switches:

    * memory -> compute: the new segment needs more compute arrays than the
      previous one had, and they are taken from former memory arrays first.
    * compute -> memory: symmetric.
    """
    if previous is None:
        # The first segment configures idle arrays; the paper charges no
        # switch cost for initial configuration.
        return {"memory_to_compute": 0, "compute_to_memory": 0}
    extra_compute = max(0, current.compute_arrays - previous.compute_arrays)
    extra_memory = max(0, current.memory_arrays - previous.memory_arrays)
    memory_to_compute = min(extra_compute, previous.memory_arrays)
    compute_to_memory = min(extra_memory, previous.compute_arrays)
    return {
        "memory_to_compute": memory_to_compute,
        "compute_to_memory": compute_to_memory,
    }


def mode_switch_cycles(
    previous: Optional[SegmentResources],
    current: SegmentResources,
    hardware: DualModeHardwareAbstraction,
) -> float:
    """``T_swc`` (Eq. 1): per-array switch latency times switch counts."""
    counts = mode_switch_counts(previous, current)
    return (
        counts["memory_to_compute"] * hardware.switch_latency_m2c
        + counts["compute_to_memory"] * hardware.switch_latency_c2m
    )


def writeback_cycles(
    previous: Optional[SegmentResources],
    current: SegmentResources,
    hardware: DualModeHardwareAbstraction,
    allow_boundary_buffering: bool = True,
) -> float:
    """``T_wb``: spilling live data that no longer fits on chip.

    The previous segment's live outputs preferentially stay on chip — in
    the native buffer and, for a dual-mode compiler, in arrays switched to
    memory mode: the operator buffers of the next segment plus any arrays
    both segments leave idle (boundary buffers).  The overflow is written
    back to main memory and read again when consumed, both over the
    external link.  Data that is consumed immediately and never reused
    (e.g. softmax probabilities) never appears in ``live_output_elements``.

    Args:
        allow_boundary_buffering: Whether idle arrays may be repurposed as
            memory-mode boundary buffers.  Fixed-mode baselines pass False
            — their idle arrays cannot hold data.
    """
    if previous is None or previous.live_output_elements == 0:
        return 0.0
    retained_capacity = hardware.buffer_elements
    if allow_boundary_buffering:
        retained_capacity += current.memory_arrays * hardware.array_capacity_elements
        boundary_arrays = min(previous.idle_arrays, current.idle_arrays)
        retained_capacity += boundary_arrays * hardware.array_capacity_elements
    overflow = max(0, previous.live_output_elements - retained_capacity)
    if overflow == 0:
        return 0.0
    # store + reload across the external link
    return 2.0 * overflow / hardware.d_extern


def weight_reload_cycles(
    profiles: Mapping[str, OperatorProfile],
    allocations: Mapping[str, OperatorAllocation],
    hardware: DualModeHardwareAbstraction,
    include_offchip_transfer: bool = False,
) -> float:
    """``T_rw`` (Eq. 2): programming the new segment's compute arrays.

    Per Eq. 2 the reload of different operators overlaps (write ports are
    per-array), so the array-programming term is the maximum over
    operators of ``Com_Oi x Latency_write``.  Following the paper, the
    off-chip transfer of those weights is assumed to be prefetched /
    overlapped; pass ``include_offchip_transfer=True`` to additionally
    bound the reload by the external-link transfer time (used by the
    corresponding ablation benchmark).
    """
    if not profiles:
        return 0.0
    per_operator = 0.0
    static_weight_elements = 0
    for name, profile in profiles.items():
        if not profile.has_static_weight:
            continue
        allocation = allocations[name]
        required = profile.min_compute_arrays(hardware)
        arrays_written = min(allocation.compute_arrays, required) or required
        per_operator = max(per_operator, arrays_written * hardware.array_write_latency_cycles)
        static_weight_elements += profile.weight_elements
    if include_offchip_transfer and static_weight_elements:
        transfer = static_weight_elements / hardware.d_extern
        return max(per_operator, transfer)
    return per_operator


def inter_segment_cycles(
    previous: Optional[SegmentResources],
    current: SegmentResources,
    profiles: Mapping[str, OperatorProfile],
    allocations: Mapping[str, OperatorAllocation],
    hardware: DualModeHardwareAbstraction,
    include_switch_cost: bool = True,
    allow_boundary_buffering: bool = True,
) -> float:
    """``T_inter`` (Eq. 4): write-back + mode switch + weight reload."""
    total = writeback_cycles(
        previous, current, hardware, allow_boundary_buffering=allow_boundary_buffering
    )
    if include_switch_cost:
        total += mode_switch_cycles(previous, current, hardware)
    total += weight_reload_cycles(profiles, allocations, hardware)
    return total


def inter_segment_breakdown(
    previous: Optional[SegmentResources],
    current: SegmentResources,
    profiles: Mapping[str, OperatorProfile],
    allocations: Mapping[str, OperatorAllocation],
    hardware: DualModeHardwareAbstraction,
    allow_boundary_buffering: bool = True,
) -> Dict[str, float]:
    """Per-component inter-segment overhead (used by reports and §5.5)."""
    return {
        "writeback": writeback_cycles(
            previous, current, hardware, allow_boundary_buffering=allow_boundary_buffering
        ),
        "mode_switch": mode_switch_cycles(previous, current, hardware),
        "weight_reload": weight_reload_cycles(profiles, allocations, hardware),
    }
