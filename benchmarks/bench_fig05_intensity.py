"""Figure 5(c): average arithmetic intensity per benchmark model.

The paper motivates dual-mode switching with the spread of arithmetic
intensities across networks: ResNet-50 and VGG sit in the hundreds of
FLOPs per element moved, while single-batch LLaMA 2 decoding sits around 2.
"""

import pytest

from conftest import record

from repro.experiments import intensity_comparison


@pytest.mark.benchmark(group="fig05")
def test_fig05_arithmetic_intensity(benchmark, chip):
    """Average arithmetic intensity per model (Fig. 5(c))."""
    rows = benchmark.pedantic(intensity_comparison, rounds=1, iterations=1)
    lines = ["Fig. 5(c): average arithmetic intensity (FLOPs / element moved)"]
    for model, value in rows.items():
        lines.append(f"  {model:12s} {value:8.1f}")
    record(benchmark, rows, "\n".join(lines))
    assert rows["llama2-7b"] < 5
    assert rows["resnet50"] > 50
    assert rows["vgg16"] > rows["llama2-7b"]
