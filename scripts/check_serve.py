#!/usr/bin/env python3
"""CI gate for the serving layer (``repro serve`` + ``repro cache-server``).

Boots both servers as real subprocesses on ephemeral ports (discovered
via ``--port-file``) and asserts the serving contract end to end:

1. N concurrent clients submitting the *identical* job are coalesced
   into exactly one compile — ``/metrics`` reports
   ``serve_compiles_executed 1`` and N-1 coalesced hits, and the number
   of allocator solves the daemon performed matches one local cold
   compile's;
2. every remote result is fingerprint-bit-identical to a local
   ``Session.compile`` of the same job;
3. a *fresh process* with an empty local cache directory, mounting only
   the networked cache tier, warm-compiles the same model with zero
   allocator solves and the same fingerprint;
4. SIGTERM drains both servers cleanly: they run admitted work to
   completion, print their "drained cleanly" line and exit 0.

Run from the repository root::

    PYTHONPATH=src python scripts/check_serve.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

CLIENTS = 4
MODEL = "tiny-mlp"
HARDWARE = "small-test-chip"

_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = "src" + os.pathsep + _ENV.get("PYTHONPATH", "")

WARM_PROCESS_SCRIPT = """
import sys
from repro.api import Session
from repro.core import CompilerOptions

remote_url, cache_dir = sys.argv[1], sys.argv[2]
with Session(hardware="%(hardware)s", cache_dir=cache_dir,
             remote_cache=remote_url) as session:
    program = session.compile(
        "%(model)s", options=CompilerOptions(generate_code=False)
    )
    assert program.stats["allocator_solves"] == 0, (
        "empty-cache client re-solved despite the remote tier: "
        f"{program.stats['allocator_solves']} solves"
    )
    assert session.cache_stats.remote_hits > 0, session.cache_stats
print(program.fingerprint())
""" % {"hardware": HARDWARE, "model": MODEL}


def start_server(args, port_file):
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli"] + args + ["--port-file", port_file],
        env=_ENV,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise AssertionError(f"server {args[0]} died on startup:\n{out}")
        if os.path.exists(port_file) and os.path.getsize(port_file) > 0:
            with open(port_file, "r", encoding="utf-8") as handle:
                return proc, f"http://127.0.0.1:{int(handle.read().strip())}"
        time.sleep(0.05)
    raise AssertionError(f"server {args[0]} never published its port")


def drain(proc, role):
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    assert proc.returncode == 0, f"{role} exited {proc.returncode}:\n{out}"
    assert "drained cleanly" in out, f"{role} did not report a drain:\n{out}"
    print(f"{role}: SIGTERM drained cleanly, exit 0")


def metric(text, name):
    match = re.search(rf"^{re.escape(name)} (\d+)$", text, re.MULTILINE)
    assert match, f"metric {name} missing from /metrics exposition:\n{text}"
    return int(match.group(1))


def main() -> int:
    from repro.api import Session
    from repro.core import CompilerOptions
    from repro.serve import Client

    work = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    cache_proc, cache_url = start_server(
        ["cache-server", "--cache-dir", os.path.join(work, "shared-cache")],
        os.path.join(work, "cs.port"),
    )
    serve_proc, serve_url = start_server(
        [
            "serve",
            "--cache-dir", os.path.join(work, "daemon-cache"),
            "--remote-cache", cache_url,
            "--workers", "2",
        ],
        os.path.join(work, "serve.port"),
    )
    print(f"cache server at {cache_url}, compile daemon at {serve_url}")

    with Client(serve_url) as probe:
        assert probe.healthy(wait_seconds=10), "daemon never became healthy"

    # 1. N truly concurrent identical requests -> exactly one compile.
    barrier = threading.Barrier(CLIENTS)
    results, errors = [], []

    def one_client():
        try:
            with Client(serve_url) as client:
                barrier.wait(timeout=30)
                results.append(client.compile(MODEL, hardware=HARDWARE))
        except Exception as exc:  # surfaced below, not swallowed
            errors.append(exc)

    threads = [threading.Thread(target=one_client) for _ in range(CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors, f"concurrent clients failed: {errors!r}"
    assert len(results) == CLIENTS

    fingerprints = {result.fingerprint for result in results}
    assert len(fingerprints) == 1, f"divergent fingerprints: {fingerprints}"
    assert all(result.verify() for result in results)
    coalesced = sum(1 for result in results if result.coalesced)
    assert coalesced == CLIENTS - 1, (
        f"expected {CLIENTS - 1} coalesced followers, saw {coalesced}"
    )

    # 2. Bit-identical to a local compile; the daemon solved exactly once.
    local = Session(hardware=HARDWARE).compile(
        MODEL, options=CompilerOptions(generate_code=False)
    )
    assert local.fingerprint() == fingerprints.pop(), "remote != local compile"

    with Client(serve_url) as client:
        metrics = client.metrics_text()
    assert metric(metrics, "serve_compiles_executed") == 1, metrics
    assert metric(metrics, "serve_coalesced_hits") == CLIENTS - 1, metrics
    solves = metric(metrics, "serve_solves_executed")
    assert solves == local.stats["allocator_solves"] > 0, (
        f"daemon solves {solves} != local cold compile's "
        f"{local.stats['allocator_solves']}"
    )
    print(
        f"coalescing ok: {CLIENTS} clients, 1 compile, "
        f"{coalesced} coalesced, {solves} solves"
    )

    # 3. Fresh process, empty local cache, remote tier only: 0 solves.
    warm = subprocess.run(
        [sys.executable, "-", cache_url, os.path.join(work, "fresh-cache")],
        input=WARM_PROCESS_SCRIPT,
        env=_ENV,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert warm.returncode == 0, (
        f"warm-process client failed:\n{warm.stdout}\n{warm.stderr}"
    )
    warm_fingerprint = warm.stdout.strip().splitlines()[-1]
    assert warm_fingerprint == local.fingerprint(), (
        f"warm fingerprint {warm_fingerprint} != local {local.fingerprint()}"
    )
    print("remote warm start ok: 0 solves, fingerprint bit-identical")

    # 4. Graceful SIGTERM drain, exit 0, on both servers.
    drain(serve_proc, "compile daemon")
    drain(cache_proc, "cache server")
    print("serve smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
