"""Tests for the graph builder and the lowering/partitioning transforms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import (
    GraphBuilder,
    Linear,
    MatmulDims,
    TensorSpec,
    arrays_for_elements,
    arrays_for_stationary,
    ceil_div,
    fuse_auxiliary_traffic,
    lower_to_matmuls,
    partition_operator,
    tile_counts,
)
from repro.ir.transforms import FUSEABLE_OP_TYPES


class TestBuilderShapes:
    def test_conv_output_shape(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (1, 3, 32, 32))
        y = builder.conv2d(x, 16, kernel=3, stride=2, padding=1)
        assert y.shape == (1, 16, 16, 16)

    def test_conv_no_padding(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (1, 3, 32, 32))
        y = builder.conv2d(x, 8, kernel=5, stride=1, padding=0)
        assert y.shape == (1, 8, 28, 28)

    def test_pool_output_shape(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (1, 8, 16, 16))
        y = builder.pool2d(x, kernel=2, stride=2)
        assert y.shape == (1, 8, 8, 8)

    def test_linear_keeps_leading_dims(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (2, 5, 64))
        y = builder.linear(x, 128)
        assert y.shape == (2, 5, 128)

    def test_matmul_shape(self):
        builder = GraphBuilder("b")
        a = builder.input("a", (2, 4, 8))
        b = builder.input("b", (2, 8, 6))
        y = builder.matmul(a, b)
        assert y.shape == (2, 4, 6)

    def test_global_avg_pool_shape(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (3, 32, 7, 7))
        y = builder.global_avg_pool(x)
        assert y.shape == (3, 32)

    def test_concat_shape(self):
        builder = GraphBuilder("b")
        a = builder.input("a", (2, 3))
        b = builder.input("b", (2, 5))
        y = builder.concat([a, b], axis=1)
        assert y.shape == (2, 8)

    def test_embedding_shape(self):
        builder = GraphBuilder("b")
        ids = builder.input("ids", (2, 10))
        y = builder.embedding(ids, vocab_size=100, hidden=32)
        assert y.shape == (2, 10, 32)

    def test_auto_naming_unique(self):
        builder = GraphBuilder("b")
        x = builder.input("x", (1, 8))
        builder.linear(x, 8)
        builder.linear(x, 8)  # same source, fresh names
        graph = builder.finish()
        assert len({op.name for op in graph.operators}) == 2


class TestTilingHelpers:
    def test_ceil_div(self):
        assert ceil_div(10, 3) == 4
        assert ceil_div(9, 3) == 3
        assert ceil_div(1, 100) == 1

    def test_ceil_div_rejects_bad_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_tile_counts(self):
        dims = MatmulDims(m=10, k=100, n=70)
        assert tile_counts(dims, 64, 64) == (2, 2)

    def test_arrays_for_stationary(self):
        dims = MatmulDims(m=1, k=128, n=128)
        assert arrays_for_stationary(dims, 64, 64) == 4

    def test_arrays_for_elements(self):
        assert arrays_for_elements(0, 64, 64) == 0
        assert arrays_for_elements(1, 64, 64) == 1
        assert arrays_for_elements(64 * 64 + 1, 64, 64) == 2

    @given(
        k=st.integers(min_value=1, max_value=2000),
        n=st.integers(min_value=1, max_value=2000),
        rows=st.integers(min_value=8, max_value=256),
        cols=st.integers(min_value=8, max_value=256),
    )
    @settings(max_examples=60, deadline=None)
    def test_tiles_cover_matrix(self, k, n, rows, cols):
        dims = MatmulDims(m=1, k=k, n=n)
        tiles_k, tiles_n = tile_counts(dims, rows, cols)
        assert tiles_k * rows >= k
        assert tiles_n * cols >= n
        assert (tiles_k - 1) * rows < k
        assert (tiles_n - 1) * cols < n


def make_linear(m, k, n):
    return Linear(
        "big",
        input=TensorSpec("x", (m, k)),
        output=TensorSpec("y", (m, n)),
        weight=TensorSpec("w", (k, n)),
    )


class TestPartitioning:
    def test_fitting_operator_single_shard(self):
        op = make_linear(4, 32, 32)
        shards = partition_operator(op, max_stationary_elements=64 * 64, array_rows=64, array_cols=64)
        assert len(shards) == 1
        assert shards[0].operator is op

    def test_oversized_operator_is_split(self):
        op = make_linear(4, 256, 256)
        shards = partition_operator(op, max_stationary_elements=64 * 64, array_rows=64, array_cols=64)
        assert len(shards) > 1

    def test_shards_cover_full_stationary_matrix(self):
        op = make_linear(4, 300, 500)
        shards = partition_operator(op, 4 * 64 * 64, 64, 64)
        covered_k = set()
        covered_n = set()
        for shard in shards:
            covered_k.update(range(*shard.k_range))
            covered_n.update(range(*shard.n_range))
        assert covered_k == set(range(300))
        assert covered_n == set(range(500))

    def test_shard_stationary_fits_budget(self):
        budget = 2 * 64 * 64
        op = make_linear(4, 512, 512)
        for shard in partition_operator(op, budget, 64, 64):
            dims = shard.operator.matmul_dims()
            assert dims.stationary_elements <= budget

    def test_k_split_marks_partial_sums(self):
        op = make_linear(4, 512, 64)
        shards = partition_operator(op, 64 * 64, 64, 64)
        assert len(shards) > 1
        assert all(shard.is_partial_sum for shard in shards)

    def test_n_only_split_has_no_partial_sums(self):
        op = make_linear(4, 64, 512)
        shards = partition_operator(op, 64 * 64, 64, 64)
        assert len(shards) > 1
        assert not any(shard.is_partial_sum for shard in shards)

    def test_shard_attrs_record_parent(self):
        op = make_linear(4, 512, 512)
        shards = partition_operator(op, 64 * 64, 64, 64)
        for index, shard in enumerate(shards):
            assert shard.operator.attrs["parent"] == "big"
            assert shard.operator.attrs["partition_index"] == index
            assert shard.parent == "big"

    def test_non_mappable_operator_rejected(self, tiny_cnn_graph):
        aux = next(op for op in tiny_cnn_graph.operators if not op.is_cim_mappable)
        with pytest.raises(ValueError):
            partition_operator(aux, 64 * 64, 64, 64)

    def test_budget_below_one_array_rejected(self):
        with pytest.raises(ValueError):
            partition_operator(make_linear(4, 256, 256), 10, 64, 64)

    @given(
        k=st.integers(min_value=1, max_value=1500),
        n=st.integers(min_value=1, max_value=1500),
        budget_tiles=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_shards_macs_sum_to_parent(self, k, n, budget_tiles):
        op = make_linear(3, k, n)
        shards = partition_operator(op, budget_tiles * 64 * 64, 64, 64)
        total = sum(
            3 * (s.k_range[1] - s.k_range[0]) * (s.n_range[1] - s.n_range[0]) for s in shards
        )
        assert total == op.macs


class TestAuxiliaryFusion:
    def test_fuseable_types_add_no_traffic(self, tiny_cnn_graph):
        extra = fuse_auxiliary_traffic(tiny_cnn_graph)
        # tiny-cnn only has ReLU / GAP aux ops; GAP adds traffic, ReLU does not.
        gap = next(op for op in tiny_cnn_graph.operators if op.op_type == "global_avg_pool")
        assert sum(extra.values()) >= gap.output_elements
        relu_outputs = sum(
            op.output_elements
            for op in tiny_cnn_graph.operators
            if op.op_type in FUSEABLE_OP_TYPES
        )
        assert sum(extra.values()) < relu_outputs + gap.output_elements + 1

    def test_softmax_traffic_attributed(self, tiny_transformer_graph):
        extra = fuse_auxiliary_traffic(tiny_transformer_graph)
        softmax_out = sum(
            op.output_elements for op in tiny_transformer_graph.operators if op.op_type == "softmax"
        )
        assert sum(extra.values()) >= softmax_out

    def test_keys_are_cim_operators(self, tiny_transformer_graph):
        extra = fuse_auxiliary_traffic(tiny_transformer_graph)
        cim_names = {op.name for op in tiny_transformer_graph.cim_operators()}
        assert set(extra) == cim_names

    def test_lower_to_matmuls_matches_cim_operators(self, tiny_transformer_graph):
        assert [op.name for op in lower_to_matmuls(tiny_transformer_graph)] == [
            op.name for op in tiny_transformer_graph.cim_operators()
        ]
