"""CMSwitch compiler facade over the pass-based pipeline.

:class:`CMSwitchCompiler` runs the full DACO pipeline of the paper —

1. flatten the graph and partition oversized operators,
2. dynamic-programming network segmentation with mode-switch awareness,
3. per-segment MIP allocation of compute / memory arrays with pipelined
   scheduling and weight-duplication refinement,
4. code generation into the dual-mode meta-operator flow (DMO).

Since the pipeline refactor the stages are named, composable
:class:`~repro.pipeline.passes.Pass` objects executed by a
:class:`~repro.pipeline.pipeline.Pipeline` (see :mod:`repro.pipeline`);
this class builds the standard pass sequence, runs it and finalises the
:class:`~repro.core.program.CompiledProgram` that the timing and
functional simulators (and the benchmark harness) consume.  Per-pass
wall times ride on ``CompiledProgram.stats["pass_seconds"]``.

For application code prefer :class:`repro.api.Session`, the stable
facade over compile / batch / DSE / cache; this module remains the
compiler engine underneath it.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from .cache import AllocationCache
from .program import CompiledProgram
from .segmentation import SegmentationOptions, validate_window

# Public re-exports (their historical home).  ``NoFeasiblePlanError`` is
# defined next to the segmenter, which raises it for unmappable
# segments; the plan-arbitration helpers moved to the segmentation
# module when the pipeline package was introduced (it needs them without
# importing this facade).
from .segmentation import (  # noqa: F401  (public re-exports)
    NoFeasiblePlanError,
    choose_plan,
    plan_arrays,
    plan_cost,
)

#: ``CompilerOptions`` fields that steer *how* a compile executes, not
#: *what* it produces.  Excluded from DSE option axes/signatures, wire
#: payloads and request fingerprints: two compiles differing only here
#: yield bit-identical programs, so they must share cache entries,
#: coalesce onto one flight and name one design point.
RUNTIME_OPTION_FIELDS = ("solve_jobs", "speculative_solves")


@dataclass
class CompilerOptions:
    """User-facing compilation options.

    Validated on construction: ``max_segment_operators`` must be an
    ``int`` >= 1 (a clear :class:`ValueError` instead of a deep solver
    failure).  With ``allow_memory_mode=False`` the
    ``fixed_mode_fallback`` flag is meaningless (the primary plan *is*
    fixed-mode): the compiler ignores it, and solve-relevant option
    signatures (DSE point keys — see
    :func:`repro.dse.space.options_signature`) canonicalise it away so
    the two spellings name one configuration.  The field itself is left
    untouched, so re-enabling memory mode (e.g. a
    ``dataclasses.replace`` along a DSE axis) restores the fallback.

    Attributes:
        max_segment_operators: DP window — maximum operators per segment.
        pipelined: Pipeline operators within a segment (Eq. 9 objective).
        include_switch_cost: Charge the Eq. 1 mode-switch latency in the DP.
        use_milp: Use the MILP per-segment allocator (otherwise greedy).
        refine: Apply weight-duplication refinement after allocation.
        allow_memory_mode: Allow arrays in memory mode.  Setting this to
            False degenerates CMSwitch into a fixed-mode compiler and is
            used by baselines/ablations.
        fixed_mode_fallback: Also evaluate the fixed-mode (all-compute)
            plan and keep whichever is faster.  The dual-mode optimisation
            space strictly contains the fixed-mode space, so a production
            compiler never ships a plan worse than the fixed-mode one; the
            extra pass is part of CMSwitch's larger compilation time
            (Fig. 18).
        generate_code: Emit the meta-operator flow alongside the plan.
        solve_jobs: Worker threads for window-allocation solves (the DP
            dispatches each wavefront to a shared
            :class:`~repro.core.solverpool.SolverPool`).  ``None`` (the
            default) keeps the sequential path; a session/service-owned
            pool, when present, takes precedence over this knob.  A
            *runtime* option (see :data:`RUNTIME_OPTION_FIELDS`): it
            never changes the produced program, so it is excluded from
            equality, DSE signatures and wire fingerprints.
        speculative_solves: Opt-in speculative lookahead on the solver
            pool — future DP wavefronts are pre-dispatched before their
            predecessor costs are known.  Programs stay bit-identical;
            solve counts may grow (reported as ``speculative_waste``).
            Runtime option like ``solve_jobs``.
    """

    max_segment_operators: int = 8
    pipelined: bool = True
    include_switch_cost: bool = True
    use_milp: bool = True
    refine: bool = True
    allow_memory_mode: bool = True
    fixed_mode_fallback: bool = True
    generate_code: bool = True
    solve_jobs: Optional[int] = field(default=None, compare=False)
    speculative_solves: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        validate_window(self.max_segment_operators)
        if self.solve_jobs is not None:
            from .solverpool import resolve_workers

            resolve_workers(self.solve_jobs)  # raises ValueError if invalid

    def to_segmentation_options(self) -> SegmentationOptions:
        """Translate to the segmentation pass options."""
        return SegmentationOptions(
            max_segment_operators=self.max_segment_operators,
            pipelined=self.pipelined,
            include_switch_cost=self.include_switch_cost,
            allow_memory_mode=self.allow_memory_mode,
            use_milp=self.use_milp,
            refine=self.refine,
            speculative=self.speculative_solves,
        )


class CMSwitchCompiler:
    """Dual-mode-aware DNN compiler for CIM accelerators (the paper's tool).

    Args:
        hardware: Target dual-mode hardware abstraction (DEHA).
        options: Compilation options; defaults reproduce the paper's setup.
        cache: Optional shared :class:`~repro.core.cache.AllocationCache`.
            With a cache the fixed-mode fallback pass reuses the dual-mode
            pass's MILP solutions (and vice versa, where valid), and
            repeated compiles of the same network skip the solver
            entirely.  Pass one cache to many compilers (or use
            :class:`repro.api.Session`) to share it between compile
            requests.
        pipeline: Optional custom :class:`~repro.pipeline.Pipeline`; the
            standard pass sequence when omitted.  A fresh context is
            created per compile, so one compiler (and one pipeline) can
            serve many graphs.
        solve_memo: Optional per-run :class:`~repro.core.memo.SolveMemo`.
            Unlike the cache it is unbounded, in-memory only and meant to
            live for one run; pass the same memo to many compilers (a DSE
            sweep does) so neighbouring compiles reuse each other's
            allocation solves even without a shared cache.
        obs: Optional :class:`~repro.obs.Observability` bundle; every
            compile's pass spans, allocator-solve spans and cache-tier
            counters land in it.  Defaults to the no-op bundle.
        solver_pool: Optional shared
            :class:`~repro.core.solverpool.SolverPool` for parallel
            window solves.  Pass one pool to many compilers (a
            :class:`~repro.service.CompileService` does) so total solver
            concurrency stays bounded by one worker budget.  When absent
            and ``options.solve_jobs`` is set, each compile builds (and
            closes) an ephemeral pool of that size.

    Example:
        >>> from repro.hardware import dynaplasia
        >>> from repro.models import build_model, Workload
        >>> compiler = CMSwitchCompiler(dynaplasia())
        >>> program = compiler.compile(build_model("tiny-cnn", Workload()))
        >>> program.num_segments >= 1
        True
    """

    name = "cmswitch"

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        options: Optional[CompilerOptions] = None,
        cache: Optional[AllocationCache] = None,
        pipeline=None,
        solve_memo=None,
        obs=None,
        solver_pool=None,
    ) -> None:
        from ..obs import NULL_OBS
        from ..pipeline import build_pipeline

        self.hardware = hardware
        self.options = options or CompilerOptions()
        self.cache = cache
        self.solve_memo = solve_memo
        self.obs = NULL_OBS if obs is None else obs
        self.solver_pool = solver_pool
        self.pipeline = pipeline if pipeline is not None else build_pipeline()

    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile a graph into a dual-mode execution plan.

        Runs the pass pipeline over a fresh
        :class:`~repro.pipeline.context.PipelineContext` and finalises
        the program.

        Args:
            graph: The computation graph (typically from
                :func:`repro.models.build_model`).

        Returns:
            The compiled program with segment plans, predicted latency,
            per-pass timing stats and, when ``generate_code`` is
            enabled, the meta-operator flow.

        Raises:
            NoFeasiblePlanError: If no pass produces a feasible plan for a
                non-empty graph.
        """
        from ..pipeline import PipelineContext, finalize

        pool = self.solver_pool
        ephemeral = None
        if pool is None and self.options.solve_jobs is not None:
            from .solverpool import SolverPool

            pool = ephemeral = SolverPool(self.options.solve_jobs, obs=self.obs)
        ctx = PipelineContext(
            graph=graph,
            hardware=self.hardware,
            options=self.options,
            cache=self.cache,
            solve_memo=self.solve_memo,
            solver_pool=pool,
            obs=self.obs,
            compiler_name=self.name,
            started=time.perf_counter(),
        )
        try:
            self.pipeline.run(ctx)
            return finalize(ctx)
        finally:
            if ephemeral is not None:
                ephemeral.close()


def compile_model(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    options: Optional[CompilerOptions] = None,
    cache: Optional[AllocationCache] = None,
) -> CompiledProgram:
    """Deprecated: compile ``graph`` with :class:`CMSwitchCompiler`.

    .. deprecated:: 0.4
        Use :meth:`repro.api.Session.compile` — one session object
        carries the hardware, cache and backend for every compile, batch
        and DSE entry point.  This shim delegates to a throwaway session
        and produces bit-identical programs.
    """
    warnings.warn(
        "repro.compile_model() is deprecated; use repro.api.Session"
        "(hardware=...).compile(graph) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..api import Session

    session = Session(
        hardware=hardware,
        cache=cache,
        use_cache=cache is not None,
        options=options or CompilerOptions(),
    )
    return session.compile(graph)
