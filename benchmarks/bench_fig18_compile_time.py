"""Figure 18: compilation overhead of CMSwitch vs. CIM-MLC.

CMSwitch explores the additional dual-mode dimension (and runs the
fixed-mode fallback pass), so its compilation time is a small multiple of
CIM-MLC's — the paper reports 2.8x-6.3x, with CNNs costing more than
transformers because a transformer block is compiled once and reused.
"""

import pytest

from conftest import record

from repro.experiments import measure_compile_time
from repro.experiments.compile_time import render_report


@pytest.mark.benchmark(group="fig18")
def test_fig18_compilation_overhead(benchmark, chip, grids):
    """Wall-clock compilation time, CMSwitch vs CIM-MLC (Fig. 18)."""

    def run():
        return measure_compile_time(hardware=chip, repeats=grids["compile_repeats"])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))

    # CMSwitch compiles slower than CIM-MLC but stays within a small multiple.
    for row in rows:
        assert row["overhead_ratio"] >= 1.0
        assert row["overhead_ratio"] <= 20.0
    # Transformers reuse per-block compilation, so they compile faster than
    # the CNNs with their dozens of distinct convolution shapes.
    by_model = {row["model"]: row["cmswitch_seconds"] for row in rows}
    assert by_model["llama2-7b"] <= by_model["resnet18"] * 2.0
