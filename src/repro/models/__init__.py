"""Benchmark model zoo and workload descriptions.

The zoo covers every network in the paper's evaluation (BERT, GPT-2,
LLaMA 2, OPT, MobileNetV2, ResNet, VGG) plus tiny synthetic models used by
the test suite.  Graphs are constructed analytically — shapes, parameter
counts and MAC counts match an ONNX export of the reference PyTorch
implementations.
"""

from .registry import (
    build_model,
    build_tiny_cnn,
    build_tiny_mlp,
    build_tiny_transformer,
    is_transformer,
    list_models,
    register_model,
)
from .workload import Phase, Workload

__all__ = [
    "Phase",
    "Workload",
    "build_model",
    "build_tiny_cnn",
    "build_tiny_mlp",
    "build_tiny_transformer",
    "is_transformer",
    "list_models",
    "register_model",
]
