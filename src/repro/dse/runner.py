"""The DSE runner: strategy-driven, fidelity-aware, resumable exploration.

:class:`DSERunner` wires the subsystem together.  Each iteration it

1. asks the :mod:`strategy <repro.dse.strategies>` for a batch of
   candidate points (bounded by the remaining budget) and resolves the
   batch's evaluation *fidelity* — the strategy's declared rung when the
   runner is in ``auto`` mode, the runner's fixed fidelity otherwise,
2. skips every point the resumable :class:`~repro.dse.state.RunState`
   already holds *at sufficient fidelity* (their stored records are
   still fed back to the strategy so adaptive search resumes with full
   knowledge; an analytical record does not satisfy a compile-fidelity
   request),
3. hands the rest to the cache-aware :class:`~repro.dse.planner.Planner`
   — structural duplicates collapse to one evaluation, warm candidates
   are scheduled before cold ones,
4. evaluates the planned jobs through the batch's tier of the
   :mod:`repro.eval` evaluator layer —
   :class:`~repro.eval.AnalyticalEvaluator` (closed-form lower bounds,
   zero allocator solves), :class:`~repro.eval.CachedEvaluator`
   (store-probe + warm compile) or :class:`~repro.eval.CompileEvaluator`
   (the full pipeline over a :class:`~repro.service.CompileService`) —
   and
5. converts each typed :class:`~repro.eval.Evaluation` to an
   :class:`EvaluationRecord` — latency, energy, array usage, fidelity
   tag, solver statistics — appends it durably to the run state, and
   tells the strategy.

The loop ends when the budget is spent or the strategy exhausts the
space.  The returned :class:`DSEResult` carries every record known at
the end (resumed and new), the aggregate counters the CLI and CI assert
on (evaluated / replicated / skipped / allocator solves / per-fidelity
evaluations), and the Pareto reporting entry points.

:meth:`repro.api.Session.explore` is the public entry point: it builds
a runner sharing the session's allocation cache and backend, so a sweep
warm-starts from every other compile the session served.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.cache import AllocationCache
from ..core.memo import SolveMemo
from ..eval import (
    AnalyticalEvaluator,
    CachedEvaluator,
    CompileEvaluator,
    Evaluation,
    Evaluator,
    GreedyEvaluator,
    fidelity_rank,
)
from ..service import CompileJob, CompileService
from .pareto import (
    DEFAULT_AXES,
    full_fidelity_records,
    pareto_frontier,
    render_report,
    write_csv,
)
from .planner import Planner
from .space import DesignPoint, DesignSpace
from .state import RunState
from .strategies import Strategy, SuccessiveHalvingStrategy, make_strategy

__all__ = [
    "DSEResult",
    "DSERunner",
    "EvaluationRecord",
    "FIDELITY_MODES",
    "OBJECTIVES",
    "run_dse",
]

#: Supported optimisation objectives (record attribute each minimises).
#: ``trace_p99`` scores a point by replaying a request trace (see
#: :mod:`repro.sim.replay`) under the point's hardware/options and
#: taking the p99 latency — tail latency under traffic instead of
#: single-inference latency.  It requires ``DSERunner(trace=...)``.
OBJECTIVES = {
    "latency": "latency_ms",
    "energy": "energy_mj",
    "trace_p99": "trace_p99_ms",
}

#: Valid ``DSERunner(fidelity=...)`` values.  ``"auto"`` defers to the
#: strategy's multi-fidelity schedule (installing a
#: :class:`~repro.dse.strategies.SuccessiveHalvingStrategy` when the
#: given strategy is fidelity-agnostic).
FIDELITY_MODES = ("analytical", "greedy", "cached", "compile", "auto")


@dataclass
class EvaluationRecord:
    """Flat, JSON-serialisable outcome of one design point.

    This is the unit the run state persists, the strategies steer on,
    and the Pareto reports consume.

    ``status`` is one of ``"evaluated"`` (a real evaluation — feasible
    or not), ``"replicated"`` (copied from a structurally identical
    point of the same batch), ``"resumed"`` (loaded from the run state)
    or ``"cold"`` (a cached-fidelity probe declined the point; nothing
    durable was recorded, so a later run retries it).

    ``fidelity`` tags which evaluation tier produced the metrics
    (``"analytical"`` metrics are optimistic lower bounds —
    ``lower_bound`` is then also set).  Records written before the
    fidelity field existed deserialise as ``"compile"``, which is what
    they were.

    An infeasible point (the evaluator proves no plan exists — the
    boundary a DSE sweep exists to find) has ``feasible=False`` with
    ``failed=False``; ``failed=True`` marks genuine errors (unknown
    model, a crash inside the pipeline).
    """

    point_key: str
    model: str
    workload: str
    hardware: str
    num_arrays: int
    hardware_fingerprint: str
    coords: Tuple[int, ...]
    allow_memory_mode: bool
    objective: str
    #: Fingerprint of the space declaration the point was evaluated
    #: under — ``coords`` only index that grid, so a resume under a
    #: different declaration must not reuse them.
    space_fingerprint: str = ""
    fidelity: str = "compile"
    lower_bound: bool = False
    feasible: bool = False
    latency_ms: float = math.inf
    cycles: float = math.inf
    energy_mj: float = math.inf
    #: p99 latency of the runner's trace replayed under this point's
    #: hardware/options (``inf`` unless the run's objective measured it).
    trace_p99_ms: float = math.inf
    num_segments: int = 0
    peak_arrays: int = 0
    objective_value: float = math.inf
    allocator_solves: int = 0
    cache_hits: int = 0
    disk_hits: int = 0
    wall_seconds: float = 0.0
    status: str = "evaluated"
    error: Optional[str] = None
    failed: bool = False

    def to_dict(self) -> Dict:
        """Strict-JSON rendering: coords become a list, non-finite
        metrics become ``null`` (``results.jsonl`` must stay parseable
        by jq/pandas, which reject bare ``Infinity`` tokens)."""
        payload = asdict(self)
        payload["coords"] = list(self.coords)
        for name in (
            "latency_ms",
            "cycles",
            "energy_mj",
            "trace_p99_ms",
            "objective_value",
        ):
            value = payload[name]
            if value is not None and not math.isfinite(value):
                payload[name] = None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "EvaluationRecord":
        """Rebuild a record from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        kwargs = {key: value for key, value in payload.items() if key in known}
        kwargs["coords"] = tuple(kwargs.get("coords", ()))
        for name in (
            "latency_ms",
            "cycles",
            "energy_mj",
            "trace_p99_ms",
            "objective_value",
        ):
            value = kwargs.get(name)
            if value is None:
                kwargs[name] = math.inf
        return cls(**kwargs)


@dataclass
class DSEResult:
    """Outcome of one :meth:`DSERunner.run` call.

    Attributes:
        records: The final record of every point known at the end of the
            run — resumed entries first (file order), then this run's,
            in evaluation order.  A point evaluated at several
            fidelities (the ``auto`` schedule) appears once, at its
            highest fidelity.
        new_records: Every record this run produced, in evaluation order
            (a promoted point contributes one record per fidelity — the
            honest log of what was paid for).
        evaluated / replicated / skipped: Point counters (skipped =
            served from the run state).
        evaluated_by_fidelity: Canonical evaluations per fidelity tag
            (cached-tier declines count under ``"cold"``).
        warm_planned / cold_planned: Canonical jobs by planner probe.
        allocator_solves / disk_hits: Aggregates over ``new_records``.
        objective: The optimisation objective of the run.
        wall_seconds: Wall-clock time of the run loop.
    """

    records: List[EvaluationRecord] = field(default_factory=list)
    new_records: List[EvaluationRecord] = field(default_factory=list)
    evaluated: int = 0
    replicated: int = 0
    skipped: int = 0
    evaluated_by_fidelity: Dict[str, int] = field(default_factory=dict)
    warm_planned: int = 0
    cold_planned: int = 0
    allocator_solves: int = 0
    disk_hits: int = 0
    objective: str = "latency"
    wall_seconds: float = 0.0
    _frontier_cache: Dict[Tuple[str, ...], List["EvaluationRecord"]] = field(
        default_factory=dict, repr=False
    )

    def frontier(self, axes: Sequence[str] = DEFAULT_AXES) -> List[EvaluationRecord]:
        """Pareto frontier over ``axes`` of every known record.

        When the run holds any full-fidelity record (``compile`` /
        ``cached``), only those participate — analytical lower bounds
        would otherwise dominate real plans they merely approximate.  A
        pure rung-0 sweep ranks its bounds against each other, which is
        exactly what a lower-bound screening is for.

        Memoised per axis tuple — the dominance scan is O(n²) and both
        report renderers need the same frontier.
        """
        key = tuple(axes)
        cached = self._frontier_cache.get(key)
        if cached is None:
            cached = pareto_frontier(full_fidelity_records(self.records), axes)
            self._frontier_cache[key] = cached
        return cached

    def render_report(self, axes: Sequence[str] = DEFAULT_AXES) -> str:
        """Text Pareto report over every known record."""
        return render_report(
            self.records, axes, objective=self.objective, frontier=self.frontier(axes)
        )

    def write_csv(self, path: Union[str, Path], axes: Sequence[str] = DEFAULT_AXES) -> Path:
        """CSV report (all records, ``pareto`` flag column)."""
        return write_csv(path, self.records, axes, frontier=self.frontier(axes))

    def summary(self) -> str:
        """Counter block the CLI prints (and CI smoke tests grep)."""
        by_fidelity = ", ".join(
            f"{name}={count}"
            for name, count in sorted(self.evaluated_by_fidelity.items())
        ) or "none"
        return "\n".join(
            [
                f"points: {self.evaluated} evaluated, {self.replicated} replicated, "
                f"{self.skipped} skipped (already evaluated)",
                f"fidelity: {by_fidelity}",
                f"planner: {self.warm_planned} warm, {self.cold_planned} cold",
                f"total allocator solves: {self.allocator_solves}",
                f"total disk hits: {self.disk_hits}",
                f"wall time: {self.wall_seconds:.3f} s",
            ]
        )


class DSERunner:
    """Drives one exploration of a design space.

    Args:
        space: The candidate grid.
        strategy: Strategy instance or name (``grid`` / ``random`` /
            ``greedy`` / ``successive-halving``).
        objective: ``"latency"``, ``"energy"`` or ``"trace_p99"`` — what
            adaptive strategies minimise and reports highlight
            (``trace_p99`` additionally requires ``trace``).
        fidelity: Evaluation tier for every batch —
            ``"compile"`` (default, the full pipeline),
            ``"analytical"`` (closed-form lower bounds, zero solves),
            ``"greedy"`` (the full pipeline with the heuristic
            allocator — a real plan, zero MILP solves),
            ``"cached"`` (store-probe + warm compile; cold candidates
            are declined and retried by a later run) or ``"auto"``
            (obey the strategy's multi-fidelity schedule; a
            fidelity-agnostic strategy is replaced by
            :class:`~repro.dse.strategies.SuccessiveHalvingStrategy`).
        cache: Shared :class:`AllocationCache` (mutually exclusive with
            ``cache_dir``), for embedding the runner into a larger
            in-process pipeline.
        cache_dir: Persistent allocation-store directory; enables both
            cross-run solve reuse and the planner's warm-first ordering.
        backend: Compile-service backend (``thread``/``process``).
        max_workers: Pool width of the compile service.
        state: Resumable run state (None runs fully in memory).
        batch_size: Points asked from the strategy per iteration.
        seed: Seed used when ``strategy`` is given by name.
        trace: Request :class:`~repro.sim.traces.Trace` backing the
            ``trace_p99`` objective.  Each feasible point replays the
            trace under its hardware/options (memoised per distinct
            hardware/options pair — points differing only in
            model/workload share one replay).  Requires a plan-producing
            fidelity (``compile``/``greedy``/``cached``): analytical
            lower bounds have no programs to schedule.
        obs: Optional :class:`~repro.obs.Observability` bundle, threaded
            into the compile service, solve memo and trace replays; the
            run loop records a fidelity-tagged span per batch and per
            evaluated point and mirrors counters under ``dse.*``.
    """

    def __init__(
        self,
        space: DesignSpace,
        strategy: Union[str, Strategy] = "grid",
        objective: str = "latency",
        fidelity: str = "compile",
        cache: Optional[AllocationCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        state: Optional[RunState] = None,
        batch_size: int = 8,
        seed: int = 0,
        trace=None,
        obs=None,
    ) -> None:
        from ..obs import NULL_OBS

        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; known: {', '.join(sorted(OBJECTIVES))}"
            )
        if fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"unknown fidelity {fidelity!r}; known: {', '.join(FIDELITY_MODES)}"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if objective == "trace_p99":
            if trace is None:
                raise ValueError(
                    "objective 'trace_p99' requires a trace "
                    "(DSERunner(trace=...) / repro dse --trace FILE)"
                )
            if fidelity in ("analytical", "auto"):
                raise ValueError(
                    "objective 'trace_p99' needs real compiled plans; "
                    f"fidelity {fidelity!r} is not supported (use "
                    "'compile', 'greedy' or 'cached')"
                )
        self.space = space
        self.strategy = (
            make_strategy(strategy, seed=seed) if isinstance(strategy, str) else strategy
        )
        if fidelity == "auto" and not getattr(self.strategy, "multi_fidelity", False):
            # "auto" means "schedule by fidelity"; a fidelity-agnostic
            # strategy cannot, so the canonical multi-fidelity schedule
            # takes over (rung-0 analytical sweep, survivors compiled).
            self.strategy = SuccessiveHalvingStrategy(seed=seed)
        self.objective = objective
        self.fidelity = fidelity
        self.state = state
        self.batch_size = batch_size
        self.trace = trace
        # Trace replays are memoised per (hardware, options): the replay
        # outcome does not depend on the point's own model/workload, so
        # a sweep whose axes only vary those costs a single replay.
        self._trace_scores: Dict[Tuple[str, str], float] = {}
        # One memo per run: neighbouring design points share most
        # allocation windows (their boundary context is unchanged along a
        # sweep axis), so the memo turns a 12-point sweep into far fewer
        # solves than 12 independent cold compiles — cache or no cache.
        self.obs = NULL_OBS if obs is None else obs
        self.solve_memo = SolveMemo(metrics=self.obs.metrics)
        self.service = CompileService(
            cache=cache,
            cache_dir=cache_dir,
            backend=backend,
            max_workers=max_workers,
            solve_memo=self.solve_memo,
            obs=self.obs,
        )
        store = self.service.cache.store if self.service.cache is not None else None
        self.planner = Planner(store=store)
        self._evaluators: Dict[str, Evaluator] = {}

    def evaluator(self, fidelity: str) -> Evaluator:
        """The (lazily built, memoised) evaluator of one fidelity tier."""
        evaluator = self._evaluators.get(fidelity)
        if evaluator is None:
            if fidelity == "analytical":
                evaluator = AnalyticalEvaluator()
            elif fidelity == "greedy":
                evaluator = GreedyEvaluator(self.service)
            elif fidelity == "cached":
                evaluator = CachedEvaluator(self.service)
            elif fidelity == "compile":
                evaluator = CompileEvaluator(self.service)
            else:
                raise ValueError(f"no evaluator for fidelity {fidelity!r}")
            self._evaluators[fidelity] = evaluator
        return evaluator

    def _batch_fidelity(self) -> str:
        """Fidelity of the upcoming batch (read *after* strategy.ask)."""
        if self.fidelity == "auto":
            return getattr(self.strategy, "fidelity", None) or "compile"
        return self.fidelity

    @staticmethod
    def _satisfies(record: EvaluationRecord, requested: str) -> bool:
        """Whether a known record answers a request at ``requested`` fidelity."""
        return fidelity_rank(getattr(record, "fidelity", None)) >= fidelity_rank(
            requested
        )

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self, budget: Optional[int] = None) -> DSEResult:
        """Explore until ``budget`` points are covered or the space ends.

        ``budget`` counts points *covered this run* (fresh evaluations
        plus replications, at any fidelity); points skipped via the run
        state are free, so a resumed run spends its whole budget on new
        ground.
        """
        start = time.perf_counter()
        self.strategy.bind(self.space)
        result = DSEResult(objective=self.objective)

        # ``known`` holds the best (highest-fidelity, then latest) record
        # per point for skip decisions and the final report;
        # ``known_tiers`` additionally keeps each fidelity's own record,
        # so a multi-fidelity strategy resuming a run is told the score
        # of the tier it asked at — ranking rung-0 candidates on a mix
        # of lower bounds and compiled actuals would re-promote a
        # different survivor set on every resume.
        known: Dict[str, EvaluationRecord] = {}
        known_tiers: Dict[Tuple[str, str], EvaluationRecord] = {}

        def remember(record: EvaluationRecord) -> None:
            known_tiers[(record.point_key, record.fidelity)] = record
            current = known.get(record.point_key)
            if current is None or fidelity_rank(record.fidelity) >= fidelity_rank(
                current.fidelity
            ):
                known[record.point_key] = record

        if self.state is not None:
            current_fingerprint = self.space.fingerprint()
            for payload in self.state.records:
                record = EvaluationRecord.from_dict(payload)
                if record.failed:
                    # Genuine failures (crashed worker, missing model) are
                    # retried on resume, not treated as done — only real
                    # outcomes (feasible or proven-infeasible) are final.
                    continue
                record.status = "resumed"
                if record.space_fingerprint != current_fingerprint:
                    # Coordinates recorded under a *different* space
                    # declaration index into a different grid — dropping
                    # them keeps adaptive strategies from steering on
                    # mislocated scores (the record is still matched,
                    # skipped and reported by point key).
                    record.coords = ()
                # The stored objective may differ from this run's (e.g. a
                # latency resume of an energy run): re-derive the score so
                # strategies and reports never mix incommensurable scales.
                record.objective = self.objective
                metric = getattr(record, OBJECTIVES[self.objective])
                record.objective_value = metric if record.feasible else math.inf
                remember(record)

        # No budget means "run the strategy's whole schedule" — for a
        # multi-fidelity strategy that is more than one pass over the
        # grid (rung 0 plus the promotions), so the cap is the
        # strategy's exhaustion, not the space size.
        budget_left: float = budget if budget is not None else math.inf
        while budget_left > 0 and not self.strategy.exhausted:
            points = self.strategy.ask(min(self.batch_size, budget_left))
            if not points:
                break
            batch_fidelity = self._batch_fidelity()
            fresh: List[DesignPoint] = []
            resumed: List[EvaluationRecord] = []
            for point in points:
                record = known.get(point.key)
                if record is not None and self._satisfies(record, batch_fidelity):
                    result.skipped += 1
                    # Feed the strategy the record of the tier it asked
                    # at when one exists — a rung-0 ask is answered with
                    # the rung-0 score even if a promoted (compiled)
                    # record supersedes it in the report.
                    resumed.append(
                        known_tiers.get((point.key, batch_fidelity), record)
                    )
                else:
                    fresh.append(point)
            batch_records: List[EvaluationRecord] = []
            if fresh:
                with self.obs.tracer.span(
                    "dse.batch", fidelity=batch_fidelity, points=len(fresh)
                ):
                    plan = self.planner.plan(fresh, fidelity=batch_fidelity)
                    result.warm_planned += plan.n_warm
                    result.cold_planned += plan.n_cold
                    jobs = [
                        CompileJob(
                            # An unplannable point (graph=None) ships its
                            # model reference; the evaluator's rebuild
                            # surfaces the error into this job's own result.
                            job.graph if job.graph is not None else job.point.model,
                            workload=job.point.workload,
                            hardware=job.point.hardware,
                            options=dc_replace(job.point.options, generate_code=False),
                            label=job.point.describe(),
                        )
                        for job in plan.jobs
                    ]
                    # The planner just probed every canonical job; hand the
                    # verdicts to the evaluator so the cached tier does not
                    # probe (and flatten) each candidate a second time.
                    evaluations = self.evaluator(batch_fidelity).evaluate_batch(
                        jobs, warm_hints=[job.warm for job in plan.jobs]
                    )
                for planned, evaluation in zip(plan.jobs, evaluations):
                    record = self._record(planned.point, evaluation)
                    batch_records.append(record)
                    result.evaluated += 1
                    tally = "cold" if evaluation.skipped else evaluation.fidelity
                    result.evaluated_by_fidelity[tally] = (
                        result.evaluated_by_fidelity.get(tally, 0) + 1
                    )
                    for duplicate in planned.duplicates:
                        batch_records.append(self._replicate(record, duplicate))
                        result.replicated += 1
                budget_left -= len(fresh)
            for record in batch_records:
                if record.status != "cold":
                    # A declined (cold) cached-tier probe produced no
                    # metrics: remembering it would shadow any real
                    # record of the point in the report, and persisting
                    # it would finalise the point and stop a warmer
                    # later run from answering it.  It still reaches
                    # ``new_records`` (the honest log) and the strategy.
                    remember(record)
                    if self.state is not None:
                        self.state.append(record.to_dict())
                result.new_records.append(record)
                result.allocator_solves += record.allocator_solves
                result.disk_hits += record.disk_hits
            self.strategy.tell(batch_records + resumed)

        # One final record per point: ``known`` keeps resumed entries in
        # file order and this run's in evaluation order, and an ``auto``
        # schedule's promotion overwrites the rung-0 record in place.
        result.records = list(known.values())
        result.wall_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # record construction
    # ------------------------------------------------------------------ #
    def _record(self, point: DesignPoint, evaluation: Evaluation) -> EvaluationRecord:
        """Convert one typed evaluation into the persistent record shape."""
        metrics = self.obs.metrics
        metrics.inc("dse.points")
        metrics.inc(f"dse.points.{evaluation.fidelity}")
        with self.obs.tracer.span(
            "dse.point", point=point.key, fidelity=evaluation.fidelity
        ) as span:
            record = EvaluationRecord(
                point_key=point.key,
                model=point.model_name,
                workload=point.workload.describe(),
                hardware=point.hardware.name,
                num_arrays=point.hardware.num_arrays,
                hardware_fingerprint=point.hardware.fingerprint(),
                coords=point.coords,
                allow_memory_mode=point.options.allow_memory_mode,
                objective=self.objective,
                space_fingerprint=self.space.fingerprint(),
                fidelity=evaluation.fidelity,
                lower_bound=evaluation.lower_bound,
                wall_seconds=evaluation.eval_seconds,
                allocator_solves=evaluation.allocator_solves,
                cache_hits=evaluation.cache_hits,
                disk_hits=evaluation.disk_hits,
            )
            if evaluation.skipped:
                record.status = "cold"
                record.error = evaluation.error
                metrics.inc("dse.points.cold")
                span.set(status="cold")
                return record
            if not evaluation.feasible:
                record.error = evaluation.error
                record.failed = evaluation.failed
                metrics.inc("dse.points.infeasible")
                span.set(status="infeasible")
                return record
            record.feasible = True
            record.latency_ms = evaluation.latency_ms
            record.cycles = evaluation.cycles
            record.energy_mj = evaluation.energy_mj
            record.num_segments = evaluation.num_segments
            record.peak_arrays = evaluation.peak_arrays
            if self.objective == "trace_p99":
                record.trace_p99_ms = self._trace_p99(point)
            record.objective_value = getattr(record, OBJECTIVES[self.objective])
            span.set(status="feasible")
            return record

    def _trace_p99(self, point: DesignPoint) -> float:
        """p99 latency of the runner's trace under one point's chip/options.

        Replays :attr:`trace` through the runner's own compile service
        (sharing its allocation cache and solve memo) with the point's
        hardware and compiler options.  A replay that drops any request
        (a trace model infeasible under those options) scores ``inf`` —
        a serving configuration that cannot run the traffic is not a
        candidate, exactly like an infeasible single compile.
        """
        from ..sim.replay import ReplaySimulator
        from .space import options_signature

        key = (point.hardware.fingerprint(), str(options_signature(point.options)))
        score = self._trace_scores.get(key)
        if score is None:
            self.obs.metrics.inc("dse.trace_replays")
            with self.obs.tracer.span(
                "dse.trace_replay", hardware=point.hardware.name
            ):
                simulator = ReplaySimulator(
                    hardware=point.hardware,
                    service=self.service,
                    options=point.options,
                    obs=self.obs,
                )
                result = simulator.run(self.trace)
            metrics = result.metrics
            if metrics.failed or metrics.served == 0:
                score = math.inf
            else:
                score = metrics.latency_p99_ms
            self._trace_scores[key] = score
        else:
            self.obs.metrics.inc("dse.trace_replay.memo_hits")
        return score

    def _replicate(
        self, canonical: EvaluationRecord, point: DesignPoint
    ) -> EvaluationRecord:
        """Copy a canonical result onto a structurally identical point.

        The copy costs nothing, so its solver counters are zero — the
        CSV stays an honest account of where time actually went.
        """
        status = "cold" if canonical.status == "cold" else "replicated"
        return dc_replace(
            canonical,
            point_key=point.key,
            model=point.model_name,
            workload=point.workload.describe(),
            coords=point.coords,
            allocator_solves=0,
            cache_hits=0,
            disk_hits=0,
            wall_seconds=0.0,
            status=status,
        )


def run_dse(
    space: DesignSpace,
    strategy: Union[str, Strategy] = "grid",
    objective: str = "latency",
    budget: Optional[int] = None,
    **runner_kwargs,
) -> DSEResult:
    """Convenience wrapper: build a :class:`DSERunner` and run it once."""
    runner = DSERunner(space, strategy=strategy, objective=objective, **runner_kwargs)
    return runner.run(budget=budget)
