"""Hardware sensitivity study (extension of the paper's §5.5 / §6).

The paper argues that dual-mode awareness matters across hardware
configurations and sketches (in the discussion) its use for
general-purpose systems.  This experiment quantifies how the CMSwitch
advantage over CIM-MLC moves as individual DEHA parameters change:

* the number of dual-mode arrays (chip size),
* the external (off-chip) bandwidth,
* the mode-switch latency,
* the native buffer size.

Larger chips and slower off-chip links increase the value of memory-mode
arrays; a huge native buffer or an extremely slow mode switch erodes it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..baselines import CIMMLCCompiler
from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import build_model
from .common import encode_workload, format_table, speedup

#: Parameter sweeps explored by default (values replace the preset's).
DEFAULT_SWEEPS: Dict[str, Sequence] = {
    "num_arrays": (48, 96, 192),
    "extern_bw_bits": (512, 1024, 4096),
    "switch_latency": (1, 64, 1024),
    "buffer_bytes": (10 * 1024, 80 * 1024, 640 * 1024),
}


def _apply(hardware: DualModeHardwareAbstraction, parameter: str, value) -> DualModeHardwareAbstraction:
    """Return a copy of ``hardware`` with one sweep parameter replaced."""
    if parameter == "switch_latency":
        return hardware.with_overrides(switch_latency_m2c=value, switch_latency_c2m=value)
    return hardware.with_overrides(**{parameter: value})


def run_sensitivity(
    model: str = "llama2-7b",
    batch_size: int = 4,
    seq_len: int = 64,
    hardware: Optional[DualModeHardwareAbstraction] = None,
    sweeps: Optional[Dict[str, Sequence]] = None,
) -> List[Dict]:
    """Sweep DEHA parameters and record the CMSwitch-over-CIM-MLC speedup.

    Returns one row per (parameter, value) with both compilers' cycles,
    the speedup and CMSwitch's memory-array ratio.
    """
    base = hardware or dynaplasia()
    sweeps = sweeps or DEFAULT_SWEEPS
    workload = encode_workload(model, batch_size, seq_len)
    graph = build_model(model, workload)
    rows: List[Dict] = []
    for parameter, values in sweeps.items():
        for value in values:
            target = _apply(base, parameter, value)
            cms = CMSwitchCompiler(target, CompilerOptions(generate_code=False)).compile(graph)
            mlc = CIMMLCCompiler(target).compile(graph)
            rows.append(
                {
                    "model": model,
                    "parameter": parameter,
                    "value": value,
                    "cmswitch_cycles": cms.end_to_end_cycles,
                    "cim-mlc_cycles": mlc.end_to_end_cycles,
                    "speedup_vs_cim-mlc": speedup(mlc.end_to_end_cycles, cms.end_to_end_cycles),
                    "memory_array_ratio": cms.mean_memory_array_ratio,
                }
            )
    return rows


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the sensitivity sweep."""
    columns = ["model", "parameter", "value", "speedup_vs_cim-mlc", "memory_array_ratio"]
    return format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print the default sensitivity sweep."""
    print(render_report(run_sensitivity()))


if __name__ == "__main__":  # pragma: no cover
    main()
