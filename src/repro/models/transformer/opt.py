"""OPT decoder models (Zhang et al., 2022).

OPT-6.7B and OPT-13B are the largest decoder benchmarks in the paper;
OPT-13B shows the biggest CMSwitch speedup (up to 2.03x over CIM-MLC in
Fig. 14) because almost none of its weights fit on chip and its decode
phase is dominated by data movement.
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...ir.tensor import DataType
from ..workload import Workload
from .common import TransformerConfig, build_transformer_graph

OPT_1_3B = TransformerConfig(
    name="opt-1.3b",
    hidden_size=2048,
    num_layers=24,
    num_heads=32,
    ffn_hidden=8192,
    vocab_size=50272,
    activation="relu",
    gated_ffn=False,
    norm="layernorm",
    causal=True,
)

OPT_6_7B = TransformerConfig(
    name="opt-6.7b",
    hidden_size=4096,
    num_layers=32,
    num_heads=32,
    ffn_hidden=16384,
    vocab_size=50272,
    activation="relu",
    gated_ffn=False,
    norm="layernorm",
    causal=True,
)

OPT_13B = TransformerConfig(
    name="opt-13b",
    hidden_size=5120,
    num_layers=40,
    num_heads=40,
    ffn_hidden=20480,
    vocab_size=50272,
    activation="relu",
    gated_ffn=False,
    norm="layernorm",
    causal=True,
)


def build_opt_1_3b(workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8) -> Graph:
    """Build an OPT-1.3B graph for the given workload phase."""
    return build_transformer_graph(OPT_1_3B, workload, blocks=blocks, dtype=dtype)


def build_opt_6_7b(workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8) -> Graph:
    """Build an OPT-6.7B graph for the given workload phase."""
    return build_transformer_graph(OPT_6_7B, workload, blocks=blocks, dtype=dtype)


def build_opt_13b(workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8) -> Graph:
    """Build an OPT-13B graph for the given workload phase."""
    return build_transformer_graph(OPT_13B, workload, blocks=blocks, dtype=dtype)
