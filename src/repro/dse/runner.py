"""The DSE runner: strategy-driven, cache-aware, resumable exploration.

:class:`DSERunner` wires the subsystem together.  Each iteration it

1. asks the :mod:`strategy <repro.dse.strategies>` for a batch of
   candidate points (bounded by the remaining budget),
2. skips every point whose key the resumable :class:`~repro.dse.state
   .RunState` already holds (their stored records are still fed back to
   the strategy so adaptive search resumes with full knowledge),
3. hands the rest to the cache-aware :class:`~repro.dse.planner.Planner`
   — structural duplicates collapse to one compile, warm candidates are
   scheduled before cold ones,
4. compiles the planned jobs through a
   :class:`~repro.service.CompileService` (thread or process backend,
   sharing the persistent allocation store), and
5. converts each outcome to an :class:`EvaluationRecord` — latency,
   energy, array usage, solver statistics — appends it durably to the
   run state, and tells the strategy.

The loop ends when the budget is spent or the strategy exhausts the
space.  The returned :class:`DSEResult` carries every record known at
the end (resumed and new), the aggregate counters the CLI and CI assert
on (evaluated / replicated / skipped / allocator solves), and the Pareto
reporting entry points.

:meth:`repro.api.Session.explore` is the public entry point: it builds
a runner sharing the session's allocation cache and backend, so a sweep
warm-starts from every other compile the session served.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..core.cache import AllocationCache
from ..cost.energy import estimate_energy
from ..service import CompileJob, CompileJobResult, CompileService
from .pareto import DEFAULT_AXES, pareto_frontier, render_report, write_csv
from .planner import Planner
from .space import DesignPoint, DesignSpace
from .state import RunState
from .strategies import Strategy, make_strategy

__all__ = ["DSEResult", "DSERunner", "EvaluationRecord", "OBJECTIVES", "run_dse"]

#: Supported optimisation objectives (record attribute each minimises).
OBJECTIVES = {"latency": "latency_ms", "energy": "energy_mj"}


@dataclass
class EvaluationRecord:
    """Flat, JSON-serialisable outcome of one design point.

    This is the unit the run state persists, the strategies steer on,
    and the Pareto reports consume.

    ``status`` is one of ``"evaluated"`` (a real compile — feasible or
    not), ``"replicated"`` (copied from a structurally identical point
    of the same batch) or ``"resumed"`` (loaded from the run state).

    An infeasible point (the compiler proves no plan exists — the
    boundary a DSE sweep exists to find) has ``feasible=False`` with
    ``failed=False``; ``failed=True`` marks genuine errors (unknown
    model, a crash inside the pipeline).
    """

    point_key: str
    model: str
    workload: str
    hardware: str
    num_arrays: int
    hardware_fingerprint: str
    coords: Tuple[int, ...]
    allow_memory_mode: bool
    objective: str
    #: Fingerprint of the space declaration the point was evaluated
    #: under — ``coords`` only index that grid, so a resume under a
    #: different declaration must not reuse them.
    space_fingerprint: str = ""
    feasible: bool = False
    latency_ms: float = math.inf
    cycles: float = math.inf
    energy_mj: float = math.inf
    num_segments: int = 0
    peak_arrays: int = 0
    objective_value: float = math.inf
    allocator_solves: int = 0
    cache_hits: int = 0
    disk_hits: int = 0
    wall_seconds: float = 0.0
    status: str = "evaluated"
    error: Optional[str] = None
    failed: bool = False

    def to_dict(self) -> Dict:
        """Strict-JSON rendering: coords become a list, non-finite
        metrics become ``null`` (``results.jsonl`` must stay parseable
        by jq/pandas, which reject bare ``Infinity`` tokens)."""
        payload = asdict(self)
        payload["coords"] = list(self.coords)
        for name in ("latency_ms", "cycles", "energy_mj", "objective_value"):
            value = payload[name]
            if value is not None and not math.isfinite(value):
                payload[name] = None
        return payload

    @classmethod
    def from_dict(cls, payload: Dict) -> "EvaluationRecord":
        """Rebuild a record from :meth:`to_dict` output (unknown keys ignored)."""
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        kwargs = {key: value for key, value in payload.items() if key in known}
        kwargs["coords"] = tuple(kwargs.get("coords", ()))
        for name in ("latency_ms", "cycles", "energy_mj", "objective_value"):
            value = kwargs.get(name)
            if value is None:
                kwargs[name] = math.inf
        return cls(**kwargs)


@dataclass
class DSEResult:
    """Outcome of one :meth:`DSERunner.run` call.

    Attributes:
        records: Every record known at the end of the run — resumed
            entries first (file order), then this run's, in evaluation
            order.
        new_records: Only this run's records.
        evaluated / replicated / skipped: Point counters (skipped =
            served from the run state).
        warm_planned / cold_planned: Canonical jobs by planner probe.
        allocator_solves / disk_hits: Aggregates over ``new_records``.
        objective: The optimisation objective of the run.
        wall_seconds: Wall-clock time of the run loop.
    """

    records: List[EvaluationRecord] = field(default_factory=list)
    new_records: List[EvaluationRecord] = field(default_factory=list)
    evaluated: int = 0
    replicated: int = 0
    skipped: int = 0
    warm_planned: int = 0
    cold_planned: int = 0
    allocator_solves: int = 0
    disk_hits: int = 0
    objective: str = "latency"
    wall_seconds: float = 0.0
    _frontier_cache: Dict[Tuple[str, ...], List["EvaluationRecord"]] = field(
        default_factory=dict, repr=False
    )

    def frontier(self, axes: Sequence[str] = DEFAULT_AXES) -> List[EvaluationRecord]:
        """Pareto frontier over ``axes`` of every known record.

        Memoised per axis tuple — the dominance scan is O(n²) and both
        report renderers need the same frontier.
        """
        key = tuple(axes)
        cached = self._frontier_cache.get(key)
        if cached is None:
            cached = pareto_frontier(self.records, axes)
            self._frontier_cache[key] = cached
        return cached

    def render_report(self, axes: Sequence[str] = DEFAULT_AXES) -> str:
        """Text Pareto report over every known record."""
        return render_report(
            self.records, axes, objective=self.objective, frontier=self.frontier(axes)
        )

    def write_csv(self, path: Union[str, Path], axes: Sequence[str] = DEFAULT_AXES) -> Path:
        """CSV report (all records, ``pareto`` flag column)."""
        return write_csv(path, self.records, axes, frontier=self.frontier(axes))

    def summary(self) -> str:
        """Counter block the CLI prints (and CI smoke tests grep)."""
        return "\n".join(
            [
                f"points: {self.evaluated} evaluated, {self.replicated} replicated, "
                f"{self.skipped} skipped (already evaluated)",
                f"planner: {self.warm_planned} warm, {self.cold_planned} cold",
                f"total allocator solves: {self.allocator_solves}",
                f"total disk hits: {self.disk_hits}",
                f"wall time: {self.wall_seconds:.3f} s",
            ]
        )


class DSERunner:
    """Drives one exploration of a design space.

    Args:
        space: The candidate grid.
        strategy: Strategy instance or name (``grid``/``random``/``greedy``).
        objective: ``"latency"`` or ``"energy"`` — what adaptive
            strategies minimise and reports highlight.
        cache: Shared :class:`AllocationCache` (mutually exclusive with
            ``cache_dir``), for embedding the runner into a larger
            in-process pipeline.
        cache_dir: Persistent allocation-store directory; enables both
            cross-run solve reuse and the planner's warm-first ordering.
        backend: Compile-service backend (``thread``/``process``).
        max_workers: Pool width of the compile service.
        state: Resumable run state (None runs fully in memory).
        batch_size: Points asked from the strategy per iteration.
        seed: Seed used when ``strategy`` is given by name.
    """

    def __init__(
        self,
        space: DesignSpace,
        strategy: Union[str, Strategy] = "grid",
        objective: str = "latency",
        cache: Optional[AllocationCache] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        backend: str = "thread",
        max_workers: Optional[int] = None,
        state: Optional[RunState] = None,
        batch_size: int = 8,
        seed: int = 0,
    ) -> None:
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; known: {', '.join(sorted(OBJECTIVES))}"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.space = space
        self.strategy = (
            make_strategy(strategy, seed=seed) if isinstance(strategy, str) else strategy
        )
        self.objective = objective
        self.state = state
        self.batch_size = batch_size
        self.service = CompileService(
            cache=cache, cache_dir=cache_dir, backend=backend, max_workers=max_workers
        )
        store = self.service.cache.store if self.service.cache is not None else None
        self.planner = Planner(store=store)

    # ------------------------------------------------------------------ #
    # the loop
    # ------------------------------------------------------------------ #
    def run(self, budget: Optional[int] = None) -> DSEResult:
        """Explore until ``budget`` points are covered or the space ends.

        ``budget`` counts points *covered this run* (fresh compiles plus
        replications); points skipped via the run state are free, so a
        resumed run spends its whole budget on new ground.
        """
        start = time.perf_counter()
        self.strategy.bind(self.space)
        result = DSEResult(objective=self.objective)

        known: Dict[str, EvaluationRecord] = {}
        if self.state is not None:
            current_fingerprint = self.space.fingerprint()
            for payload in self.state.records:
                record = EvaluationRecord.from_dict(payload)
                if record.failed:
                    # Genuine failures (crashed worker, missing model) are
                    # retried on resume, not treated as done — only real
                    # outcomes (feasible or proven-infeasible) are final.
                    continue
                record.status = "resumed"
                if record.space_fingerprint != current_fingerprint:
                    # Coordinates recorded under a *different* space
                    # declaration index into a different grid — dropping
                    # them keeps adaptive strategies from steering on
                    # mislocated scores (the record is still matched,
                    # skipped and reported by point key).
                    record.coords = ()
                # The stored objective may differ from this run's (e.g. a
                # latency resume of an energy run): re-derive the score so
                # strategies and reports never mix incommensurable scales.
                record.objective = self.objective
                metric = getattr(record, OBJECTIVES[self.objective])
                record.objective_value = metric if record.feasible else math.inf
                known[record.point_key] = record

        budget_left = budget if budget is not None else self.space.size
        while budget_left > 0 and not self.strategy.exhausted:
            points = self.strategy.ask(min(self.batch_size, budget_left))
            if not points:
                break
            fresh: List[DesignPoint] = []
            resumed: List[EvaluationRecord] = []
            for point in points:
                record = known.get(point.key)
                if record is not None:
                    result.skipped += 1
                    resumed.append(record)
                else:
                    fresh.append(point)
            batch_records: List[EvaluationRecord] = []
            if fresh:
                plan = self.planner.plan(fresh)
                result.warm_planned += plan.n_warm
                result.cold_planned += plan.n_cold
                jobs = [
                    CompileJob(
                        # An unplannable point (graph=None) ships its model
                        # reference; the service's rebuild surfaces the
                        # error into this job's own result.
                        job.graph if job.graph is not None else job.point.model,
                        workload=job.point.workload,
                        hardware=job.point.hardware,
                        options=dc_replace(job.point.options, generate_code=False),
                        label=job.point.describe(),
                    )
                    for job in plan.jobs
                ]
                outcomes = self.service.compile_batch(jobs)
                for planned, outcome in zip(plan.jobs, outcomes):
                    record = self._record(planned.point, outcome)
                    batch_records.append(record)
                    result.evaluated += 1
                    for duplicate in planned.duplicates:
                        batch_records.append(self._replicate(record, duplicate))
                        result.replicated += 1
                budget_left -= len(fresh)
            for record in batch_records:
                known[record.point_key] = record
                if self.state is not None:
                    self.state.append(record.to_dict())
                result.new_records.append(record)
                result.allocator_solves += record.allocator_solves
                result.disk_hits += record.disk_hits
            self.strategy.tell(batch_records + resumed)

        new_keys = {record.point_key for record in result.new_records}
        result.records = [
            record for record in known.values() if record.point_key not in new_keys
        ] + result.new_records
        result.wall_seconds = time.perf_counter() - start
        return result

    # ------------------------------------------------------------------ #
    # record construction
    # ------------------------------------------------------------------ #
    def _record(self, point: DesignPoint, outcome: CompileJobResult) -> EvaluationRecord:
        record = EvaluationRecord(
            point_key=point.key,
            model=point.model_name,
            workload=point.workload.describe(),
            hardware=point.hardware.name,
            num_arrays=point.hardware.num_arrays,
            hardware_fingerprint=point.hardware.fingerprint(),
            coords=point.coords,
            allow_memory_mode=point.options.allow_memory_mode,
            objective=self.objective,
            space_fingerprint=self.space.fingerprint(),
            wall_seconds=outcome.wall_seconds,
        )
        if not outcome.ok:
            # NoFeasiblePlanError is a legitimate DSE outcome (the design
            # point is too small for the workload) and is not a failure;
            # anything else is, but either way the sweep continues.  The
            # solver work done before the failure still counts.
            record.error = outcome.error
            record.failed = not (outcome.error or "").startswith("NoFeasiblePlanError")
            record.allocator_solves = int(outcome.stats.get("allocator_solves", 0))
            record.cache_hits = int(outcome.stats.get("allocation_cache_hits", 0))
            record.disk_hits = int(outcome.stats.get("allocation_disk_hits", 0))
            return record
        program = outcome.program
        record.feasible = True
        record.latency_ms = program.end_to_end_ms
        record.cycles = program.end_to_end_cycles
        record.energy_mj = estimate_energy(program).end_to_end_mj
        record.num_segments = program.num_segments
        record.peak_arrays = max(
            (segment.compute_arrays + segment.memory_arrays for segment in program.segments),
            default=0,
        )
        record.allocator_solves = int(outcome.stats.get("allocator_solves", 0))
        record.cache_hits = int(outcome.stats.get("allocation_cache_hits", 0))
        record.disk_hits = int(outcome.stats.get("allocation_disk_hits", 0))
        record.objective_value = getattr(record, OBJECTIVES[self.objective])
        return record

    def _replicate(
        self, canonical: EvaluationRecord, point: DesignPoint
    ) -> EvaluationRecord:
        """Copy a canonical result onto a structurally identical point.

        The copy costs nothing, so its solver counters are zero — the
        CSV stays an honest account of where time actually went.
        """
        return dc_replace(
            canonical,
            point_key=point.key,
            model=point.model_name,
            workload=point.workload.describe(),
            coords=point.coords,
            allocator_solves=0,
            cache_hits=0,
            disk_hits=0,
            wall_seconds=0.0,
            status="replicated",
        )


def run_dse(
    space: DesignSpace,
    strategy: Union[str, Strategy] = "grid",
    objective: str = "latency",
    budget: Optional[int] = None,
    **runner_kwargs,
) -> DSEResult:
    """Convenience wrapper: build a :class:`DSERunner` and run it once."""
    runner = DSERunner(space, strategy=strategy, objective=objective, **runner_kwargs)
    return runner.run(budget=budget)
