"""Generative-model phase study — Fig. 17 of the paper.

Two sweeps over LLaMA2-7B and OPT-13B:

* fixed input length (128 tokens), output length varied 32–2048 — the
  paper observes a nearly constant speedup because the decode phase
  processes tokens incrementally and its arithmetic intensity does not
  change with the output length;
* fixed output length (128 tokens), input length varied 32–2048 — the
  speedup shrinks as the prompt grows because prefill arithmetic
  intensity rises and the workload becomes compute bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cache import AllocationCache
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.workload import Workload
from .common import FIG17_MODELS, format_table, generative_cycles, speedup

#: Sequence lengths swept on the varying axis.
FIG17_LENGTHS: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048)


def run_generative(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG17_MODELS,
    lengths: Sequence[int] = FIG17_LENGTHS,
    fixed_length: int = 128,
    batch_size: int = 1,
    cache: Optional[AllocationCache] = None,
) -> List[Dict]:
    """Run both Fig. 17 sweeps.

    Args:
        cache: Optional shared allocation cache for the CMSwitch
            compiles; both sweep directions reuse the same per-block
            structures, so a shared cache removes most repeat solves.

    Returns one row per (model, sweep direction, varied length) with the
    CMSwitch and CIM-MLC cycles and the speedup.
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for model in models:
        for mode in ("vary_output", "vary_input"):
            for length in lengths:
                if mode == "vary_output":
                    workload = Workload(
                        batch_size=batch_size, seq_len=fixed_length, output_len=length
                    )
                else:
                    workload = Workload(
                        batch_size=batch_size, seq_len=length, output_len=fixed_length
                    )
                cms = generative_cycles(model, workload, hardware, "cmswitch", cache=cache)
                mlc = generative_cycles(model, workload, hardware, "cim-mlc")
                rows.append(
                    {
                        "model": model,
                        "sweep": mode,
                        "length": length,
                        "input_len": workload.seq_len,
                        "output_len": workload.output_len,
                        "cmswitch_cycles": cms["cycles"],
                        "cim-mlc_cycles": mlc["cycles"],
                        "speedup_vs_cim-mlc": speedup(mlc["cycles"], cms["cycles"]),
                        "memory_array_ratio": cms["memory_array_ratio"],
                    }
                )
    return rows


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 17 sweeps."""
    columns = ["model", "sweep", "input_len", "output_len", "speedup_vs_cim-mlc"]
    return format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print a reduced Fig. 17 reproduction."""
    rows = run_generative(models=("llama2-7b",), lengths=(32, 256, 2048))
    print(render_report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
