"""SLO curves: tail latency versus offered load, per hardware preset.

The paper's figures score one inference at a time; this experiment asks
the serving question the replay simulator (:mod:`repro.sim.replay`)
exists for: *how does each chip's p99 latency degrade as a multi-model
request stream approaches its capacity, and how much of its time goes
into CIM<->memory re-provisioning?*

For each hardware preset one seeded synthetic trace is generated, then
replayed at several *load factors* by scaling the trace's inter-arrival
gaps around the chip's measured capacity (the load-1.0 point offers
requests exactly as fast as the chip can serve them, switching
included).  Scaling gaps instead of redrawing arrivals keeps the
request mix and order identical across the whole curve — every row of a
preset differs *only* in offered load, which is what makes the curve
interpretable (and is the same metamorphic transform the replay test
suite exercises).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cache import AllocationCache
from ..sim.replay import ReplaySimulator
from ..sim.traces import Trace, synthetic_trace
from ..service import CompileService
from .common import format_table

__all__ = ["run_slo_curve", "render_report"]

#: Default traffic mix: the tiny zoo keeps the sweep seconds-fast while
#: still mixing CNN- and transformer-shaped programs (so consecutive
#: requests genuinely disagree on array modes).
DEFAULT_MODELS: Sequence[str] = ("tiny-mlp", "tiny-cnn", "tiny-transformer")

#: Offered load as a fraction of the chip's measured capacity.
DEFAULT_LOAD_FACTORS: Sequence[float] = (0.25, 0.5, 0.75, 1.0, 1.25)


def run_slo_curve(
    presets: Sequence[str] = ("dynaplasia", "prime"),
    models: Sequence[str] = DEFAULT_MODELS,
    kind: str = "bursty",
    num_requests: int = 24,
    seed: int = 0,
    load_factors: Sequence[float] = DEFAULT_LOAD_FACTORS,
    seq_len_buckets: Sequence[int] = (16, 32),
    cache: Optional[AllocationCache] = None,
) -> List[Dict]:
    """Sweep offered load against each preset and collect SLO rows.

    Args:
        presets: Hardware preset names to sweep.
        models: Traffic mix (registered model names).
        kind: Synthetic generator (``poisson`` / ``bursty`` / ``diurnal``).
        num_requests: Requests per trace.
        seed: Generator seed — every preset replays the *same* request
            sequence, so rows are comparable across chips too.
        load_factors: Offered load as a fraction of measured capacity.
        seq_len_buckets: Sequence-length buckets of the traffic.
        cache: Optional shared allocation cache (compile once, sweep many).

    Returns:
        One row dict per (preset, load factor) with offered/served
        throughput, p50/p99 latency, utilisation and switch share.
    """
    base = synthetic_trace(
        kind,
        list(models),
        num_requests=num_requests,
        seed=seed,
        seq_len_buckets=tuple(seq_len_buckets),
    )
    rows: List[Dict] = []
    for preset in presets:
        service = CompileService(cache=cache)
        simulator = ReplaySimulator(hardware=preset, service=service)
        # Capacity probe: arrivals collapsed to t=0 make the replay
        # back-to-back, so served/makespan is the chip's max sustainable
        # rate for this exact request sequence (switching included).
        saturated = simulator.run(base.with_gaps_scaled(1e-9))
        capacity_rps = saturated.metrics.throughput_rps
        base_rate = len(base) / (base.duration_ms / 1000.0) if base.duration_ms else 0.0
        for load in load_factors:
            if load <= 0 or capacity_rps <= 0 or base_rate <= 0:
                continue
            # Scale gaps so the offered rate is load x capacity.
            offered_rps = load * capacity_rps
            scaled = base.with_gaps_scaled(base_rate / offered_rps)
            result = simulator.run(scaled)
            metrics = result.metrics
            rows.append(
                {
                    "preset": preset,
                    "load": load,
                    "offered_rps": offered_rps,
                    "throughput_rps": metrics.throughput_rps,
                    "p50_ms": metrics.latency_p50_ms,
                    "p99_ms": metrics.latency_p99_ms,
                    "queue_ms_max": metrics.queue_ms_max,
                    "utilisation": metrics.utilisation,
                    "switch_share": metrics.switch_share,
                    "served": metrics.served,
                    "requests": metrics.requests,
                }
            )
    return rows


def render_report(rows: Sequence[Dict]) -> str:
    """Text report of :func:`run_slo_curve` output."""
    columns = (
        "preset",
        "load",
        "offered_rps",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "queue_ms_max",
        "utilisation",
        "switch_share",
    )
    lines = [
        "SLO curve: tail latency vs offered load (seeded synthetic trace)",
        format_table(list(rows), columns),
    ]
    return "\n".join(lines)
