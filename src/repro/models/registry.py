"""Model registry: build any benchmark network by name.

The registry maps the model names used throughout the paper's evaluation
("bert", "llama2-7b", "opt-13b", "mobilenet", "resnet18", "vgg16", ...) to
builder functions that take a :class:`~repro.models.workload.Workload`.
It also provides a synthetic "tiny" family used by unit tests so the whole
compiler stack can be exercised quickly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..ir.builder import GraphBuilder
from ..ir.graph import Graph
from .cnn import build_mobilenet_v2, build_resnet18, build_resnet50, build_vgg11, build_vgg16
from .transformer import (
    build_bert_base,
    build_bert_large,
    build_gpt2,
    build_gpt2_xl,
    build_llama2_7b,
    build_llama2_13b,
    build_opt_1_3b,
    build_opt_6_7b,
    build_opt_13b,
)
from .transformer.common import TransformerConfig, build_transformer_graph
from .workload import Workload

ModelBuilder = Callable[[Workload], Graph]


def build_tiny_mlp(workload: Workload) -> Graph:
    """A three-layer MLP used by tests and the quickstart example."""
    builder = GraphBuilder("tiny-mlp")
    x = builder.input("x", (workload.batch_size, 256))
    x = builder.linear(x, 512, name="fc1")
    x = builder.relu(x)
    x = builder.linear(x, 512, name="fc2")
    x = builder.relu(x)
    x = builder.linear(x, 64, name="fc3")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update({"family": "test", "model": "tiny-mlp", "block_repeat": 1.0})
    return graph


def build_tiny_cnn(workload: Workload) -> Graph:
    """A four-convolution CNN at 32x32 resolution for fast tests."""
    builder = GraphBuilder("tiny-cnn")
    x = builder.input("image", (workload.batch_size, 3, 32, 32))
    x = builder.conv2d(x, 16, kernel=3, stride=1, padding=1, name="conv1")
    x = builder.relu(x)
    x = builder.conv2d(x, 32, kernel=3, stride=2, padding=1, name="conv2")
    x = builder.relu(x)
    x = builder.conv2d(x, 64, kernel=3, stride=2, padding=1, name="conv3")
    x = builder.relu(x)
    x = builder.global_avg_pool(x)
    x = builder.linear(x, 10, name="classifier")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update({"family": "test", "model": "tiny-cnn", "block_repeat": 1.0})
    return graph


TINY_TRANSFORMER = TransformerConfig(
    name="tiny-transformer",
    hidden_size=128,
    num_layers=2,
    num_heads=4,
    ffn_hidden=256,
    vocab_size=1000,
    activation="gelu",
)


def build_tiny_transformer(workload: Workload) -> Graph:
    """A two-layer, 128-hidden transformer for fast tests."""
    return build_transformer_graph(TINY_TRANSFORMER, workload, blocks=2)


_REGISTRY: Dict[str, ModelBuilder] = {
    # Paper benchmark set (Fig. 14 names).
    "bert": build_bert_large,
    "bert-base": build_bert_base,
    "bert-large": build_bert_large,
    "gpt2": build_gpt2,
    "gpt2-xl": build_gpt2_xl,
    "llama2-7b": build_llama2_7b,
    "llama2-13b": build_llama2_13b,
    "opt-1.3b": build_opt_1_3b,
    "opt-6.7b": build_opt_6_7b,
    "opt-13b": build_opt_13b,
    "mobilenet": build_mobilenet_v2,
    "mobilenet-v2": build_mobilenet_v2,
    "resnet18": build_resnet18,
    "resnet50": build_resnet50,
    "vgg11": build_vgg11,
    "vgg16": build_vgg16,
    # Synthetic models for tests and examples.
    "tiny-mlp": build_tiny_mlp,
    "tiny-cnn": build_tiny_cnn,
    "tiny-transformer": build_tiny_transformer,
}


def list_models() -> List[str]:
    """Names of all registered models, sorted."""
    return sorted(_REGISTRY)


def register_model(name: str, builder: ModelBuilder, overwrite: bool = False) -> None:
    """Register a custom model builder under ``name``.

    Raises:
        ValueError: If the name is already taken and ``overwrite`` is False.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"model {name!r} is already registered")
    _REGISTRY[name] = builder


def build_model(name: str, workload: Workload | None = None) -> Graph:
    """Build a registered model for the given workload.

    Args:
        name: Registered model name (see :func:`list_models`).
        workload: Batch / sequence-length description; defaults to the
            paper's default workload (batch 1, sequence length 64).

    Raises:
        KeyError: If the model name is unknown.
    """
    if name not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; known models: {', '.join(list_models())}")
    workload = workload or Workload()
    return _REGISTRY[name](workload)


def is_transformer(name: str) -> bool:
    """Whether the registered model is transformer-based."""
    return any(
        key in name
        for key in ("bert", "gpt", "llama", "opt", "transformer")
    )
