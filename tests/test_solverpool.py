"""Solver-pool tests: strict parity, concurrency, lifecycle (ISSUE 10).

Four families:

* **Strict parity** — compiling with a :class:`SolverPool` (workers 1
  and 4) must reproduce the sequential DP bit-identically: program
  fingerprints, allocator-solve counts and cache/disk-hit counters,
  across the model zoo and the compiler-option matrix, with and without
  shared cache/memo tiers.
* **Order independence** — a fake solver with seeded per-solve jitter
  scrambles worker completion order; boundaries and counters must not
  move (the DP consumes tickets in the sequential probe order, so
  completion order is irrelevant by construction).
* **Pool semantics** — single-flight dedup of identical concurrent
  solves, demonstrated concurrency with a sleeping solver (sleep
  releases the GIL, like HiGHS), speculative-waste accounting.
* **Lifecycle** — idempotent close, submit-after-close, a worker-raised
  solve failing only its window while the pool keeps serving, and the
  ``CompilerOptions.solve_jobs`` validation surface.
"""

from __future__ import annotations

import threading
import time
import random

import pytest

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.core.allocation import GreedyAllocator, MIPAllocator
from repro.core.cache import AllocationCache
from repro.core.memo import SolveMemo
from repro.core.segmentation import (
    NetworkSegmenter,
    SegmentationOptions,
    flatten_graph,
)
from repro.core.solverpool import SolverPool, WindowSolve, resolve_workers
from repro.hardware import small_test_chip
from repro.models import Workload, build_model


MODELS = ("tiny-mlp", "tiny-cnn", "tiny-transformer")

OPTION_MATRIX = {
    "defaults": {},
    "fixed-mode": {"allow_memory_mode": False},
    "serial-no-refine": {"pipelined": False, "refine": False},
}


def _compile(chip, graph, option_overrides, pool=None, cache=None, memo=None):
    options = CompilerOptions(generate_code=False, **option_overrides)
    compiler = CMSwitchCompiler(
        chip, options, cache=cache, solve_memo=memo, solver_pool=pool
    )
    program = compiler.compile(graph)
    return (
        program.fingerprint(),
        program.stats["allocator_solves"],
        program.stats["allocation_cache_hits"],
        program.stats["allocation_disk_hits"],
    )


# --------------------------------------------------------------------- #
# strict parity
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("model", MODELS)
@pytest.mark.parametrize("variant", sorted(OPTION_MATRIX))
@pytest.mark.parametrize("workers", [1, 4])
def test_strict_parity_matrix(small_chip, model, variant, workers):
    """Pooled compiles are bit-identical to sequential ones — fingerprint
    and every solver counter — across models, options and pool widths."""
    graph = build_model(model, Workload(batch_size=1, seq_len=16))
    overrides = OPTION_MATRIX[variant]
    sequential = _compile(small_chip, graph, overrides)
    with SolverPool(workers) as pool:
        pooled = _compile(small_chip, graph, overrides, pool=pool)
    assert pooled == sequential


@pytest.mark.parametrize("workers", [1, 4])
def test_strict_parity_with_shared_tiers(small_chip, workers):
    """Cold+warm compiles against shared cache and memo tiers advance the
    tier counters identically under the pool."""
    graph = build_model("tiny-cnn", Workload(batch_size=1, seq_len=16))

    def cold_and_warm(pool):
        cache, memo = AllocationCache(), SolveMemo()
        cold = _compile(small_chip, graph, {}, pool=pool, cache=cache, memo=memo)
        warm = _compile(small_chip, graph, {}, pool=pool, cache=cache, memo=memo)
        return cold, warm

    seq_cold, seq_warm = cold_and_warm(None)
    with SolverPool(workers) as pool:
        pool_cold, pool_warm = cold_and_warm(pool)
    assert pool_cold == seq_cold
    assert pool_warm == seq_warm
    # The warm pass is tier-served: fingerprint equal, zero fresh solves.
    assert pool_warm[0] == pool_cold[0]
    assert pool_warm[1] == 0


def test_tier_hits_resolve_without_dispatch(small_chip):
    """A warm compile is served from the memo/cache probes in submit();
    the pool's executor never sees those windows."""
    graph = build_model("tiny-mlp", Workload())
    cache, memo = AllocationCache(), SolveMemo()
    with SolverPool(2) as pool:
        _compile(small_chip, graph, {}, pool=pool, cache=cache, memo=memo)
        after_cold = pool.stats_dict()
        _compile(small_chip, graph, {}, pool=pool, cache=cache, memo=memo)
        after_warm = pool.stats_dict()
    assert after_warm["dispatched"] == after_cold["dispatched"]
    assert after_warm["tier_hits"] > after_cold["tier_hits"]


# --------------------------------------------------------------------- #
# completion-order independence
# --------------------------------------------------------------------- #
class JitterAllocator:
    """Delegating allocator that sleeps a seeded random delay per solve.

    Scrambles which worker finishes first without changing any result —
    the stress harness for the claim that DP decisions are independent
    of completion order.
    """

    def __init__(self, inner, seed: int, max_delay: float = 0.01) -> None:
        self._inner = inner
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._max_delay = max_delay
        self.name = inner.name
        self.allow_memory_mode = getattr(inner, "allow_memory_mode", True)
        self.calls = 0

    def allocate(self, profiles, hardware, pipelined=True):
        with self._lock:
            self.calls += 1
            delay = self._rng.random() * self._max_delay
        time.sleep(delay)
        return self._inner.allocate(profiles, hardware, pipelined=pipelined)


@pytest.mark.parametrize("seed", [0, 7, 1234])
def test_completion_order_independence(small_chip, seed):
    """Randomised per-solve jitter must not move boundaries or counters."""
    graph = build_model("tiny-cnn", Workload(batch_size=1, seq_len=16))
    units = flatten_graph(graph, small_chip)

    reference = NetworkSegmenter(small_chip, SegmentationOptions())
    ref_boundaries = reference.choose_boundaries(graph, list(units))

    options = SegmentationOptions()
    with SolverPool(4) as pool:
        options.solver_pool = pool
        segmenter = NetworkSegmenter(small_chip, options)
        segmenter._allocator = JitterAllocator(segmenter._allocator, seed)
        boundaries = segmenter.choose_boundaries(graph, list(units))
    assert boundaries == ref_boundaries
    assert segmenter.allocation_calls == reference.allocation_calls
    assert segmenter.cache_hits == reference.cache_hits
    assert segmenter._allocator.calls == reference.allocation_calls


# --------------------------------------------------------------------- #
# pool semantics: concurrency, dedup, speculative waste
# --------------------------------------------------------------------- #
class SleepyAllocator:
    """Fixed-delay delegating allocator; sleep releases the GIL like HiGHS."""

    def __init__(self, inner, delay: float) -> None:
        self._inner = inner
        self._delay = delay
        self.name = inner.name
        self.allow_memory_mode = getattr(inner, "allow_memory_mode", True)
        self.calls = 0
        self._lock = threading.Lock()

    def allocate(self, profiles, hardware, pipelined=True):
        with self._lock:
            self.calls += 1
        time.sleep(self._delay)
        return self._inner.allocate(profiles, hardware, pipelined=pipelined)


def _window_solves(chip, model="tiny-cnn", **solve_kwargs):
    """Distinct single-unit WindowSolve requests over a flattened model."""
    graph = build_model(model, Workload(batch_size=1, seq_len=16))
    units = flatten_graph(graph, chip)
    return [
        WindowSolve(
            profiles={unit.name: unit.profile},
            hardware=chip,
            **solve_kwargs,
        )
        for unit in units
    ]


def test_pool_overlaps_gil_releasing_solves(small_chip):
    """Distinct windows on 4 workers finish in far less than serial time.

    Runs even on a single-core machine: the fake solver's sleep releases
    the GIL exactly like HiGHS does, so the overlap this asserts is the
    same overlap the real pool exploits on a multicore runner.
    """
    delay = 0.05
    allocator = SleepyAllocator(GreedyAllocator(), delay)
    solves = _window_solves(small_chip, allocator=allocator, refine=False)
    assert len(solves) >= 4
    with SolverPool(4) as pool:
        started = time.perf_counter()
        tickets = [pool.submit(solve) for solve in solves]
        results = [ticket.result() for ticket in tickets]
        elapsed = time.perf_counter() - started
    serial = delay * len(solves)
    assert all(result.feasible for result in results)
    assert allocator.calls == len(solves)
    # Generous bound (75% of serial) to stay robust on loaded machines;
    # ideal 4-way overlap would be ~25%.
    assert elapsed < serial * 0.75, (elapsed, serial)


def test_single_flight_dedup_of_identical_solves(small_chip):
    """Concurrent identical solves run once; followers share the entry."""
    delay = 0.05
    allocator = SleepyAllocator(GreedyAllocator(), delay)
    solve = _window_solves(small_chip, allocator=allocator, refine=False)[0]
    with SolverPool(4) as pool:
        tickets = [pool.submit(solve) for _ in range(4)]
        results = [ticket.result() for ticket in tickets]
        stats = pool.stats_dict()
    assert allocator.calls == 1
    assert stats["dispatched"] == 1
    assert stats["dedup_hits"] == 3
    lead = results[0]
    for follower in results[1:]:
        assert follower.allocations == lead.allocations
        assert follower.latency_cycles == lead.latency_cycles
        assert follower.from_cache  # follower results are entry-served


def test_follower_writes_through_its_own_tiers(small_chip):
    """A coalesced follower replicates the entry into tiers the leader
    does not share (two compiles with separate memos, one pool)."""
    delay = 0.05
    allocator = SleepyAllocator(GreedyAllocator(), delay)
    base = _window_solves(small_chip, allocator=allocator, refine=False)[0]
    leader_memo, follower_memo = SolveMemo(), SolveMemo()
    from dataclasses import replace

    with SolverPool(2) as pool:
        lead_ticket = pool.submit(replace(base, memo=leader_memo))
        follow_ticket = pool.submit(replace(base, memo=follower_memo))
        lead_ticket.result()
        follow_ticket.result()
    names = list(base.profiles)
    key = base.cache_key()
    assert leader_memo.lookup(key, names) is not None
    assert follower_memo.lookup(key, names) is not None


def test_speculative_mode_identical_fingerprint_reports_waste(small_chip):
    """Speculative lookahead keeps the program bit-identical; any extra
    solves are visible as speculative_waste, never silently lost."""
    graph = build_model("tiny-cnn", Workload(batch_size=1, seq_len=16))
    sequential = _compile(small_chip, graph, {})
    with SolverPool(4) as pool:
        options = CompilerOptions(generate_code=False, speculative_solves=True)
        compiler = CMSwitchCompiler(small_chip, options, solver_pool=pool)
        program = compiler.compile(graph)
        stats = pool.stats_dict()
    assert program.fingerprint() == sequential[0]
    waste = program.stats.get("speculative_waste", 0)
    assert stats["speculative_waste"] == waste
    # Reported work == performed work: sequential solves + the waste.
    assert program.stats["allocator_solves"] == sequential[1] + waste


# --------------------------------------------------------------------- #
# lifecycle and failure isolation
# --------------------------------------------------------------------- #
def test_close_is_idempotent_and_rejects_new_work(small_chip):
    pool = SolverPool(2)
    pool.close()
    pool.close()  # second close is a no-op
    assert pool.closed
    solve = _window_solves(small_chip, allocator=GreedyAllocator(), refine=False)[0]
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(solve)


def test_context_manager_closes():
    with SolverPool(1) as pool:
        assert not pool.closed
    assert pool.closed


class ExplodingAllocator:
    """Raises on a chosen operator; delegates everything else."""

    def __init__(self, inner, poison: str) -> None:
        self._inner = inner
        self._poison = poison
        self.name = inner.name
        self.allow_memory_mode = getattr(inner, "allow_memory_mode", True)

    def allocate(self, profiles, hardware, pipelined=True):
        if self._poison in profiles:
            raise RuntimeError(f"poisoned solve: {self._poison}")
        return self._inner.allocate(profiles, hardware, pipelined=pipelined)


def test_worker_failure_poisons_only_its_window(small_chip):
    """A worker-raised solve becomes an infeasible window (solver tag
    "failed"); the DP routes around it and the pool keeps serving."""
    graph = build_model("tiny-mlp", Workload())
    units = list(flatten_graph(graph, small_chip))
    assert len(units) >= 2
    poison = units[0].name

    options = SegmentationOptions()
    with SolverPool(2) as pool:
        options.solver_pool = pool
        segmenter = NetworkSegmenter(small_chip, options)
        segmenter._allocator = ExplodingAllocator(segmenter._allocator, poison)
        boundaries = segmenter.choose_boundaries(graph, units)
        # Every window containing the poisoned unit settled as "failed";
        # windows without it solved normally on the same pool.
        failed = [
            result
            for result in segmenter._allocation_cache.values()
            if result.solver == "failed"
        ]
        assert failed and all(not result.feasible for result in failed)
        assert pool.stats_dict()["failed"] == len(failed)
        # Failed windows are not counted as solves (no counter pollution).
        clean = [
            result
            for result in segmenter._allocation_cache.values()
            if result.solver not in ("failed", "infeasible")
        ]
        assert segmenter.allocation_calls == len(clean)
        # The pool survives: submit fresh work after the failures.
        extra = _window_solves(
            small_chip, model="tiny-cnn", allocator=GreedyAllocator(), refine=False
        )[0]
        assert pool.submit(extra).result().feasible
    # The DP still found a plan that avoids the poisoned single window
    # only if one exists; at minimum the boundaries cover all units.
    assert boundaries[0][0] == 0 and boundaries[-1][1] == len(units) - 1


def test_resolve_workers_validation():
    assert resolve_workers(1) == 1
    assert resolve_workers(8) == 8
    assert resolve_workers(None) >= 1
    for bad in (0, -2, True, 2.5, "4"):
        with pytest.raises(ValueError):
            resolve_workers(bad)


def test_compiler_options_validate_solve_jobs():
    with pytest.raises(ValueError):
        CompilerOptions(solve_jobs=0)
    with pytest.raises(ValueError):
        CompilerOptions(solve_jobs=-1)
    # Runtime knobs never split option identity.
    assert CompilerOptions() == CompilerOptions(solve_jobs=4, speculative_solves=True)


def test_ephemeral_pool_from_solve_jobs(small_chip):
    """With no shared pool, options.solve_jobs builds (and closes) an
    ephemeral pool per compile — parity still holds."""
    graph = build_model("tiny-mlp", Workload())
    sequential = _compile(small_chip, graph, {})
    pooled = _compile(small_chip, graph, {"solve_jobs": 2})
    assert pooled == sequential


def test_session_shared_pool_and_close(small_chip):
    """Session(solve_jobs=) owns one pool across compiles and closes it."""
    from repro.api import Session

    graph = build_model("tiny-mlp", Workload())
    session = Session(hardware=small_chip, solve_jobs=2)
    first = session.compile(graph)
    second = session.compile(graph)
    assert first.fingerprint() == second.fingerprint()
    stats = session.service.solver_pool_stats()
    assert stats["workers"] == 2
    session.close()
    assert session.service.solver_pool.closed
    with pytest.raises(RuntimeError, match="closed"):
        session.compile(graph)
