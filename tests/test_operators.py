"""Unit tests for IR operators (repro.ir.operators)."""

import pytest

from repro.ir.operators import (
    Activation,
    Concat,
    Conv2d,
    Elementwise,
    Embedding,
    GlobalAvgPool,
    Linear,
    MatMul,
    Normalization,
    Pool2d,
    Reshape,
    Softmax,
    operator_from_dict,
)
from repro.ir.tensor import DataType, TensorSpec


def t(name, *shape, dtype=DataType.INT8):
    return TensorSpec(name, tuple(shape), dtype=dtype)


class TestLinear:
    def make(self, m=4, k=8, n=16):
        return Linear(
            "fc",
            input=t("x", m, k),
            output=t("y", m, n),
            weight=t("w", k, n),
        )

    def test_macs(self):
        assert self.make(4, 8, 16).macs == 4 * 8 * 16

    def test_flops_twice_macs(self):
        op = self.make()
        assert op.flops == 2 * op.macs

    def test_matmul_dims(self):
        dims = self.make(4, 8, 16).matmul_dims()
        assert (dims.m, dims.k, dims.n) == (4, 8, 16)

    def test_matmul_dims_with_batch_dims(self):
        op = Linear(
            "fc", input=t("x", 2, 3, 8), output=t("y", 2, 3, 16), weight=t("w", 8, 16)
        )
        assert op.matmul_dims().m == 6

    def test_is_cim_mappable_with_static_weight(self):
        op = self.make()
        assert op.is_cim_mappable
        assert op.has_static_weight

    def test_weight_elements(self):
        assert self.make(4, 8, 16).weight_elements == 128

    def test_stationary_elements(self):
        assert self.make(4, 8, 16).stationary_elements == 128

    def test_streamed_excludes_static_weights(self):
        op = self.make(4, 8, 16)
        assert op.streamed_elements == 4 * 8 + 4 * 16

    def test_mismatched_input_features_rejected(self):
        with pytest.raises(ValueError):
            Linear("fc", input=t("x", 4, 7), output=t("y", 4, 16), weight=t("w", 8, 16))

    def test_mismatched_output_features_rejected(self):
        with pytest.raises(ValueError):
            Linear("fc", input=t("x", 4, 8), output=t("y", 4, 15), weight=t("w", 8, 16))

    def test_weight_rank_checked(self):
        with pytest.raises(ValueError):
            Linear("fc", input=t("x", 4, 8), output=t("y", 4, 16), weight=t("w", 8, 16, 1))

    def test_arithmetic_intensity_with_and_without_weights(self):
        op = self.make(1, 1024, 1024)
        with_w = op.arithmetic_intensity(include_weights=True)
        without_w = op.arithmetic_intensity(include_weights=False)
        assert with_w < without_w  # GEMV: weights dominate traffic


class TestMatMul:
    def make_batched(self, b=2, m=4, k=8, n=6):
        return MatMul("qk", lhs=t("q", b, m, k), rhs=t("kT", b, k, n), output=t("s", b, m, n))

    def test_macs(self):
        assert self.make_batched(2, 4, 8, 6).macs == 2 * 4 * 8 * 6

    def test_no_static_weight(self):
        op = self.make_batched()
        assert not op.has_static_weight
        assert op.weight_elements == 0

    def test_stationary_is_single_head_matrix(self):
        # Heads time-share the same compute arrays, so only one K x N matrix
        # must be resident at a time.
        op = self.make_batched(2, 4, 8, 6)
        assert op.stationary_elements == 8 * 6

    def test_streamed_includes_both_operands(self):
        op = self.make_batched(2, 4, 8, 6)
        assert op.streamed_input_elements == 2 * 4 * 8 + 2 * 8 * 6

    def test_inner_dim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MatMul("bad", lhs=t("a", 4, 8), rhs=t("b", 7, 6), output=t("c", 4, 6))

    def test_is_cim_mappable(self):
        assert self.make_batched().is_cim_mappable


class TestConv2d:
    def make(self, groups=1, in_c=8, out_c=16, k=3):
        return Conv2d(
            "conv",
            input=t("x", 1, in_c, 8, 8),
            output=t("y", 1, out_c, 8, 8),
            weight=t("w", out_c, in_c // groups, k, k),
            stride=(1, 1),
            padding=(1, 1),
            groups=groups,
        )

    def test_macs(self):
        op = self.make()
        assert op.macs == 1 * 8 * 8 * 16 * 8 * 3 * 3

    def test_matmul_dims_im2col(self):
        dims = self.make().matmul_dims()
        assert dims.m == 64
        assert dims.k == 8 * 9
        assert dims.n == 16

    def test_depthwise_detection(self):
        op = self.make(groups=8, in_c=8, out_c=8)
        assert op.is_depthwise

    def test_depthwise_macs(self):
        op = self.make(groups=8, in_c=8, out_c=8)
        assert op.macs == 1 * 8 * 8 * 8 * 1 * 3 * 3

    def test_grouped_dims_replicate_rows(self):
        op = self.make(groups=8, in_c=8, out_c=8)
        dims = op.matmul_dims()
        assert dims.m == 64 * 8
        assert dims.k == 9

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(
                "conv",
                input=t("x", 1, 8, 8, 8),
                output=t("y", 1, 16, 8, 8),
                weight=t("w", 16, 4, 3, 3),
            )

    def test_output_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Conv2d(
                "conv",
                input=t("x", 1, 8, 8, 8),
                output=t("y", 1, 12, 8, 8),
                weight=t("w", 16, 8, 3, 3),
            )

    def test_rank_checked(self):
        with pytest.raises(ValueError):
            Conv2d(
                "conv",
                input=t("x", 8, 8, 8),
                output=t("y", 1, 16, 8, 8),
                weight=t("w", 16, 8, 3, 3),
            )


class TestAuxiliaryOperators:
    def test_activation_flops(self):
        op = Activation("relu", input=t("x", 4, 4), output=t("y", 4, 4), function="relu")
        assert op.flops == 16
        assert not op.is_cim_mappable

    def test_softmax_flops(self):
        op = Softmax("sm", input=t("x", 2, 8), output=t("y", 2, 8))
        assert op.flops == 3 * 16

    def test_normalization_kinds(self):
        op = Normalization("ln", input=t("x", 2, 8), output=t("y", 2, 8), kind="rmsnorm")
        assert op.kind == "rmsnorm"
        assert op.flops > 0

    def test_pool_flops(self):
        op = Pool2d("p", input=t("x", 1, 4, 8, 8), output=t("y", 1, 4, 4, 4), kernel=(2, 2))
        assert op.flops == 4 * 4 * 4 * 4

    def test_global_avg_pool(self):
        op = GlobalAvgPool("gap", input=t("x", 1, 16, 7, 7), output=t("y", 1, 16))
        assert op.flops == 16 * 49

    def test_embedding_has_weight(self):
        op = Embedding("emb", input=t("ids", 1, 8), output=t("y", 1, 8, 32), weight=t("w", 100, 32))
        assert op.weight_elements == 3200
        assert not op.is_cim_mappable

    def test_reshape_is_view(self):
        op = Reshape("r", input=t("x", 2, 8), output=t("y", 16))
        assert op.is_view
        assert op.flops == 0

    def test_reshape_element_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Reshape("r", input=t("x", 2, 8), output=t("y", 15))

    def test_concat(self):
        op = Concat("c", inputs=[t("a", 2, 3), t("b", 2, 5)], output=t("y", 2, 8), axis=1)
        assert op.input_elements == 16
        assert op.axis == 1

    def test_elementwise_mul(self):
        op = Elementwise("m", inputs=[t("a", 4), t("b", 4)], output=t("y", 4), function="mul")
        assert op.function == "mul"
        assert op.flops == 4

    def test_operator_requires_name_and_output(self):
        with pytest.raises(ValueError):
            Activation("", input=t("x", 1), output=t("y", 1))


class TestSerialization:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: Linear("fc", t("x", 4, 8), t("y", 4, 16), t("w", 8, 16)),
            lambda: MatMul("mm", t("a", 4, 8), t("b", 8, 6), t("c", 4, 6)),
            lambda: Conv2d("cv", t("x", 1, 4, 8, 8), t("y", 1, 8, 8, 8), t("w", 8, 4, 3, 3), padding=(1, 1)),
            lambda: Softmax("sm", t("x", 2, 8), t("y", 2, 8)),
            lambda: Pool2d("p", t("x", 1, 4, 8, 8), t("y", 1, 4, 4, 4)),
            lambda: Normalization("n", t("x", 2, 8), t("y", 2, 8), kind="layernorm"),
            lambda: Reshape("r", t("x", 2, 8), t("y", 16)),
            lambda: Concat("c", [t("a", 2, 3), t("b", 2, 5)], t("y", 2, 8), axis=1),
        ],
    )
    def test_roundtrip_preserves_costs(self, factory):
        original = factory()
        restored = operator_from_dict(original.to_dict())
        assert restored.op_type == original.op_type
        assert restored.name == original.name
        assert restored.macs == original.macs
        assert restored.flops == original.flops
        assert restored.input_elements == original.input_elements
        assert restored.output_elements == original.output_elements
        assert restored.weight_elements == original.weight_elements

    def test_roundtrip_preserves_matmul_dims(self):
        original = Conv2d(
            "cv", t("x", 1, 4, 8, 8), t("y", 1, 8, 4, 4), t("w", 8, 4, 3, 3), stride=(2, 2), padding=(1, 1)
        )
        restored = operator_from_dict(original.to_dict())
        assert restored.matmul_dims() == original.matmul_dims()
