"""Computation graph container and queries.

A :class:`Graph` is an ordered collection of :class:`~repro.ir.operators.Operator`
objects connected through tensor names: operator ``B`` depends on operator
``A`` when one of ``B``'s inputs has the same name as one of ``A``'s
outputs.  The graph offers the queries the compiler needs:

* topological order of operators (the paper's ``O_1 ... O_m`` sequence),
* the dependency relation ``W`` (``w_{i,j}``: output of ``O_i`` feeds ``O_j``),
* the subset of CIM-mappable operators,
* aggregate statistics (parameters, MACs, activation footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .operators import Operator
from .tensor import TensorSpec


class GraphError(ValueError):
    """Raised when a graph is malformed (duplicate names, cycles, ...)."""


@dataclass
class GraphStats:
    """Aggregate statistics of a graph.

    Attributes:
        num_operators: Total number of operators.
        num_cim_operators: Number of CIM-mappable operators.
        total_macs: Sum of MAC counts over all operators.
        total_flops: Sum of FLOP counts over all operators.
        total_weight_elements: Total static parameter elements.
        total_weight_bytes: Total static parameter bytes.
        total_activation_elements: Sum of all operator output elements.
        total_activation_bytes: Sum of all operator output bytes.
        mean_arithmetic_intensity: FLOPs divided by total moved data
            (activations + weights), the model-level quantity of Fig. 5(c).
    """

    num_operators: int
    num_cim_operators: int
    total_macs: int
    total_flops: int
    total_weight_elements: int
    total_weight_bytes: int
    total_activation_elements: int
    total_activation_bytes: int
    mean_arithmetic_intensity: float


class Graph:
    """A directed acyclic graph of operators.

    Args:
        name: Human-readable model name (e.g. ``"resnet18"``).
        operators: Optional initial operators, added in order.
    """

    def __init__(self, name: str, operators: Optional[Iterable[Operator]] = None) -> None:
        self.name = name
        self._operators: Dict[str, Operator] = {}
        self._producers: Dict[str, str] = {}  # tensor name -> operator name
        self.graph_inputs: List[TensorSpec] = []
        self.graph_outputs: List[TensorSpec] = []
        #: Free-form model-level metadata (e.g. ``block_repeat`` for
        #: transformer models whose single physical block stands for all
        #: layers, following the paper's per-block compilation reuse).
        self.metadata: Dict = {}
        if operators:
            for op in operators:
                self.add_operator(op)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_operator(self, op: Operator) -> Operator:
        """Add an operator; its inputs may reference earlier outputs."""
        if op.name in self._operators:
            raise GraphError(f"duplicate operator name {op.name!r}")
        for out in op.outputs:
            if out.name in self._producers:
                raise GraphError(
                    f"tensor {out.name!r} produced by both "
                    f"{self._producers[out.name]!r} and {op.name!r}"
                )
        self._operators[op.name] = op
        for out in op.outputs:
            self._producers[out.name] = op.name
        return op

    def add_input(self, spec: TensorSpec) -> TensorSpec:
        """Declare a graph-level input tensor."""
        self.graph_inputs.append(spec)
        return spec

    def add_output(self, spec: TensorSpec) -> TensorSpec:
        """Declare a graph-level output tensor."""
        self.graph_outputs.append(spec)
        return spec

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._operators)

    def __iter__(self) -> Iterator[Operator]:
        return iter(self._operators.values())

    def __contains__(self, name: str) -> bool:
        return name in self._operators

    def operator(self, name: str) -> Operator:
        """Return the operator with the given name."""
        try:
            return self._operators[name]
        except KeyError:
            raise GraphError(f"unknown operator {name!r}") from None

    @property
    def operators(self) -> List[Operator]:
        """Operators in insertion order."""
        return list(self._operators.values())

    def producer_of(self, tensor_name: str) -> Optional[Operator]:
        """Operator producing a tensor, or ``None`` for graph inputs."""
        producer = self._producers.get(tensor_name)
        return self._operators[producer] if producer is not None else None

    def consumers_of(self, tensor_name: str) -> List[Operator]:
        """Operators consuming a tensor."""
        return [
            op
            for op in self._operators.values()
            if any(t.name == tensor_name for t in op.inputs)
        ]

    def predecessors(self, op: Operator) -> List[Operator]:
        """Operators whose outputs feed ``op``."""
        preds = []
        seen: Set[str] = set()
        for tensor in op.inputs:
            producer = self.producer_of(tensor.name)
            if producer is not None and producer.name not in seen:
                seen.add(producer.name)
                preds.append(producer)
        return preds

    def successors(self, op: Operator) -> List[Operator]:
        """Operators consuming outputs of ``op``."""
        succs = []
        seen: Set[str] = set()
        for tensor in op.outputs:
            for consumer in self.consumers_of(tensor.name):
                if consumer.name not in seen:
                    seen.add(consumer.name)
                    succs.append(consumer)
        return succs

    def to_networkx(self) -> nx.DiGraph:
        """Build the operator-dependency digraph (nodes = operator names)."""
        digraph = nx.DiGraph()
        for op in self._operators.values():
            digraph.add_node(op.name)
        for op in self._operators.values():
            for pred in self.predecessors(op):
                digraph.add_edge(pred.name, op.name)
        return digraph

    def validate(self) -> None:
        """Check the graph is a DAG with all inputs accounted for.

        Raises:
            GraphError: If a cycle exists, or an operator consumes a tensor
                that is neither a graph input nor produced by any operator.
        """
        known = {spec.name for spec in self.graph_inputs}
        known.update(self._producers.keys())
        for op in self._operators.values():
            for tensor in op.inputs:
                if tensor.name not in known:
                    raise GraphError(
                        f"operator {op.name!r} consumes unknown tensor {tensor.name!r}"
                    )
        digraph = self.to_networkx()
        if not nx.is_directed_acyclic_graph(digraph):
            cycle = nx.find_cycle(digraph)
            raise GraphError(f"graph contains a cycle: {cycle}")

    def topological_order(self) -> List[Operator]:
        """Operators in a deterministic topological order.

        Ties are broken by insertion order so repeated compilations of the
        same model are reproducible (lexicographic topological sort keyed on
        the operator's insertion index).
        """
        index = {name: i for i, name in enumerate(self._operators)}
        digraph = self.to_networkx()
        order = nx.lexicographical_topological_sort(digraph, key=lambda n: index[n])
        return [self._operators[name] for name in order]

    def cim_operators(self) -> List[Operator]:
        """CIM-mappable operators in topological order."""
        return [op for op in self.topological_order() if op.is_cim_mappable]

    def dependency_pairs(self) -> Set[Tuple[str, str]]:
        """The relation ``W``: pairs ``(producer, consumer)`` of operator names."""
        pairs: Set[Tuple[str, str]] = set()
        for op in self._operators.values():
            for pred in self.predecessors(op):
                pairs.add((pred.name, op.name))
        return pairs

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> GraphStats:
        """Aggregate model statistics (Fig. 5(c) style numbers)."""
        ops = self.operators
        total_macs = sum(op.macs for op in ops)
        total_flops = sum(op.flops for op in ops)
        total_weight_elements = sum(op.weight_elements for op in ops)
        total_weight_bytes = sum(op.weight_bytes for op in ops)
        total_activation_elements = sum(op.output_elements for op in ops if not op.is_view)
        total_activation_bytes = sum(op.output_bytes for op in ops if not op.is_view)
        moved = total_weight_elements + total_activation_elements
        mean_ai = (total_flops / moved) if moved else 0.0
        return GraphStats(
            num_operators=len(ops),
            num_cim_operators=sum(1 for op in ops if op.is_cim_mappable),
            total_macs=total_macs,
            total_flops=total_flops,
            total_weight_elements=total_weight_elements,
            total_weight_bytes=total_weight_bytes,
            total_activation_elements=total_activation_elements,
            total_activation_bytes=total_activation_bytes,
            mean_arithmetic_intensity=mean_ai,
        )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise the whole graph to a JSON-friendly dictionary."""
        return {
            "name": self.name,
            "metadata": dict(self.metadata),
            "inputs": [t.to_dict() for t in self.graph_inputs],
            "outputs": [t.to_dict() for t in self.graph_outputs],
            "operators": [op.to_dict() for op in self._operators.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Graph":
        """Rebuild a graph from :meth:`to_dict` output."""
        from .operators import operator_from_dict

        graph = cls(name=data["name"])
        graph.metadata = dict(data.get("metadata") or {})
        for spec in data.get("inputs", []):
            graph.add_input(TensorSpec.from_dict(spec))
        for op_data in data.get("operators", []):
            graph.add_operator(operator_from_dict(op_data))
        for spec in data.get("outputs", []):
            graph.add_output(TensorSpec.from_dict(spec))
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Graph {self.name!r}: {len(self)} operators>"
