"""Tests for the model zoo and workload descriptions."""

import pytest

from repro.models import Phase, Workload, build_model, is_transformer, list_models, register_model
from repro.models.transformer import LLAMA2_7B, OPT_13B, TransformerConfig
from repro.models.transformer.common import attention_sequence_lengths, build_transformer_graph


class TestWorkload:
    def test_defaults(self):
        wl = Workload()
        assert wl.batch_size == 1
        assert wl.seq_len == 64
        assert wl.phase is Phase.PREFILL

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"batch_size": 0},
            {"seq_len": 0},
            {"output_len": -1},
            {"image_size": 0},
            {"kv_len": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            Workload(**kwargs)

    def test_effective_kv_len_default(self):
        wl = Workload(seq_len=100, output_len=60)
        assert wl.effective_kv_len == 130

    def test_effective_kv_len_override(self):
        wl = Workload(seq_len=100, output_len=60, kv_len=512)
        assert wl.effective_kv_len == 512

    def test_phase_helpers(self):
        wl = Workload()
        assert wl.decode().phase is Phase.DECODE
        assert wl.prefill().phase is Phase.PREFILL
        assert wl.encode().phase is Phase.ENCODE

    def test_with_helpers_return_copies(self):
        wl = Workload()
        assert wl.with_batch(8).batch_size == 8
        assert wl.with_seq_len(256).seq_len == 256
        assert wl.with_output_len(32).output_len == 32
        assert wl.batch_size == 1  # original untouched

    def test_describe_mentions_batch_and_phase(self):
        text = Workload(batch_size=4).describe()
        assert "batch=4" in text and "prefill" in text


class TestRegistry:
    def test_list_models_contains_benchmarks(self):
        models = list_models()
        for name in ("bert", "llama2-7b", "opt-13b", "mobilenet", "resnet18", "vgg16"):
            assert name in models

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            build_model("not-a-model")

    def test_register_model(self):
        register_model("custom-test-model", lambda wl: build_model("tiny-mlp", wl))
        assert "custom-test-model" in list_models()
        with pytest.raises(ValueError):
            register_model("custom-test-model", lambda wl: None)

    def test_is_transformer(self):
        assert is_transformer("bert")
        assert is_transformer("llama2-7b")
        assert not is_transformer("resnet18")

    @pytest.mark.parametrize("name", ["tiny-mlp", "tiny-cnn", "tiny-transformer"])
    def test_tiny_models_validate(self, name):
        graph = build_model(name, Workload(batch_size=2, seq_len=8))
        graph.validate()
        assert len(graph) > 0


class TestCNNModels:
    def test_resnet50_macs_and_params(self):
        graph = build_model("resnet50", Workload(batch_size=1))
        stats = graph.stats()
        assert 3.5e9 < stats.total_macs < 4.5e9  # ~4.1 GMACs
        assert 23e6 < stats.total_weight_elements < 28e6  # ~25.5 M parameters

    def test_resnet18_macs_and_params(self):
        stats = build_model("resnet18", Workload(batch_size=1)).stats()
        assert 1.5e9 < stats.total_macs < 2.1e9
        assert 10e6 < stats.total_weight_elements < 13e6

    def test_vgg16_macs_and_params(self):
        stats = build_model("vgg16", Workload(batch_size=1)).stats()
        assert 14e9 < stats.total_macs < 16.5e9
        assert 130e6 < stats.total_weight_elements < 145e6

    def test_mobilenet_macs_and_params(self):
        stats = build_model("mobilenet", Workload(batch_size=1)).stats()
        assert 0.25e9 < stats.total_macs < 0.4e9
        assert 3e6 < stats.total_weight_elements < 4e6

    def test_batch_scales_macs_linearly(self):
        one = build_model("resnet18", Workload(batch_size=1)).stats().total_macs
        four = build_model("resnet18", Workload(batch_size=4)).stats().total_macs
        assert four == 4 * one

    def test_image_size_affects_shapes(self):
        small = build_model("resnet18", Workload(batch_size=1, image_size=128)).stats()
        large = build_model("resnet18", Workload(batch_size=1, image_size=224)).stats()
        assert small.total_macs < large.total_macs

    def test_cnn_metadata(self):
        graph = build_model("vgg16", Workload(batch_size=2))
        assert graph.metadata["family"] == "cnn"
        assert graph.metadata["block_repeat"] == 1.0
        assert graph.metadata["batch_size"] == 2


class TestTransformerModels:
    def test_block_repeat_matches_layer_count(self):
        graph = build_model("llama2-7b", Workload(batch_size=1, seq_len=32))
        assert graph.metadata["block_repeat"] == 32
        graph = build_model("opt-13b", Workload(batch_size=1, seq_len=32))
        assert graph.metadata["block_repeat"] == 40

    def test_llama_block_parameters(self):
        graph = build_model("llama2-7b", Workload(batch_size=1, seq_len=32))
        per_block = graph.stats().total_weight_elements
        # 4 x 4096^2 attention + 3 x 4096 x 11008 gated FFN ~ 202 M
        assert 195e6 < per_block < 210e6
        # whole model ~ 6.5-7 B weights
        assert 6.2e9 < per_block * 32 < 7.2e9

    def test_opt13b_block_parameters(self):
        graph = build_model("opt-13b", Workload(batch_size=1, seq_len=32))
        total = graph.stats().total_weight_elements * graph.metadata["block_repeat"]
        assert 12e9 < total < 14e9

    def test_approx_parameters_property(self):
        assert 6.3e9 < LLAMA2_7B.approx_parameters < 7.2e9
        assert 12.5e9 < OPT_13B.approx_parameters < 14e9

    def test_decode_uses_single_query_token(self):
        wl = Workload(batch_size=1, seq_len=64, phase=Phase.DECODE)
        assert attention_sequence_lengths(LLAMA2_7B, wl) == (1, wl.effective_kv_len)

    def test_encode_uses_full_sequence(self):
        wl = Workload(batch_size=1, seq_len=64, phase=Phase.ENCODE)
        assert attention_sequence_lengths(LLAMA2_7B, wl) == (64, 64)

    def test_decode_graph_has_kv_cache_inputs(self):
        graph = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.DECODE))
        input_names = {spec.name for spec in graph.graph_inputs}
        assert any("k_cache" in name for name in input_names)
        assert any("v_cache" in name for name in input_names)

    def test_decode_macs_much_smaller_than_prefill(self):
        decode = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.DECODE))
        prefill = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.PREFILL))
        assert decode.stats().total_macs < prefill.stats().total_macs / 16

    def test_sequence_length_scales_attention_quadratically(self):
        short = build_model("bert", Workload(batch_size=1, seq_len=64, phase=Phase.ENCODE))
        long = build_model("bert", Workload(batch_size=1, seq_len=256, phase=Phase.ENCODE))
        short_qk = next(op for op in short.operators if op.name.endswith("_qk"))
        long_qk = next(op for op in long.operators if op.name.endswith("_qk"))
        assert long_qk.macs == 16 * short_qk.macs

    def test_gated_ffn_has_three_projections(self):
        graph = build_model("llama2-7b", Workload(batch_size=1, seq_len=16))
        ffn_ops = [op for op in graph.operators if "ffn" in op.name and op.op_type == "linear"]
        assert len(ffn_ops) == 3  # gate, up, down

    def test_non_gated_ffn_has_two_projections(self):
        graph = build_model("opt-6.7b", Workload(batch_size=1, seq_len=16))
        ffn_ops = [op for op in graph.operators if "ffn" in op.name and op.op_type == "linear"]
        assert len(ffn_ops) == 2

    def test_lm_head_optional(self):
        wl = Workload(batch_size=1, seq_len=16)
        config = TransformerConfig(
            name="t", hidden_size=64, num_layers=2, num_heads=4, ffn_hidden=128, vocab_size=500
        )
        without = build_transformer_graph(config, wl, include_lm_head=False)
        with_head = build_transformer_graph(config, wl, include_lm_head=True)
        assert len(with_head) > len(without)
        assert any(op.name == "lm_head" for op in with_head.operators)

    def test_invalid_head_division_rejected(self):
        with pytest.raises(ValueError):
            TransformerConfig(
                name="bad", hidden_size=100, num_layers=1, num_heads=3, ffn_hidden=64
            )

    def test_blocks_argument_limits_physical_layers(self):
        wl = Workload(batch_size=1, seq_len=16)
        config = TransformerConfig(
            name="t", hidden_size=64, num_layers=4, num_heads=4, ffn_hidden=128
        )
        graph = build_transformer_graph(config, wl, blocks=2)
        assert graph.metadata["physical_blocks"] == 2
        assert graph.metadata["block_repeat"] == 2.0

    def test_zero_blocks_rejected(self):
        wl = Workload(batch_size=1, seq_len=16)
        config = TransformerConfig(
            name="t", hidden_size=64, num_layers=4, num_heads=4, ffn_hidden=128
        )
        with pytest.raises(ValueError):
            build_transformer_graph(config, wl, blocks=0)
