"""Hardware sensitivity sweep (extension beyond the paper's evaluation).

Sweeps individual DEHA parameters around the DynaPlasia-like operating
point and records how the CMSwitch advantage over CIM-MLC responds.  The
expectations encoded here follow the paper's arguments: dual-mode
awareness never hurts, and a dramatically slower mode switch erodes (but
does not invert) the benefit because the compiler's DP charges the switch
cost and falls back to fixed-mode plans when switching stops paying off.
"""

import pytest

from conftest import record

from repro.experiments.sensitivity import render_report, run_sensitivity


@pytest.mark.benchmark(group="sensitivity")
def test_hardware_sensitivity(benchmark, chip, grids):
    """CMSwitch-over-CIM-MLC speedup across DEHA parameter sweeps."""
    sweeps = {
        "num_arrays": (48, 96, 192),
        "extern_bw_bits": (512, 4096),
        "switch_latency": (1, 4096),
    }

    def run():
        return run_sensitivity(
            model="llama2-7b", batch_size=4, seq_len=64, hardware=chip, sweeps=sweeps
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))

    # Dual-mode awareness never loses, under any swept configuration.
    assert all(row["speedup_vs_cim-mlc"] >= 0.99 for row in rows)

    # A slower off-chip link increases the value of on-chip memory mode.
    by_bw = {
        row["value"]: row["speedup_vs_cim-mlc"]
        for row in rows
        if row["parameter"] == "extern_bw_bits"
    }
    assert by_bw[512] >= by_bw[4096] - 0.02
