"""GPT-2 family decoder models (Radford et al., 2019 / Brown et al., 2020).

GPT appears in the paper's motivation study (Fig. 1(b)).  We provide GPT-2
(124M) and GPT-2-XL (1.5B) configurations; both are standard pre-norm
decoders with a GELU feed-forward network.
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...ir.tensor import DataType
from ..workload import Workload
from .common import TransformerConfig, build_transformer_graph

GPT2_SMALL = TransformerConfig(
    name="gpt2",
    hidden_size=768,
    num_layers=12,
    num_heads=12,
    ffn_hidden=3072,
    vocab_size=50257,
    activation="gelu",
    gated_ffn=False,
    norm="layernorm",
    causal=True,
)

GPT2_XL = TransformerConfig(
    name="gpt2-xl",
    hidden_size=1600,
    num_layers=48,
    num_heads=25,
    ffn_hidden=6400,
    vocab_size=50257,
    activation="gelu",
    gated_ffn=False,
    norm="layernorm",
    causal=True,
)


def build_gpt2(workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8) -> Graph:
    """Build a GPT-2 (124M) graph for the given workload phase."""
    return build_transformer_graph(GPT2_SMALL, workload, blocks=blocks, dtype=dtype)


def build_gpt2_xl(workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8) -> Graph:
    """Build a GPT-2-XL (1.5B) graph for the given workload phase."""
    return build_transformer_graph(GPT2_XL, workload, blocks=blocks, dtype=dtype)
