"""VGG image classifiers (Simonyan & Zisserman, 2014).

VGG-16 is the highest-arithmetic-intensity CNN in the paper's benchmark
set and the subject of the allocation visualisation in Fig. 15(a): early
convolutions (few channels, large feature maps) receive mostly compute
arrays while the final convolutions (many channels) receive memory arrays
for input bandwidth.
"""

from __future__ import annotations

from typing import Sequence, Tuple, Union

from ...ir.builder import GraphBuilder
from ...ir.graph import Graph
from ...ir.tensor import DataType
from ..workload import Workload

# Configuration "D" from the original paper: numbers are output channels,
# "M" marks a 2x2 max-pooling layer.
VGG16_LAYOUT: Tuple[Union[int, str], ...] = (
    64, 64, "M",
    128, 128, "M",
    256, 256, 256, "M",
    512, 512, 512, "M",
    512, 512, 512, "M",
)

VGG11_LAYOUT: Tuple[Union[int, str], ...] = (
    64, "M",
    128, "M",
    256, 256, "M",
    512, 512, "M",
    512, 512, "M",
)


def _build_vgg(
    name: str, workload: Workload, layout: Sequence[Union[int, str]], dtype: DataType
) -> Graph:
    """Assemble a VGG graph from a channel/pooling layout string."""
    builder = GraphBuilder(name, dtype=dtype)
    x = builder.input("image", (workload.batch_size, 3, workload.image_size, workload.image_size))
    conv_index = 0
    for entry in layout:
        if entry == "M":
            x = builder.pool2d(x, kernel=2, stride=2, mode="max")
            continue
        conv_index += 1
        x = builder.conv2d(x, int(entry), kernel=3, stride=1, padding=1, name=f"conv{conv_index}")
        x = builder.relu(x, name=f"relu{conv_index}")
    n, c, h, w = x.shape
    x = builder.reshape(x, (n, c * h * w), name="flatten")
    x = builder.linear(x, 4096, name="fc1")
    x = builder.relu(x, name="fc1_relu")
    x = builder.linear(x, 4096, name="fc2")
    x = builder.relu(x, name="fc2_relu")
    x = builder.linear(x, 1000, name="fc3")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update(
        {
            "family": "cnn",
            "model": name,
            "batch_size": workload.batch_size,
            "image_size": workload.image_size,
            "block_repeat": 1.0,
        }
    )
    return graph


def build_vgg16(workload: Workload, dtype: DataType = DataType.INT8) -> Graph:
    """Build VGG-16 at ImageNet resolution."""
    return _build_vgg("vgg16", workload, VGG16_LAYOUT, dtype)


def build_vgg11(workload: Workload, dtype: DataType = DataType.INT8) -> Graph:
    """Build VGG-11 at ImageNet resolution (a smaller variant for tests)."""
    return _build_vgg("vgg11", workload, VGG11_LAYOUT, dtype)
