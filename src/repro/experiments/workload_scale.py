"""Workload-scale study — Fig. 16 of the paper.

Transformer benchmarks are evaluated across batch sizes and input/output
sequence lengths.  The paper reports two trends that this experiment
reproduces:

* the speedup of CMSwitch over CIM-MLC is largest at short sequence
  lengths and shrinks (towards parity for BERT) as the sequence grows,
  because arithmetic intensity rises and the workload becomes compute
  bound;
* the average fraction of arrays placed in memory mode falls with the
  sequence length (bottom row of Fig. 16).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cache import AllocationCache
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import is_transformer
from ..models.workload import Phase, Workload
from .common import FIG16_MODELS, format_table, generative_cycles, run_model, speedup

#: Sequence lengths of the Fig. 16 sweep.
FIG16_SEQUENCE_LENGTHS: Sequence[int] = (32, 64, 128, 256, 512, 1024, 2048)


def _is_decoder(model: str) -> bool:
    """Whether the benchmark generates tokens (BERT is encode-only)."""
    return is_transformer(model) and not model.startswith("bert")


def run_workload_scale(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG16_MODELS,
    batch_sizes: Sequence[int] = (4, 8, 16),
    sequence_lengths: Sequence[int] = FIG16_SEQUENCE_LENGTHS,
    cache: Optional[AllocationCache] = None,
) -> List[Dict]:
    """Run the Fig. 16 grid.

    Decoder models process the prompt and generate the same number of
    tokens (input length == output length, as in the paper's sweep);
    encoder models run a single pass at the given length.

    Args:
        cache: Optional shared allocation cache (honoured by the CMSwitch
            compiles).  The grid repeats many structurally identical
            blocks across its cells, so a shared — ideally disk-backed —
            cache collapses most of the sweep's solver work.

    Returns one row per (model, batch size, sequence length) with the
    CIM-MLC and CMSwitch cycles, the speedup and the memory-array ratio.
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for model in models:
        for batch_size in batch_sizes:
            for seq_len in sequence_lengths:
                row: Dict = {"model": model, "batch_size": batch_size, "seq_len": seq_len}
                if _is_decoder(model):
                    workload = Workload(
                        batch_size=batch_size, seq_len=seq_len, output_len=seq_len
                    )
                    cms = generative_cycles(model, workload, hardware, "cmswitch", cache=cache)
                    mlc = generative_cycles(model, workload, hardware, "cim-mlc")
                    row["cmswitch_cycles"] = cms["cycles"]
                    row["cim-mlc_cycles"] = mlc["cycles"]
                    row["memory_array_ratio"] = cms["memory_array_ratio"]
                else:
                    workload = Workload(
                        batch_size=batch_size, seq_len=seq_len, phase=Phase.ENCODE
                    )
                    cms_run = run_model(model, workload, hardware, "cmswitch", cache=cache)
                    mlc_run = run_model(model, workload, hardware, "cim-mlc")
                    row["cmswitch_cycles"] = cms_run.cycles
                    row["cim-mlc_cycles"] = mlc_run.cycles
                    row["memory_array_ratio"] = cms_run.memory_array_ratio
                row["speedup_vs_cim-mlc"] = speedup(
                    row["cim-mlc_cycles"], row["cmswitch_cycles"]
                )
                rows.append(row)
    return rows


def memory_ratio_trend(rows: Sequence[Dict], model: str, batch_size: int) -> List[float]:
    """Memory-array ratio across sequence lengths for one (model, batch)."""
    filtered = [
        row
        for row in rows
        if row["model"] == model and row["batch_size"] == batch_size
    ]
    filtered.sort(key=lambda row: row["seq_len"])
    return [row["memory_array_ratio"] for row in filtered]


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 16 grid."""
    columns = ["model", "batch_size", "seq_len", "speedup_vs_cim-mlc", "memory_array_ratio"]
    return format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print a reduced Fig. 16 reproduction."""
    rows = run_workload_scale(
        models=("bert", "llama2-7b"), batch_sizes=(4,), sequence_lengths=(32, 128, 512, 2048)
    )
    print(render_report(rows))


if __name__ == "__main__":  # pragma: no cover
    main()
