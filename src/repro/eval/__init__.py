"""Tiered candidate evaluation: analytical -> cached -> full compile.

The paper's DSE results (Figs. 16-17) hinge on scoring many (hardware,
option) candidates cheaply; this package makes "evaluate a candidate" a
first-class, fidelity-tagged operation instead of a synonym for "run
the whole compiler":

* :class:`AnalyticalEvaluator` — rung 0: closed-form lower bounds from
  :mod:`repro.cost.analytical`, feasibility from the shared
  :class:`~repro.core.feasibility.FeasibilityModel`, **zero** allocator
  solves;
* :class:`GreedyEvaluator` — the middle rung: the full pipeline with
  the greedy allocator (``use_milp=False``) — a real plan's metrics,
  zero MILP solves, heuristic rather than a bound;
* :class:`CachedEvaluator` — a persistent-store ``contains`` probe
  followed by a warm compile; cold candidates are declined, not solved;
* :class:`CompileEvaluator` — the full pass pipeline (bit-identical to
  direct compilation, ratcheted by the parity suite).

All three return the same typed :class:`Evaluation` (metrics, fidelity
tag, lower-bound flag, cost of evaluation), which is what lets the DSE
layer run multi-fidelity schedules — a cheap analytical sweep of the
whole space, then full compiles for the survivors — under the existing
ask/tell strategy protocol (``repro dse --fidelity auto``).

Quickstart::

    from repro.eval import AnalyticalEvaluator, CompileEvaluator
    from repro.service import CompileJob

    job = CompileJob("resnet18", hardware="dynaplasia")
    bound = AnalyticalEvaluator().evaluate(job)     # microseconds, 0 solves
    exact = CompileEvaluator().evaluate(job)        # the full pipeline
    assert bound.cycles <= exact.cycles             # a true lower bound
"""

from .analytical import AnalyticalEvaluator
from .base import (
    FIDELITIES,
    FIDELITY_RANK,
    Evaluation,
    Evaluator,
    fidelity_rank,
)
from .compiled import CachedEvaluator, CompileEvaluator, evaluation_from_outcome
from .greedy import GreedyEvaluator

__all__ = [
    "AnalyticalEvaluator",
    "CachedEvaluator",
    "CompileEvaluator",
    "Evaluation",
    "Evaluator",
    "FIDELITIES",
    "FIDELITY_RANK",
    "GreedyEvaluator",
    "evaluation_from_outcome",
    "fidelity_rank",
]
