"""Tests for the dual-mode hardware abstraction, presets and chip state."""

import pytest

from repro.hardware import (
    ArrayMode,
    CIMChip,
    ChipStateError,
    DualModeHardwareAbstraction,
    PRESETS,
    dynaplasia,
    get_preset,
    prime,
    small_test_chip,
)


def minimal_hw(**overrides):
    params = dict(
        name="unit",
        num_arrays=4,
        array_rows=16,
        array_cols=16,
        buffer_bytes=256,
        internal_bw_bits=32,
        extern_bw_bits=64,
    )
    params.update(overrides)
    return DualModeHardwareAbstraction(**params)


class TestDEHAValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"num_arrays": 0},
            {"array_rows": 0},
            {"array_cols": -1},
            {"buffer_bytes": -1},
            {"internal_bw_bits": 0},
            {"extern_bw_bits": 0},
            {"compute_latency_cycles": 0},
            {"weight_bits": 0},
            {"switch_latency_m2c": -1},
            {"weight_update_overlap": 1.0},
            {"weight_update_overlap": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, overrides):
        with pytest.raises(ValueError):
            minimal_hw(**overrides)

    def test_port_widths_default_to_row_width(self):
        hw = minimal_hw()
        assert hw.array_read_bits == hw.array_cols
        assert hw.array_write_bits == hw.array_cols


class TestDerivedQuantities:
    def test_array_capacity(self):
        hw = minimal_hw()
        assert hw.array_capacity_elements == 256
        assert hw.array_capacity_bytes == 256

    def test_op_cim(self):
        hw = minimal_hw(compute_latency_cycles=4)
        assert hw.op_cim == 16 * 16 / 4

    def test_d_cim(self):
        hw = minimal_hw(array_read_bits=64, activation_bits=8)
        assert hw.d_cim == 8

    def test_d_main_combines_bandwidths(self):
        hw = minimal_hw(internal_bw_bits=32, extern_bw_bits=64)
        assert hw.d_main == 12
        assert hw.d_extern == 8

    def test_array_write_latency_scaling(self):
        base = minimal_hw(array_write_bits=128, weight_update_overlap=0.0)
        slowed = minimal_hw(array_write_bits=128, write_energy_factor=4.0, weight_update_overlap=0.0)
        assert slowed.array_write_latency_cycles == 4 * base.array_write_latency_cycles

    def test_weight_update_overlap_reduces_write_latency(self):
        exposed = minimal_hw(weight_update_overlap=0.75)
        full = minimal_hw(weight_update_overlap=0.0)
        assert exposed.array_write_latency_cycles == pytest.approx(
            0.25 * full.array_write_latency_cycles
        )

    def test_cycle_conversion(self):
        hw = minimal_hw(frequency_mhz=100.0)
        assert hw.cycle_time_ns == 10.0
        assert hw.cycles_to_ms(100_000) == pytest.approx(1.0)

    def test_buffer_elements(self):
        hw = minimal_hw(buffer_bytes=1024, activation_bits=8)
        assert hw.buffer_elements == 1024

    def test_with_overrides_is_copy(self):
        hw = minimal_hw()
        bigger = hw.with_overrides(num_arrays=16)
        assert bigger.num_arrays == 16
        assert hw.num_arrays == 4

    def test_dict_roundtrip(self):
        hw = dynaplasia()
        restored = DualModeHardwareAbstraction.from_dict(hw.to_dict())
        assert restored == hw

    def test_summary_mentions_key_figures(self):
        text = dynaplasia().summary()
        assert "96" in text and "320x320" in text


class TestPresets:
    def test_dynaplasia_table2_values(self):
        hw = dynaplasia()
        assert hw.num_arrays == 96
        assert (hw.array_rows, hw.array_cols) == (320, 320)
        assert hw.buffer_bytes == 10 * 1024 * 8
        assert hw.internal_bw_bits == 32
        assert hw.switch_latency_m2c == 1
        assert hw.switch_latency_c2m == 1

    def test_prime_has_more_capacity_and_costlier_writes(self):
        d, p = dynaplasia(), prime()
        assert p.num_arrays * p.array_capacity_elements > d.num_arrays * d.array_capacity_elements
        assert p.array_write_latency_cycles > d.array_write_latency_cycles

    def test_small_chip_is_small(self):
        hw = small_test_chip()
        assert hw.num_arrays <= 16
        assert hw.array_rows <= 128

    def test_get_preset_by_name(self):
        assert get_preset("dynaplasia").name == "dynaplasia"
        assert set(PRESETS) >= {"dynaplasia", "prime", "small-test-chip"}

    def test_get_preset_unknown_raises(self):
        with pytest.raises(KeyError):
            get_preset("tpu")

    def test_preset_overrides(self):
        hw = get_preset("dynaplasia", num_arrays=128)
        assert hw.num_arrays == 128


class TestChipState:
    def test_initial_state_idle(self, small_chip):
        chip = CIMChip(small_chip)
        assert chip.num_idle == small_chip.num_arrays
        assert chip.num_compute == 0
        assert chip.num_memory == 0

    def test_assign_and_release(self, small_chip):
        chip = CIMChip(small_chip)
        chip.assign([0, 1], owner="fc1", mode=ArrayMode.COMPUTE)
        assert chip.num_compute == 2
        assert chip.occupancy() == {"fc1": 2}
        assert [a.index for a in chip.arrays_of("fc1")] == [0, 1]
        released = chip.release("fc1")
        assert released == [0, 1]
        assert chip.occupancy() == {}

    def test_double_assignment_rejected(self, small_chip):
        chip = CIMChip(small_chip)
        chip.assign([0], owner="fc1", mode=ArrayMode.COMPUTE)
        with pytest.raises(ChipStateError):
            chip.assign([0], owner="fc2", mode=ArrayMode.MEMORY)

    def test_out_of_range_index_rejected(self, small_chip):
        chip = CIMChip(small_chip)
        with pytest.raises(ChipStateError):
            chip.switch_mode([small_chip.num_arrays + 5], ArrayMode.COMPUTE)

    def test_switch_counts_and_cycles(self, small_chip):
        chip = CIMChip(small_chip)
        chip.switch_mode([0, 1, 2], ArrayMode.MEMORY)  # idle -> memory: free
        cycles = chip.switch_mode([0, 1], ArrayMode.COMPUTE)
        assert chip.switch_count_m2c == 2
        assert cycles == 2 * small_chip.switch_latency_m2c
        cycles = chip.switch_mode([0], ArrayMode.MEMORY)
        assert chip.switch_count_c2m == 1
        assert chip.switch_cycles == 2 * small_chip.switch_latency_m2c + small_chip.switch_latency_c2m

    def test_switch_to_same_mode_is_free(self, small_chip):
        chip = CIMChip(small_chip)
        chip.switch_mode([0], ArrayMode.COMPUTE)
        assert chip.switch_mode([0], ArrayMode.COMPUTE) == 0.0

    def test_allocate_free_prefers_mode_matches(self, small_chip):
        chip = CIMChip(small_chip)
        chip.switch_mode([4, 5], ArrayMode.MEMORY)
        indices, cycles = chip.allocate_free(2, owner="buf", mode=ArrayMode.MEMORY)
        assert set(indices) == {4, 5}
        assert cycles == 0.0

    def test_allocate_free_insufficient_raises(self, small_chip):
        chip = CIMChip(small_chip)
        with pytest.raises(ChipStateError):
            chip.allocate_free(small_chip.num_arrays + 1, owner="x", mode=ArrayMode.COMPUTE)

    def test_memory_capacity_tracks_memory_arrays(self, small_chip):
        chip = CIMChip(small_chip)
        chip.switch_mode([0, 1, 2], ArrayMode.MEMORY)
        assert chip.memory_capacity_elements() == 3 * small_chip.array_capacity_elements

    def test_reset_restores_initial_state(self, small_chip):
        chip = CIMChip(small_chip)
        chip.assign([0, 1], owner="fc1", mode=ArrayMode.COMPUTE)
        chip.switch_mode([2], ArrayMode.MEMORY)
        chip.reset()
        assert chip.num_idle == small_chip.num_arrays
        assert chip.switch_count_m2c == 0
        assert chip.switch_cycles == 0.0
