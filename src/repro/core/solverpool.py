"""Shared worker pool for window-allocation solves (the parallel cold path).

The DP segmentation used to request one window allocation at a time, so
a cold compile ran its ~hundreds of HiGHS solves strictly sequentially —
even though HiGHS releases the GIL and the per-wavefront windows are
independent.  :class:`SolverPool` closes that gap: the segmenter submits
every candidate window of a DP wavefront as a batch of
:class:`WindowSolve` requests and consumes the tickets in order, so one
cold compile saturates every worker instead of one core.

The pool preserves the sequential tier discipline exactly:

* **probe before dispatch** — each submission probes the per-run
  :class:`~repro.core.memo.SolveMemo` and then the shared
  :class:`~repro.core.cache.AllocationCache` (whose lookup already
  cascades memory → disk → remote) in the submitting thread, the same
  order :func:`~repro.core.allocation.allocate_segment` uses, and a hit
  resolves the ticket immediately without touching a worker;
* **single-flight dedup** — misses join a
  :class:`~repro.serve.coalesce.SingleFlight` table keyed by the solve's
  structural :class:`~repro.core.cache.AllocationCacheKey`; concurrent
  identical solves (different compiles hitting the pool of one
  :class:`~repro.service.CompileService`, or speculative lookahead)
  run once and share the positional :class:`~repro.core.cache.CacheEntry`;
* **write-through** — a fresh solve is written through the requester's
  memo and cache from the worker thread (both are thread-safe), so the
  very next probe anywhere hits.

Strict-mode parity (the default DP dispatch policy) rests on a small
invariant: within one DP wavefront every candidate window ends at the
same unit but starts at a different one, so the windows have different
lengths and therefore *necessarily distinct* cache keys — single-flight
dedup can never collapse two windows the sequential DP would have solved
separately, and consuming tickets in the sequential probe order
reproduces its solve counts, tier counters and results bit-identically.

A solve that raises inside a worker settles its flight with the error;
the segmenter converts it into an infeasible window (losing only that
DP edge) and the pool keeps serving — one poisoned window never wedges
a compile.  ``close()`` is idempotent and the pool is a context manager.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from ..cost.arithmetic import OperatorProfile
from ..hardware.deha import DualModeHardwareAbstraction
from ..obs import NULL_OBS
from .allocation import (
    AllocationResult,
    refine_with_spare_arrays,
    segment_fits,
)
from .cache import AllocationCacheKey, CacheEntry

__all__ = ["SolverPool", "WindowSolve", "resolve_workers"]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count option (None → one per available core).

    Raises:
        ValueError: If ``workers`` is not ``None`` or an ``int >= 1``.
    """
    if workers is None:
        try:
            import os

            return max(1, len(os.sched_getaffinity(0)))
        except (AttributeError, OSError):
            import os

            return max(1, os.cpu_count() or 1)
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"solve workers must be an int >= 1 or None, got {workers!r}")
    if workers < 1:
        raise ValueError(f"solve workers must be >= 1, got {workers}")
    return workers


@dataclass
class WindowSolve:
    """One window-allocation solve request, as the segmenter frames it.

    Carries exactly the arguments of
    :func:`~repro.core.allocation.allocate_segment` plus the observability
    context a worker thread cannot infer (the tracer and the requesting
    pass's span id).  ``attrs`` label the per-solve span (window bounds).
    """

    profiles: Mapping[str, OperatorProfile]
    hardware: DualModeHardwareAbstraction
    allocator: object
    pipelined: bool = True
    refine: bool = True
    reserve_arrays: int = 0
    cache: Optional[object] = None
    memo: Optional[object] = None
    tracer: Optional[object] = None
    parent_span: Optional[int] = None
    attrs: Dict[str, object] = field(default_factory=dict)

    def cache_key(self) -> AllocationCacheKey:
        """The structural key of this solve (also the single-flight key)."""
        return AllocationCacheKey.build(
            self.profiles,
            self.hardware,
            engine=getattr(self.allocator, "name", type(self.allocator).__name__),
            pipelined=self.pipelined,
            refine=self.refine,
            allow_memory_mode=getattr(self.allocator, "allow_memory_mode", True),
            reserve_arrays=self.reserve_arrays,
        )


class _ResolvedTicket:
    """A submission served without a worker (tier hit or unfit window)."""

    __slots__ = ("_result",)

    def __init__(self, result: AllocationResult) -> None:
        self._result = result

    def result(self, timeout: Optional[float] = None) -> AllocationResult:
        return self._result


class _LeaderTicket:
    """The submission that owns the flight; wraps the executor future."""

    __slots__ = ("_future",)

    def __init__(self, future) -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None) -> AllocationResult:
        return self._future.result(timeout)


class _FollowerTicket:
    """A submission coalesced onto another's in-flight identical solve."""

    __slots__ = ("_pool", "_flight", "_solve", "_key")

    def __init__(self, pool: "SolverPool", flight, solve: WindowSolve, key) -> None:
        self._pool = pool
        self._flight = flight
        self._solve = solve
        self._key = key

    def result(self, timeout: Optional[float] = None) -> AllocationResult:
        entry, leader_memo, leader_cache = self._pool._flights.wait(
            self._flight, timeout=timeout
        )
        result = entry.to_result(list(self._solve.profiles))
        # The leader wrote through its own tiers; replicate only into
        # tiers the leader does not share with this requester.
        solve = self._solve
        if solve.cache is not None and solve.cache is not leader_cache:
            solve.cache.put(self._key, solve.profiles, result)
        if solve.memo is not None and solve.memo is not leader_memo:
            solve.memo.put(self._key, solve.profiles, result)
        return result


class SolverPool:
    """Thread-pool executor of window-allocation solves (see module doc).

    Args:
        workers: Worker threads; ``None`` means one per available core.
            ``workers=1`` is a valid degenerate pool — same machinery,
            sequential throughput — which the parity suite uses to pin
            the wavefront dispatch against the sequential DP.
        obs: Optional :class:`~repro.obs.Observability` bundle; the pool
            maintains ``solver_pool.*`` gauges and counters on its
            metrics registry.  Exact counters live on the pool itself.

    One pool is meant to be *shared* — per :class:`~repro.api.Session` /
    :class:`~repro.service.CompileService`, across every batch job — so
    total solver concurrency stays bounded by one worker budget instead
    of multiplying per compile (the oversubscription rule; the process
    backend therefore never propagates ``solve_jobs`` into workers).
    """

    def __init__(self, workers: Optional[int] = None, obs: Optional[object] = None) -> None:
        from concurrent.futures import ThreadPoolExecutor

        # Imported lazily: repro.serve's package init pulls in the
        # daemon → service chain, which itself imports this module.
        from ..serve.coalesce import SingleFlight

        self.workers = resolve_workers(workers)
        self._metrics = obs.metrics if obs is not None else NULL_OBS.metrics
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-solve"
        )
        self._flights = SingleFlight()
        self._lock = threading.Lock()
        self._closed = False
        # Exact counters (the metrics registry mirrors a subset).
        self.dispatched = 0
        self.completed = 0
        self.failed = 0
        self.dedup_hits = 0
        self.tier_hits = 0
        self.speculative_waste = 0
        self.solve_seconds = 0.0
        self._queued = 0
        self._inflight = 0
        # Busy-wall accounting: seconds during which >= 1 solve was in
        # flight.  Compared against ``solve_seconds`` (the sum of per-
        # solve durations) it shows the achieved solver concurrency.
        self._busy_seconds = 0.0
        self._busy_since: Optional[float] = None

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, solve: WindowSolve):
        """Submit one window solve; returns a ticket with ``result()``.

        Mirrors :func:`~repro.core.allocation.allocate_segment` up to the
        point of solving — fit check, memo probe, cache probe (with memo
        promotion) — in the *submitting* thread, so tier counters advance
        in the caller's order exactly as they would sequentially.  Only a
        full miss reaches a worker; concurrent identical misses coalesce
        onto one flight.

        Raises:
            RuntimeError: The pool has been closed.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("SolverPool is closed")
        names = list(solve.profiles)
        if not segment_fits(solve.profiles, solve.hardware):
            from .allocation import infeasible_result

            return _ResolvedTicket(infeasible_result())
        key = solve.cache_key()
        if solve.memo is not None:
            hit = solve.memo.lookup(key, names)
            if hit is not None:
                self._note_tier_hit()
                return _ResolvedTicket(hit)
        if solve.cache is not None:
            hit = solve.cache.lookup(key, names)
            if hit is not None:
                if solve.memo is not None:
                    solve.memo.put(key, solve.profiles, hit)
                self._note_tier_hit()
                return _ResolvedTicket(hit)
        flight, leader = self._flights.begin(key)
        if not leader:
            with self._lock:
                self.dedup_hits += 1
            self._metrics.inc("solver_pool.dedup_hits")
            return _FollowerTicket(self, flight, solve, key)
        with self._lock:
            self.dispatched += 1
            self._queued += 1
            queued = self._queued
        self._metrics.inc("solver_pool.dispatched")
        self._metrics.set_gauge("solver_pool.queue_depth", queued)
        future = self._executor.submit(self._run, solve, key, flight)
        return _LeaderTicket(future)

    def record_waste(self, count: int) -> None:
        """Account ``count`` speculative solves that were never consumed."""
        if count <= 0:
            return
        with self._lock:
            self.speculative_waste += count
        self._metrics.inc("solver_pool.speculative_waste", count)

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _run(self, solve: WindowSolve, key: AllocationCacheKey, flight) -> AllocationResult:
        started = time.perf_counter()
        with self._lock:
            self._queued -= 1
            self._inflight += 1
            if self._inflight == 1:
                self._busy_since = started
            queued, inflight = self._queued, self._inflight
        self._metrics.set_gauge("solver_pool.queue_depth", queued)
        self._metrics.set_gauge("solver_pool.inflight", inflight)
        tracer = solve.tracer if solve.tracer is not None else NULL_OBS.tracer
        try:
            with tracer.span(
                "allocator.solve", parent=solve.parent_span, **solve.attrs
            ) as span:
                result = solve.allocator.allocate(
                    solve.profiles, solve.hardware, pipelined=solve.pipelined
                )
                if solve.refine and result.feasible:
                    result = refine_with_spare_arrays(
                        result,
                        solve.profiles,
                        solve.hardware,
                        pipelined=solve.pipelined,
                        allow_memory_mode=getattr(
                            solve.allocator, "allow_memory_mode", True
                        ),
                        reserve_arrays=solve.reserve_arrays,
                    )
                span.set(solver=result.solver, cached=False)
            if solve.cache is not None:
                solve.cache.put(key, solve.profiles, result)
            if solve.memo is not None:
                solve.memo.put(key, solve.profiles, result)
        except BaseException as exc:
            with self._lock:
                self.failed += 1
            self._metrics.inc("solver_pool.failures")
            self._flights.finish(flight, error=exc)
            self._finish_accounting(started)
            raise
        entry = CacheEntry.from_result(solve.profiles, result)
        self._flights.finish(flight, value=(entry, solve.memo, solve.cache))
        with self._lock:
            self.completed += 1
        self._finish_accounting(started)
        self._metrics.observe("solver_pool.solve_seconds", time.perf_counter() - started)
        return result

    def _finish_accounting(self, started: float) -> None:
        now = time.perf_counter()
        with self._lock:
            self.solve_seconds += now - started
            self._inflight -= 1
            if self._inflight == 0 and self._busy_since is not None:
                self._busy_seconds += now - self._busy_since
                self._busy_since = None
            inflight = self._inflight
        self._metrics.set_gauge("solver_pool.inflight", inflight)

    def _note_tier_hit(self) -> None:
        with self._lock:
            self.tier_hits += 1
        self._metrics.inc("solver_pool.tier_hits")

    # ------------------------------------------------------------------ #
    # reporting / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def wall_seconds(self) -> float:
        """Seconds during which at least one solve was in flight."""
        with self._lock:
            busy = self._busy_seconds
            if self._busy_since is not None:
                busy += time.perf_counter() - self._busy_since
        return busy

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def stats_dict(self) -> Dict[str, object]:
        """Plain counters for reports (``--json-out``, ``/metrics``)."""
        with self._lock:
            busy = self._busy_seconds
            if self._busy_since is not None:
                busy += time.perf_counter() - self._busy_since
            return {
                "workers": self.workers,
                "dispatched": self.dispatched,
                "completed": self.completed,
                "failed": self.failed,
                "dedup_hits": self.dedup_hits,
                "tier_hits": self.tier_hits,
                "speculative_waste": self.speculative_waste,
                "solve_seconds": self.solve_seconds,
                "wall_seconds": busy,
            }

    def close(self, wait: bool = True) -> None:
        """Shut the pool down (idempotent; in-flight solves finish)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._executor.shutdown(wait=wait)

    def __enter__(self) -> "SolverPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
