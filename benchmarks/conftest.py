"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  By
default the grids are reduced (fewer batch sizes / sequence lengths) so a
full ``pytest benchmarks/ --benchmark-only`` run finishes in minutes; set
``REPRO_BENCH_FULL=1`` to run the complete grids of the paper.

Each benchmark stores its result rows in ``benchmark.extra_info`` so the
JSON output of pytest-benchmark doubles as the experiment record, and also
prints the rendered table so the figures can be read straight off the
terminal.
"""

from __future__ import annotations

import os

import pytest

from repro.hardware import dynaplasia


def full_grids() -> bool:
    """Whether the full paper-sized grids were requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "False")


@pytest.fixture(scope="session")
def chip():
    """The DynaPlasia-like target chip used by all benchmarks."""
    return dynaplasia()


@pytest.fixture(scope="session")
def grids():
    """Grid sizes: reduced by default, paper-sized with REPRO_BENCH_FULL=1."""
    if full_grids():
        return {
            "batch_sizes_fig14": (1, 2, 4, 8),
            "batch_sizes_fig16": (4, 8, 16),
            "sequence_lengths": (32, 64, 128, 256, 512, 1024, 2048),
            "fig17_lengths": (32, 64, 128, 256, 512, 1024, 2048),
            "compile_repeats": 5,
        }
    return {
        "batch_sizes_fig14": (1, 8),
        "batch_sizes_fig16": (4,),
        "sequence_lengths": (32, 256, 2048),
        "fig17_lengths": (32, 256),
        "compile_repeats": 1,
    }


def record(benchmark, rows, report: str = "") -> None:
    """Attach experiment rows to the benchmark record and print the report."""
    benchmark.extra_info["rows"] = rows
    if report:
        print()
        print(report)


def write_bench_record(name: str, path: str, **fields) -> None:
    """Write a machine-readable ``BENCH_*.json`` result record.

    Shared by the ``--quick`` smoke modes so every benchmark emits the
    same envelope (benchmark name, timestamp, Python version) and a
    schema change lands in one place.  ``path`` may be empty to disable.
    """
    import json
    import platform
    import time

    if not path:
        return
    payload = {
        "benchmark": name,
        "timestamp": time.time(),
        "python": platform.python_version(),
        **fields,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    print(f"  record   : {path}")
