"""Fluent builder for constructing computation graphs.

The model zoo (:mod:`repro.models`) uses this builder to assemble networks
layer by layer with automatic tensor naming and shape inference, mirroring
what an ONNX export of the corresponding PyTorch model would contain.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from .graph import Graph
from .operators import (
    Activation,
    Concat,
    Conv2d,
    Elementwise,
    Embedding,
    GlobalAvgPool,
    Linear,
    MatMul,
    Normalization,
    Pool2d,
    Reshape,
    Softmax,
)
from .tensor import DataType, TensorSpec


def _conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


class GraphBuilder:
    """Incrementally builds a :class:`~repro.ir.graph.Graph`.

    Every helper returns the :class:`TensorSpec` of the produced tensor so
    calls can be chained naturally::

        builder = GraphBuilder("tiny")
        x = builder.input("x", (1, 3, 32, 32))
        x = builder.conv2d(x, out_channels=16, kernel=3, stride=1, padding=1)
        x = builder.relu(x)
        builder.output(x)
        graph = builder.finish()
    """

    def __init__(self, name: str, dtype: DataType = DataType.INT8) -> None:
        self.graph = Graph(name)
        self.dtype = dtype
        self._counter = 0

    # ------------------------------------------------------------------ #
    # naming helpers
    # ------------------------------------------------------------------ #
    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}_{self._counter}"

    def tensor(self, name: str, shape: Sequence[int]) -> TensorSpec:
        """Create a tensor spec with the builder's default dtype."""
        return TensorSpec(name=name, shape=tuple(shape), dtype=self.dtype)

    # ------------------------------------------------------------------ #
    # graph boundary
    # ------------------------------------------------------------------ #
    def input(self, name: str, shape: Sequence[int]) -> TensorSpec:
        """Declare a graph input."""
        spec = self.tensor(name, shape)
        self.graph.add_input(spec)
        return spec

    def output(self, spec: TensorSpec) -> TensorSpec:
        """Declare a graph output."""
        self.graph.add_output(spec)
        return spec

    def finish(self, validate: bool = True) -> Graph:
        """Return the built graph, validating it by default."""
        if validate:
            self.graph.validate()
        return self.graph

    # ------------------------------------------------------------------ #
    # CIM-mappable layers
    # ------------------------------------------------------------------ #
    def conv2d(
        self,
        input: TensorSpec,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        name: Optional[str] = None,
    ) -> TensorSpec:
        """Add a 2-D convolution (NCHW) and return its output tensor."""
        name = name or self._fresh("conv")
        n, in_c, h, w = input.shape
        oh = _conv_out_size(h, kernel, stride, padding)
        ow = _conv_out_size(w, kernel, stride, padding)
        out = self.tensor(f"{name}_out", (n, out_channels, oh, ow))
        weight = self.tensor(f"{name}_w", (out_channels, in_c // groups, kernel, kernel))
        self.graph.add_operator(
            Conv2d(
                name,
                input=input,
                output=out,
                weight=weight,
                stride=(stride, stride),
                padding=(padding, padding),
                groups=groups,
            )
        )
        return out

    def linear(
        self,
        input: TensorSpec,
        out_features: int,
        name: Optional[str] = None,
        bias: bool = True,
    ) -> TensorSpec:
        """Add a fully connected layer on the last dimension."""
        name = name or self._fresh("linear")
        in_features = input.shape[-1]
        out_shape = tuple(input.shape[:-1]) + (out_features,)
        out = self.tensor(f"{name}_out", out_shape)
        weight = self.tensor(f"{name}_w", (in_features, out_features))
        self.graph.add_operator(Linear(name, input=input, output=out, weight=weight, bias=bias))
        return out

    def matmul(
        self,
        lhs: TensorSpec,
        rhs: TensorSpec,
        name: Optional[str] = None,
    ) -> TensorSpec:
        """Add a dynamic-by-dynamic matrix product (attention score/context)."""
        name = name or self._fresh("matmul")
        out_shape = tuple(lhs.shape[:-1]) + (rhs.shape[-1],)
        out = self.tensor(f"{name}_out", out_shape)
        self.graph.add_operator(MatMul(name, lhs=lhs, rhs=rhs, output=out))
        return out

    # ------------------------------------------------------------------ #
    # auxiliary layers
    # ------------------------------------------------------------------ #
    def activation(
        self, input: TensorSpec, function: str = "relu", name: Optional[str] = None
    ) -> TensorSpec:
        """Add a unary activation function."""
        name = name or self._fresh(function)
        out = self.tensor(f"{name}_out", input.shape)
        self.graph.add_operator(Activation(name, input=input, output=out, function=function))
        return out

    def relu(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a ReLU."""
        return self.activation(input, "relu", name)

    def gelu(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a GELU."""
        return self.activation(input, "gelu", name)

    def silu(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a SiLU / swish."""
        return self.activation(input, "silu", name)

    def softmax(self, input: TensorSpec, axis: int = -1, name: Optional[str] = None) -> TensorSpec:
        """Add a softmax along ``axis``."""
        name = name or self._fresh("softmax")
        out = self.tensor(f"{name}_out", input.shape)
        self.graph.add_operator(Softmax(name, input=input, output=out, axis=axis))
        return out

    def layernorm(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a layer normalisation."""
        name = name or self._fresh("layernorm")
        out = self.tensor(f"{name}_out", input.shape)
        self.graph.add_operator(Normalization(name, input=input, output=out, kind="layernorm"))
        return out

    def rmsnorm(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add an RMS normalisation (LLaMA-style)."""
        name = name or self._fresh("rmsnorm")
        out = self.tensor(f"{name}_out", input.shape)
        self.graph.add_operator(Normalization(name, input=input, output=out, kind="rmsnorm"))
        return out

    def batchnorm(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a batch normalisation."""
        name = name or self._fresh("batchnorm")
        out = self.tensor(f"{name}_out", input.shape)
        self.graph.add_operator(Normalization(name, input=input, output=out, kind="batchnorm"))
        return out

    def add(self, lhs: TensorSpec, rhs: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add an elementwise addition (residual connection)."""
        name = name or self._fresh("add")
        out = self.tensor(f"{name}_out", lhs.shape)
        self.graph.add_operator(Elementwise(name, inputs=[lhs, rhs], output=out, function="add"))
        return out

    def mul(self, lhs: TensorSpec, rhs: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add an elementwise multiplication (gating)."""
        name = name or self._fresh("mul")
        out = self.tensor(f"{name}_out", lhs.shape)
        self.graph.add_operator(Elementwise(name, inputs=[lhs, rhs], output=out, function="mul"))
        return out

    def pool2d(
        self,
        input: TensorSpec,
        kernel: int = 2,
        stride: int = 2,
        mode: str = "max",
        padding: int = 0,
        name: Optional[str] = None,
    ) -> TensorSpec:
        """Add a spatial pooling layer."""
        name = name or self._fresh(f"{mode}pool")
        n, c, h, w = input.shape
        oh = _conv_out_size(h, kernel, stride, padding)
        ow = _conv_out_size(w, kernel, stride, padding)
        out = self.tensor(f"{name}_out", (n, c, oh, ow))
        self.graph.add_operator(
            Pool2d(name, input=input, output=out, kernel=(kernel, kernel), stride=(stride, stride), mode=mode)
        )
        return out

    def global_avg_pool(self, input: TensorSpec, name: Optional[str] = None) -> TensorSpec:
        """Add a global average pooling layer producing (N, C)."""
        name = name or self._fresh("gap")
        n, c, _, _ = input.shape
        out = self.tensor(f"{name}_out", (n, c))
        self.graph.add_operator(GlobalAvgPool(name, input=input, output=out))
        return out

    def embedding(
        self,
        input: TensorSpec,
        vocab_size: int,
        hidden: int,
        name: Optional[str] = None,
    ) -> TensorSpec:
        """Add a token-embedding lookup."""
        name = name or self._fresh("embedding")
        out_shape = tuple(input.shape) + (hidden,)
        out = self.tensor(f"{name}_out", out_shape)
        weight = self.tensor(f"{name}_w", (vocab_size, hidden))
        self.graph.add_operator(Embedding(name, input=input, output=out, weight=weight))
        return out

    def reshape(
        self, input: TensorSpec, shape: Sequence[int], name: Optional[str] = None
    ) -> TensorSpec:
        """Add a zero-cost reshape."""
        name = name or self._fresh("reshape")
        out = self.tensor(f"{name}_out", shape)
        self.graph.add_operator(Reshape(name, input=input, output=out))
        return out

    def concat(
        self, inputs: Sequence[TensorSpec], axis: int, name: Optional[str] = None
    ) -> TensorSpec:
        """Add a concatenation along ``axis``."""
        name = name or self._fresh("concat")
        first = inputs[0]
        out_shape = list(first.shape)
        out_shape[axis] = sum(t.shape[axis] for t in inputs)
        out = self.tensor(f"{name}_out", out_shape)
        self.graph.add_operator(Concat(name, inputs=inputs, output=out, axis=axis))
        return out
