"""Per-segment allocation visualisation — Fig. 15 of the paper.

The paper illustrates the compiled compute/memory split for VGG-16 and one
OPT-6.7B layer: early VGG convolutions share segments and receive mostly
compute arrays, the final convolutions receive more memory arrays for
input bandwidth, and within a transformer layer the QKV/FFN projections
receive a substantial memory share while the attention products are mostly
compute.  This experiment prints the same information as a table: one row
per segment with its operators and array split.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import build_model
from ..core.cache import AllocationCache
from ..models.workload import Phase, Workload
from .common import format_table


def allocation_report(
    model: str,
    hardware: Optional[DualModeHardwareAbstraction] = None,
    workload: Optional[Workload] = None,
    cache: Optional["AllocationCache"] = None,
) -> List[Dict]:
    """Compile ``model`` and report the per-segment array allocation.

    Args:
        cache: Optional shared allocation cache for the compile.

    Returns one row per segment: the operators it contains, the number of
    compute and memory arrays and the memory share (the pie charts of
    Fig. 15).
    """
    hardware = hardware or dynaplasia()
    if workload is None:
        phase = Phase.ENCODE if any(k in model for k in ("bert", "opt", "llama", "gpt")) else Phase.PREFILL
        workload = Workload(batch_size=1, seq_len=64, phase=phase)
    graph = build_model(model, workload)
    program = CMSwitchCompiler(
        hardware, CompilerOptions(generate_code=False), cache=cache
    ).compile(graph)
    rows: List[Dict] = []
    for segment in program.segments:
        total = segment.compute_arrays + segment.memory_arrays
        rows.append(
            {
                "segment": segment.index,
                "operators": ", ".join(_short_name(n) for n in segment.operator_names),
                "num_operators": len(segment.operator_names),
                "compute_arrays": segment.compute_arrays,
                "memory_arrays": segment.memory_arrays,
                "memory_share": segment.memory_arrays / total if total else 0.0,
                "intra_cycles": segment.intra_cycles,
                "inter_cycles": segment.inter_cycles,
            }
        )
    return rows


def _short_name(name: str) -> str:
    """Shorten partitioned shard names for display."""
    return name.replace("::part", "#")


def render_report(model: str, rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 15 allocation table."""
    columns = [
        "segment",
        "num_operators",
        "compute_arrays",
        "memory_arrays",
        "memory_share",
        "operators",
    ]
    return f"allocation for {model}\n" + format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print the Fig. 15 allocation tables for VGG-16 and OPT-6.7B."""
    for model in ("vgg16", "opt-6.7b"):
        rows = allocation_report(model)
        print(render_report(model, rows))
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
