"""Per-run memoisation of segment-allocation solves.

:class:`SolveMemo` is the light sibling of
:class:`~repro.core.cache.AllocationCache`: an unbounded, thread-safe,
in-memory map from :class:`~repro.core.cache.AllocationCacheKey` to the
solve outcome, meant to live for the duration of *one* run — a DSE
sweep, a compile batch — and then be dropped.

Why a second memo when the shared cache exists:

* the shared cache is optional (a plain ``DSERunner`` without a
  ``cache_dir`` has none), bounded (LRU eviction can drop a window a
  neighbouring design point is about to request) and possibly
  disk-backed (every probe may cost I/O).  The memo is always cheap,
  never evicts and never touches disk, so neighbouring design points
  that share allocation windows — the common case along one axis of a
  sweep, where most windows' boundary context is unchanged — reuse each
  other's solves even on a cache-less run;
* its counters are *per run*:
  :attr:`SolveMemo.hits` / :attr:`SolveMemo.misses` answer "how much
  solve reuse did this sweep get", which the shared cache's lifetime
  counters cannot.

The memo deliberately speaks the same duck-typed key API as
``AllocationCache`` (``make_key`` / ``lookup`` / ``put``), keyed by the
same structural :class:`AllocationCacheKey`, so
:func:`~repro.core.allocation.allocate_segment` can probe it without a
new protocol and a hit is bit-identical to a cold solve by the same
argument the cache's exactness rests on.  Cross-process sharing is out
of scope — process-backend workers never see the memo (they share
through the disk store only).
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Sequence

from ..hardware.deha import DualModeHardwareAbstraction
from ..obs.metrics import NULL_METRICS
from .allocation import AllocationResult
from .cache import AllocationCacheKey, CacheEntry
from ..cost.arithmetic import OperatorProfile

__all__ = ["SolveMemo"]


class SolveMemo:
    """Unbounded per-run memo of allocation solves (thread-safe).

    One instance is created per run (``DSERunner`` makes its own) and
    threaded through ``SegmentationOptions.solve_memo`` into every
    segmenter the run spawns; all of them — across design points, the
    dual-mode pass and the fixed-mode fallback pass — then share solves
    in process memory.

    Args:
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; hits,
            misses and stores are mirrored under ``memo.*`` while the
            plain counters stay the exact source of truth.

    Attributes:
        hits: Lookups served from the memo (cross-mode hits included).
        misses: Lookups that fell through (to the shared cache or a
            fresh solve).
        stores: Entries written.
    """

    def __init__(self, metrics: Optional[object] = None) -> None:
        self._entries: Dict[AllocationCacheKey, CacheEntry] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.metrics = NULL_METRICS if metrics is None else metrics

    def __len__(self) -> int:
        return len(self._entries)

    @staticmethod
    def make_key(
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        **options,
    ) -> AllocationCacheKey:
        """Build the structural key for one solve (same as the cache's)."""
        return AllocationCacheKey.build(profiles, hardware, **options)

    def lookup(
        self, key: AllocationCacheKey, names: Sequence[str]
    ) -> Optional[AllocationResult]:
        """Return the memoised result for ``key``, or None.

        Mirrors the cache's probe order: exact entry first, then — for a
        fixed-mode key — the dual-mode entry when it allocates no
        memory-mode arrays (the dual-mode optimum then lies inside the
        fixed-mode space, so reusing it is exact).
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None and not key.allow_memory_mode:
                dual = self._entries.get(key.dual_mode_variant())
                if dual is not None and dual.memory_free:
                    entry = dual
            if entry is None:
                self.misses += 1
                self.metrics.inc("memo.misses")
                return None
            self.hits += 1
        self.metrics.inc("memo.hits")
        return entry.to_result(names)

    def put(
        self,
        key: AllocationCacheKey,
        profiles: Mapping[str, OperatorProfile],
        result: AllocationResult,
    ) -> None:
        """Memoise the outcome of one solve under ``key``."""
        entry = CacheEntry.from_result(profiles, result)
        if entry is None:
            return  # partial allocation (foreign result); never memoise it
        with self._lock:
            self._entries[key] = entry
            self.stores += 1
        self.metrics.inc("memo.stores")

    def stats_dict(self) -> Dict[str, int]:
        """Plain counters for reports and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "entries": len(self._entries),
        }
