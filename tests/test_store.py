"""Tests for the persistent disk cache store and the process compile backend.

Covers the ISSUE-2 acceptance surface: disk warm starts with zero
allocator solves, corruption tolerance, version-mismatch rejection,
eviction under a tiny size budget, concurrent same-key writers from two
processes, and thread/process backend result parity.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import (
    SYSTEM_CLOCK,
    AllocationCache,
    CacheEntry,
    CMSwitchCompiler,
    CompilerOptions,
    DiskCacheStore,
    ManualClock,
)
from repro.core.cache import AllocationCacheKey
from repro.core.store import FORMAT_VERSION, key_digest
from repro.cost.arithmetic import profile_graph
from repro.service import CompileJob, CompileService

REPO_ROOT = Path(__file__).resolve().parent.parent


def _synthetic_key(**overrides) -> AllocationCacheKey:
    """A structurally plausible key without running the profiler."""
    fields = dict(
        hardware="feedfacefeedface",
        segment=(("linear", 1024, 32, 32, 1024, 1024, 32, 0, True, 1, 32, 32),),
        engine="milp",
        pipelined=True,
        refine=True,
        allow_memory_mode=True,
        reserve_arrays=0,
    )
    fields.update(overrides)
    return AllocationCacheKey(**fields)


def _entry(allocations=((2, 1), (3, 0)), latency=123.5, solver="milp") -> CacheEntry:
    return CacheEntry(
        allocations=tuple(tuple(pair) for pair in allocations),
        latency_cycles=latency,
        feasible=True,
        solver=solver,
    )


def _entry_file(store: DiskCacheStore, key: AllocationCacheKey) -> Path:
    digest = key_digest(key)
    return store.root / digest[:2] / f"{digest}.json"


class TestDiskCacheStore:
    def test_roundtrip(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        key, entry = _synthetic_key(), _entry()
        assert store.get(key) is None
        store.put(key, entry)
        assert store.get(key) == entry
        assert store.stats.hits == 1 and store.stats.misses == 1
        assert len(store) == 1

    def test_digest_is_stable_across_instances(self, tmp_path):
        key = _synthetic_key()
        assert key_digest(key) == key_digest(_synthetic_key())
        assert key_digest(key) != key_digest(_synthetic_key(engine="greedy"))

    def test_infeasible_entry_roundtrip(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        key = _synthetic_key()
        entry = CacheEntry(
            allocations=(), latency_cycles=float("inf"), feasible=False, solver="infeasible"
        )
        store.put(key, entry)
        got = store.get(key)
        assert got is not None and not got.feasible
        assert got.latency_cycles == float("inf")

    def test_corrupted_entry_is_miss_not_crash(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        key = _synthetic_key()
        store.put(key, _entry())
        _entry_file(store, key).write_text("{ this is not json", encoding="utf-8")
        assert store.get(key) is None
        assert store.stats.corrupt_entries == 1
        # The store recovers: a fresh put repairs the entry.
        store.put(key, _entry())
        assert store.get(key) == _entry()

    def test_type_mangled_entry_is_miss(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        key = _synthetic_key()
        store.put(key, _entry())
        path = _entry_file(store, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["entry"]["allocations"] = "not-a-list-of-pairs"
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert store.stats.corrupt_entries == 1

    def test_newer_version_rejected_and_left_in_place(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        key = _synthetic_key()
        store.put(key, _entry())
        path = _entry_file(store, key)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert store.stats.version_rejections == 1
        # A newer writer's file must survive an older reader.
        assert path.exists()

    def test_foreign_key_payload_is_miss(self, tmp_path):
        """A file whose stored key disagrees with its name is never served."""
        store = DiskCacheStore(tmp_path)
        key, other = _synthetic_key(), _synthetic_key(reserve_arrays=3)
        store.put(other, _entry())
        source = _entry_file(store, other)
        target = _entry_file(store, key)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())  # entry copied to the wrong name
        assert store.get(key) is None

    def test_eviction_under_tiny_budget(self, tmp_path):
        entry = _entry()
        probe = DiskCacheStore(tmp_path / "probe")
        probe.put(_synthetic_key(), entry)
        entry_bytes = probe.total_bytes()

        store = DiskCacheStore(tmp_path / "store", max_bytes=2 * entry_bytes)
        for reserve in range(6):
            store.put(_synthetic_key(reserve_arrays=reserve), entry)
        assert store.stats.evictions > 0
        assert store.total_bytes() <= store.max_bytes
        assert len(store) <= 2
        # The newest entry survives (eviction is oldest-first).
        assert store.get(_synthetic_key(reserve_arrays=5)) == entry

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            DiskCacheStore(tmp_path, max_bytes=0)

    def test_clear(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        store.put(_synthetic_key(), _entry())
        store.clear()
        assert len(store) == 0 and store.total_bytes() == 0
        assert store.get(_synthetic_key()) is None


class TestClockDrivenGC:
    """TTL maintenance runs off an injected clock — no real time, no sleeps."""

    EPOCH = 1_700_000_000.0  # arbitrary fixed "now"

    def _store_with_aged_entries(self, root, clock):
        """Three entries whose mtimes sit 0 h / 2 h / 50 h in the past."""
        store = DiskCacheStore(root, clock=clock)
        ages_hours = {0: 0.0, 1: 2.0, 2: 50.0}
        for reserve, age in ages_hours.items():
            key = _synthetic_key(reserve_arrays=reserve)
            store.put(key, _entry())
            stamp = clock.now() - age * 3600.0
            os.utime(_entry_file(store, key), (stamp, stamp))
        return store

    def test_prune_ttl_uses_injected_clock(self, tmp_path):
        clock = ManualClock(start=self.EPOCH)
        store = self._store_with_aged_entries(tmp_path, clock)
        outcome = store.prune(max_age_seconds=24 * 3600)
        assert outcome["removed_files"] == 1  # only the 50 h entry
        assert outcome["remaining_files"] == 2
        assert store.get(_synthetic_key(reserve_arrays=2)) is None
        assert store.get(_synthetic_key(reserve_arrays=1)) == _entry()

    def test_advancing_the_clock_expires_more(self, tmp_path):
        clock = ManualClock(start=self.EPOCH)
        store = self._store_with_aged_entries(tmp_path, clock)
        assert store.prune(max_age_seconds=3 * 3600)["removed_files"] == 1
        # One "day" passes — instantly — and the survivors age out too.
        clock.advance(24 * 3600)
        assert store.prune(max_age_seconds=3 * 3600)["removed_files"] == 2
        assert len(store) == 0

    def test_explicit_now_still_overrides_the_clock(self, tmp_path):
        clock = ManualClock(start=self.EPOCH)
        store = self._store_with_aged_entries(tmp_path, clock)
        future = self.EPOCH + 7 * 24 * 3600
        outcome = store.prune(max_age_seconds=60 * 3600, now=future)
        assert outcome["removed_files"] == 3

    def test_manual_clock_refuses_to_run_backwards(self):
        clock = ManualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        assert clock.now() == clock.perf() == 5.0

    def test_default_clock_is_real_time(self, tmp_path):
        store = DiskCacheStore(tmp_path)
        assert store.clock is SYSTEM_CLOCK
        import time as real_time

        before = real_time.time()
        reading = store.clock.now()
        assert before - 1.0 <= reading <= real_time.time() + 1.0


class TestTwoTierCache:
    def test_disk_warm_start_compiles_with_zero_solves(self, small_chip, tiny_cnn_graph, tmp_path):
        """Acceptance: a cold process pointed at a warmed dir does 0 solves."""
        options = CompilerOptions(generate_code=False)
        warm_writer = AllocationCache(store=DiskCacheStore(tmp_path))
        cold = CMSwitchCompiler(small_chip, options, cache=warm_writer).compile(tiny_cnn_graph)
        assert cold.stats["allocator_solves"] > 0

        # A fresh cache + store simulates a brand-new process.
        fresh = AllocationCache(store=DiskCacheStore(tmp_path))
        warm = CMSwitchCompiler(small_chip, options, cache=fresh).compile(tiny_cnn_graph)
        assert warm.stats["allocator_solves"] == 0
        assert fresh.stats.disk_hits > 0
        assert warm.end_to_end_cycles == cold.end_to_end_cycles
        assert [s.allocations for s in warm.segments] == [
            s.allocations for s in cold.segments
        ]

    def test_disk_hits_promote_into_memory(self, small_chip, tiny_mlp_graph, tmp_path):
        profiles = profile_graph(tiny_mlp_graph)
        options = dict(engine="milp", pipelined=True, refine=True,
                       allow_memory_mode=True, reserve_arrays=0)
        key = AllocationCache.make_key(profiles, small_chip, **options)
        DiskCacheStore(tmp_path).put(key, _entry(allocations=tuple((1, 0) for _ in profiles)))

        reader = AllocationCache(store=DiskCacheStore(tmp_path))
        assert reader.lookup(key, list(profiles)) is not None
        assert reader.stats.disk_hits == 1
        # Second lookup is served by the promoted in-memory entry.
        assert reader.lookup(key, list(profiles)) is not None
        assert reader.stats.disk_hits == 1 and reader.stats.hits == 2

    def test_cross_mode_hit_from_disk(self, small_chip, tiny_mlp_graph, tmp_path):
        """A memory-free dual-mode entry on disk serves a fixed-mode lookup."""
        profiles = profile_graph(tiny_mlp_graph)
        base = dict(engine="milp", pipelined=True, refine=True, reserve_arrays=0)
        dual_key = AllocationCache.make_key(profiles, small_chip, allow_memory_mode=True, **base)
        DiskCacheStore(tmp_path).put(dual_key, _entry(allocations=tuple((2, 0) for _ in profiles)))

        reader = AllocationCache(store=DiskCacheStore(tmp_path))
        fixed_key = AllocationCache.make_key(profiles, small_chip, allow_memory_mode=False, **base)
        hit = reader.lookup(fixed_key, list(profiles))
        assert hit is not None and hit.from_cache
        assert reader.stats.cross_mode_hits == 1 and reader.stats.disk_hits == 1

    def test_corrupt_store_never_breaks_a_compile(self, small_chip, tiny_cnn_graph, tmp_path):
        options = CompilerOptions(generate_code=False)
        writer = AllocationCache(store=DiskCacheStore(tmp_path))
        CMSwitchCompiler(small_chip, options, cache=writer).compile(tiny_cnn_graph)
        for path in Path(tmp_path).glob("*/*.json"):
            path.write_text("garbage", encoding="utf-8")
        fresh = AllocationCache(store=DiskCacheStore(tmp_path))
        program = CMSwitchCompiler(small_chip, options, cache=fresh).compile(tiny_cnn_graph)
        assert program.stats["allocator_solves"] > 0  # re-solved, not crashed
        assert fresh.store.stats.corrupt_entries > 0


def _hammer_store(root: str, reserve: int, rounds: int) -> None:
    """Worker: repeatedly write (and read back) one key in a shared store."""
    store = DiskCacheStore(root)
    key = _synthetic_key(reserve_arrays=reserve)
    entry = _entry()
    for _ in range(rounds):
        store.put(key, entry)
        got = store.get(key)
        assert got is None or got == entry


class TestConcurrentWriters:
    def test_two_processes_same_key(self, tmp_path):
        """Racing writers of the same key leave one complete, correct entry."""
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_hammer_store, args=(str(tmp_path), 0, 25))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
            assert worker.exitcode == 0
        store = DiskCacheStore(tmp_path)
        assert store.get(_synthetic_key(reserve_arrays=0)) == _entry()
        assert len(store) == 1


class TestProcessBackend:
    def _jobs(self, small_chip):
        return [
            CompileJob("tiny-cnn", hardware=small_chip),
            CompileJob("no-such-model", hardware=small_chip),
            CompileJob("tiny-mlp", hardware=small_chip),
        ]

    def test_bit_identical_to_thread_backend(self, small_chip, tmp_path):
        """Acceptance: process backend == thread backend, result for result."""
        jobs = self._jobs(small_chip)
        thread = CompileService(cache_dir=tmp_path / "t").compile_batch(jobs)
        process = CompileService(
            backend="process", cache_dir=tmp_path / "p", max_workers=2
        ).compile_batch(jobs)
        assert [r.ok for r in thread] == [r.ok for r in process] == [True, False, True]
        for t, p in zip(thread, process):
            assert p.job is t.job  # original job objects restored
            if not t.ok:
                assert p.error and p.error_traceback
                continue
            assert p.program.end_to_end_cycles == t.program.end_to_end_cycles
            assert [s.allocations for s in p.program.segments] == [
                s.allocations for s in t.program.segments
            ]

    def test_workers_share_solves_through_disk_store(self, small_chip, tmp_path):
        service = CompileService(backend="process", cache_dir=tmp_path, max_workers=2)
        cold = service.compile_batch([CompileJob("tiny-cnn", hardware=small_chip)])
        assert cold[0].ok and cold[0].stats["allocator_solves"] > 0
        warm = service.compile_batch(
            [CompileJob("tiny-cnn", hardware=small_chip) for _ in range(2)]
        )
        assert all(r.ok for r in warm)
        assert sum(r.stats["allocator_solves"] for r in warm) == 0

    def test_graph_jobs_travel_by_serialization(self, small_chip, tiny_mlp_graph):
        results = CompileService(backend="process", max_workers=1).compile_batch(
            [CompileJob(tiny_mlp_graph, hardware=small_chip)]
        )
        assert results[0].ok
        assert results[0].job.model is tiny_mlp_graph
        reference = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False)
        ).compile(tiny_mlp_graph)
        assert results[0].program.end_to_end_cycles == reference.end_to_end_cycles

    def test_cache_and_cache_dir_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError):
            CompileService(cache=AllocationCache(), cache_dir=tmp_path)

    def test_explicit_cache_with_store_is_honoured_by_workers(self, small_chip, tmp_path):
        """Workers pick up the disk store attached to an explicit cache."""
        cache = AllocationCache(store=DiskCacheStore(tmp_path))
        service = CompileService(cache=cache, backend="process", max_workers=1)
        cold = service.compile_batch([CompileJob("tiny-cnn", hardware=small_chip)])
        assert cold[0].ok and cold[0].stats["allocator_solves"] > 0
        assert len(cache.store) > 0  # workers wrote through the shared dir
        fresh_reader = AllocationCache(store=DiskCacheStore(tmp_path))
        warm = CompileService(cache=fresh_reader).compile_batch(
            [CompileJob("tiny-cnn", hardware=small_chip)]
        )
        assert warm[0].stats["allocator_solves"] == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            CompileService(backend="rocket")


class TestCrossProcessWarmStartCLI:
    def test_second_invocation_does_zero_solves(self, tmp_path):
        """Acceptance: a second *process* on the same --cache-dir solves nothing."""
        command = [
            sys.executable, "-m", "repro.cli", "compile-batch",
            "tiny-cnn", "--hardware", "small-test-chip",
            "--cache-dir", str(tmp_path),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        first = subprocess.run(
            command, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300
        )
        assert first.returncode == 0, first.stderr
        second = subprocess.run(
            command, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300
        )
        assert second.returncode == 0, second.stderr
        assert "total allocator solves: 0" in second.stdout


def _put_same_digest(root: str, rounds: int) -> None:
    """Worker: re-write (and read back) one fixed key while GC runs."""
    store = DiskCacheStore(root)
    key = _synthetic_key()
    entry = _entry()
    for _ in range(rounds):
        store.put(key, entry)
        got = store.get(key)
        # Pruned-away is fine (a miss); a *different* entry never is.
        assert got is None or got == entry


def _prune_repeatedly(root: str, rounds: int, max_bytes: int) -> None:
    """Worker: run the GC in a tight loop against racing writers."""
    store = DiskCacheStore(root)
    for _ in range(rounds):
        outcome = store.prune(max_bytes=max_bytes)
        assert outcome["removed_files"] >= 0


class TestPrunePutRace:
    """`prune()` racing `put()` on the same digest (ISSUE-9 satellite).

    The cache server runs GC while daemons write through to it, so a
    prune sweep deciding to delete a file just as a writer re-creates it
    must never surface a torn entry or an exception — only complete
    entries or clean misses — and the budget must hold once writers stop.
    """

    def test_prune_racing_put_same_digest(self, tmp_path):
        root = str(tmp_path)
        # A budget of one entry: every prune pass is eviction-happy, so
        # the delete-vs-recreate window is exercised constantly.
        entry_bytes = 512
        ctx = multiprocessing.get_context("fork")
        workers = [
            ctx.Process(target=_put_same_digest, args=(root, 120)),
            ctx.Process(target=_put_same_digest, args=(root, 120)),
            ctx.Process(target=_prune_repeatedly, args=(root, 120, entry_bytes)),
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=120)
            assert worker.exitcode == 0
        # No torn entries: whatever survived parses back exactly.
        store = DiskCacheStore(root)
        got = store.get(_synthetic_key())
        assert got is None or got == _entry()
        # The budget is respected once the racing writers have stopped.
        store.prune(max_bytes=entry_bytes)
        assert store.usage()["bytes"] <= entry_bytes
        assert len(store) <= 1
