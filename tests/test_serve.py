"""Tests for the serving tier: wire format, coalescing, daemon, remote cache.

Covers the ISSUE-9 acceptance surface: fingerprint-bit-identical wire
round trips, single-flight coalescing (exactly one allocator-solving
compile for N concurrent identical requests), the networked cache tier
(self-verifying entries: poisoned or version-skewed server data is a
miss, never a wrong program), `Session(remote_cache=...)` zero-solve
warm compiles, the `Session` context manager, and the batch JSON report.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest

from repro.api import Session
from repro.core.cache import AllocationCache, AllocationCacheKey, CacheEntry
from repro.core.compiler import CompilerOptions
from repro.core.store import DiskCacheStore, FORMAT_VERSION, key_digest
from repro.models.workload import Phase, Workload
from repro.serve import (
    CacheServer,
    Client,
    CoalesceTimeout,
    CompileDaemon,
    CompileRequestError,
    RemoteCacheStore,
    SingleFlight,
    WireFormatError,
    job_from_wire,
    job_to_wire,
    program_from_wire,
    program_to_wire,
    request_fingerprint,
)
from repro.serve.wire import WIRE_VERSION, check_version
from repro.service import CompileJob


def _synthetic_key(**overrides) -> AllocationCacheKey:
    fields = dict(
        hardware="feedfacefeedface",
        segment=(("linear", 1024, 32, 32, 1024, 1024, 32, 0, True, 1, 32, 32),),
        engine="milp",
        pipelined=True,
        refine=True,
        allow_memory_mode=True,
        reserve_arrays=0,
    )
    fields.update(overrides)
    return AllocationCacheKey(**fields)


def _entry(allocations=((2, 1), (3, 0)), latency=123.5) -> CacheEntry:
    return CacheEntry(
        allocations=tuple(tuple(pair) for pair in allocations),
        latency_cycles=latency,
        feasible=True,
        solver="milp",
    )


@pytest.fixture()
def cache_server(tmp_path):
    server = CacheServer(tmp_path / "served")
    server.start_background()
    yield server
    server.shutdown()


# ---------------------------------------------------------------------- #
# wire format
# ---------------------------------------------------------------------- #
class TestWireFormat:
    def test_job_roundtrip_by_name(self):
        job = CompileJob(
            "tiny-mlp",
            workload=Workload(batch_size=4, seq_len=32, phase=Phase.PREFILL),
            hardware="small-test-chip",
            options=CompilerOptions(generate_code=False),
            label="probe",
        )
        back = job_from_wire(job_to_wire(job))
        assert back.model == "tiny-mlp"
        assert back.workload == job.workload
        assert back.hardware == "small-test-chip"
        assert back.options == job.options
        assert back.label == "probe"

    def test_graph_job_travels_by_serialization(self, tiny_mlp_graph):
        job = CompileJob(tiny_mlp_graph)
        back = job_from_wire(job_to_wire(job))
        assert not isinstance(back.model, str)
        assert back.model.name == tiny_mlp_graph.name
        assert [op.name for op in back.model.operators] == [
            op.name for op in tiny_mlp_graph.operators
        ]

    def test_program_roundtrip_is_fingerprint_bit_identical(self, small_chip, tiny_mlp_graph):
        from repro.core.compiler import CMSwitchCompiler

        for generate_code in (False, True):
            program = CMSwitchCompiler(
                small_chip, CompilerOptions(generate_code=generate_code)
            ).compile(tiny_mlp_graph)
            back = program_from_wire(program_to_wire(program))
            assert back.fingerprint() == program.fingerprint()
            assert back.end_to_end_cycles == program.end_to_end_cycles
            assert back.num_segments == program.num_segments

    def test_wire_survives_json_serialisation(self, small_chip, tiny_mlp_graph):
        """The payload must survive an actual JSON encode/decode (floats!)."""
        from repro.core.compiler import CMSwitchCompiler

        program = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False)
        ).compile(tiny_mlp_graph)
        payload = json.loads(json.dumps(program_to_wire(program)))
        assert program_from_wire(payload).fingerprint() == program.fingerprint()

    def test_unknown_option_field_rejected(self):
        wire = job_to_wire(CompileJob("tiny-mlp", options=CompilerOptions()))
        wire["options"]["no_such_option"] = True
        with pytest.raises(WireFormatError):
            job_from_wire(wire)

    def test_newer_wire_version_rejected(self):
        with pytest.raises(WireFormatError):
            check_version({"wire_version": WIRE_VERSION + 1}, "test document")
        with pytest.raises(WireFormatError):
            check_version({}, "test document")

    def test_model_and_graph_are_mutually_exclusive(self):
        wire = job_to_wire(CompileJob("tiny-mlp"))
        wire["graph_json"] = "{}"
        with pytest.raises(WireFormatError):
            job_from_wire(wire)


class TestRequestFingerprint:
    def test_deterministic(self):
        job = CompileJob("tiny-mlp", workload=Workload(batch_size=2))
        assert request_fingerprint(job) == request_fingerprint(job)

    def test_sensitive_to_compile_determining_inputs(self):
        base = CompileJob("tiny-mlp")
        fp = request_fingerprint(base)
        assert request_fingerprint(CompileJob("tiny-cnn")) != fp
        assert (
            request_fingerprint(CompileJob("tiny-mlp", workload=Workload(batch_size=8)))
            != fp
        )
        assert (
            request_fingerprint(CompileJob("tiny-mlp", hardware="small-test-chip")) != fp
        )
        assert (
            request_fingerprint(
                CompileJob("tiny-mlp", options=CompilerOptions(pipelined=False))
            )
            != fp
        )

    def test_label_does_not_change_identity(self):
        assert request_fingerprint(
            CompileJob("tiny-mlp", label="a")
        ) == request_fingerprint(CompileJob("tiny-mlp", label="b"))

    def test_default_options_fold(self):
        """options=None coalesces with the daemon's explicit batch default."""
        default = CompilerOptions(generate_code=False)
        assert request_fingerprint(
            CompileJob("tiny-mlp"), default_options=default
        ) == request_fingerprint(CompileJob("tiny-mlp", options=default))
        # ... but not with a *different* explicit choice.
        assert request_fingerprint(
            CompileJob("tiny-mlp"), default_options=default
        ) != request_fingerprint(
            CompileJob("tiny-mlp", options=CompilerOptions(generate_code=True))
        )


# ---------------------------------------------------------------------- #
# single-flight coalescing
# ---------------------------------------------------------------------- #
class TestSingleFlight:
    def test_concurrent_callers_share_one_computation(self):
        flights = SingleFlight()
        calls = []
        gate = threading.Event()
        barrier = threading.Barrier(4)
        outcomes = []

        def work():
            calls.append(1)
            gate.wait(5)
            return "result"

        def run():
            barrier.wait(5)
            value, coalesced = flights.do("key", work, timeout=10)
            outcomes.append((value, coalesced))

        threads = [threading.Thread(target=run) for _ in range(4)]
        for thread in threads:
            thread.start()
        # Let every follower join the flight before the leader finishes.
        import time

        deadline = time.monotonic() + 10
        while flights.coalesced < 3 and time.monotonic() < deadline:
            time.sleep(0.001)
        gate.set()
        for thread in threads:
            thread.join(10)
        assert len(calls) == 1
        assert [value for value, _ in outcomes] == ["result"] * 4
        assert sorted(coalesced for _, coalesced in outcomes) == [False, True, True, True]
        assert flights.started == 1 and flights.coalesced == 3
        assert len(flights) == 0

    def test_leader_failure_propagates_and_is_not_replayed(self):
        flights = SingleFlight()
        boom = RuntimeError("solver exploded")

        flight, leader = flights.begin("key")
        assert leader
        follower_error = []

        def follow():
            try:
                flights.wait(flight, timeout=5)
            except RuntimeError as exc:
                follower_error.append(exc)

        thread = threading.Thread(target=follow)
        thread.start()
        flights.finish(flight, error=boom)
        thread.join(5)
        assert follower_error == [boom]
        # The failed flight is retired: the next caller leads afresh.
        _, leader_again = flights.begin("key")
        assert leader_again

    def test_wait_timeout(self):
        flights = SingleFlight()
        flight, _ = flights.begin("slow")
        with pytest.raises(CoalesceTimeout):
            flights.wait(flight, timeout=0.01)
        # The flight is still in the air for everyone else.
        _, leader = flights.begin("slow")
        assert not leader
        flights.finish(flight, value="done")


# ---------------------------------------------------------------------- #
# the networked cache tier
# ---------------------------------------------------------------------- #
class TestRemoteCacheStore:
    def test_roundtrip_through_server(self, cache_server):
        remote = RemoteCacheStore(cache_server.url)
        key, entry = _synthetic_key(), _entry()
        assert remote.get(key) is None
        remote.put(key, entry)
        assert remote.get(key) == entry
        assert remote.contains(key)
        assert not remote.contains(_synthetic_key(reserve_arrays=9))
        assert remote.stats.hits == 1 and remote.stats.misses == 1
        remote.close()

    def test_dead_server_is_a_miss_not_an_error(self):
        remote = RemoteCacheStore("http://127.0.0.1:9", timeout=0.2)
        key = _synthetic_key()
        assert remote.get(key) is None
        remote.put(key, _entry())  # must not raise either
        assert remote.stats.errors >= 1
        remote.close()

    def test_poisoned_entry_is_rejected_client_side(self, cache_server):
        """A tampered server can cause misses, never wrong allocations."""
        remote = RemoteCacheStore(cache_server.url)
        key, entry = _synthetic_key(), _entry()
        remote.put(key, entry)
        digest = key_digest(key)
        path = cache_server.store.root / digest[:2] / f"{digest}.json"
        payload = json.loads(path.read_text())
        payload["entry"]["allocations"] = [[9, 9]]  # poisoned allocations...
        payload["key"]["engine"] = "greedy"  # ...under a now-mismatched key
        path.write_text(json.dumps(payload))
        assert remote.get(key) is None
        assert remote.stats.corrupt_entries == 1
        remote.close()

    def test_version_skewed_entry_is_rejected_client_side(self, cache_server):
        remote = RemoteCacheStore(cache_server.url)
        key = _synthetic_key()
        remote.put(key, _entry())
        digest = key_digest(key)
        path = cache_server.store.root / digest[:2] / f"{digest}.json"
        payload = json.loads(path.read_text())
        payload["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(payload))
        assert remote.get(key) is None
        assert remote.stats.version_rejections == 1
        remote.close()

    def test_server_enforces_content_addressing_on_put(self, cache_server):
        """No writer can poison another key: digest must match the payload."""
        import http.client

        key, other = _synthetic_key(), _synthetic_key(engine="greedy")
        body = json.dumps(
            {
                "format_version": FORMAT_VERSION,
                "key": json.loads(
                    json.dumps(
                        {
                            "hardware": key.hardware,
                            "segment": [list(s) for s in key.segment],
                            "engine": key.engine,
                            "pipelined": key.pipelined,
                            "refine": key.refine,
                            "allow_memory_mode": key.allow_memory_mode,
                            "reserve_arrays": key.reserve_arrays,
                        }
                    )
                ),
                "entry": _entry().to_payload(),
            }
        ).encode()
        conn = http.client.HTTPConnection("127.0.0.1", cache_server.bound_port, timeout=5)
        # PUT the payload of `key` under `other`'s digest: must be refused.
        conn.request("PUT", f"/entry/{key_digest(other)}", body=body)
        response = conn.getresponse()
        response.read()
        assert response.status == 400
        assert cache_server.store.get(other) is None
        conn.close()


class TestThreeTierCache:
    def test_remote_hit_promotes_into_both_local_tiers(self, cache_server, tmp_path):
        key, entry = _synthetic_key(), _entry()
        RemoteCacheStore(cache_server.url).put(key, entry)

        store = DiskCacheStore(tmp_path / "local")
        cache = AllocationCache(store=store, remote=RemoteCacheStore(cache_server.url))
        result = cache.lookup(key, ["a", "b"])
        assert result is not None and result.from_cache and result.from_disk
        assert cache.stats.remote_hits == 1 and cache.stats.hits == 1
        # Promoted: the next lookup is a pure memory hit...
        cache.lookup(key, ["a", "b"])
        assert cache.stats.remote_hits == 1 and cache.stats.hits == 2
        # ...and the disk tier can now serve a *different* cache offline.
        assert DiskCacheStore(tmp_path / "local").get(key) == entry

    def test_fresh_solves_write_through_to_remote(self, cache_server):
        key, entry = _synthetic_key(), _entry()
        cache = AllocationCache(remote=RemoteCacheStore(cache_server.url))
        names = ["a", "b"]
        result = entry.to_result(names)
        from dataclasses import replace

        cache.put(key, {"a": None, "b": None}, replace(result, from_cache=False))
        assert RemoteCacheStore(cache_server.url).get(key) == entry

    def test_remoteless_cache_unchanged(self):
        cache = AllocationCache()
        assert cache.remote is None
        assert cache.lookup(_synthetic_key(), ["a"]) is None
        assert cache.stats.remote_hits == 0


# ---------------------------------------------------------------------- #
# the compile daemon
# ---------------------------------------------------------------------- #
class TestCompileDaemon:
    @pytest.fixture()
    def daemon(self, tmp_path):
        daemon = CompileDaemon(cache_dir=tmp_path / "daemon-cache", workers=2)
        daemon.start_background()
        yield daemon
        daemon.shutdown()

    def test_concurrent_identical_requests_coalesce_to_one_compile(self, daemon):
        """The acceptance tripwire: N clients, one allocator-solving compile."""
        fan_out = 4
        barrier = threading.Barrier(fan_out)
        results, errors = [], []

        def fire():
            client = Client(daemon.url, retries=1)
            try:
                barrier.wait(10)
                results.append(client.compile("tiny-mlp", hardware="small-test-chip"))
            except Exception as exc:  # noqa: BLE001 - assert below
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=fire) for _ in range(fan_out)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors
        assert len(results) == fan_out
        fingerprints = {result.fingerprint for result in results}
        assert len(fingerprints) == 1
        assert all(result.verify() for result in results)
        counters = daemon.counters()
        assert counters["compiles_executed"] == 1
        assert counters["coalesced_hits"] == fan_out - 1
        assert sum(result.coalesced for result in results) == fan_out - 1
        # The solver tripwire: total solves equal one cold compile's.
        local = Session(hardware="small-test-chip")
        program = local.compile("tiny-mlp", options=CompilerOptions(generate_code=False))
        assert counters["solves_executed"] == program.stats["allocator_solves"]
        assert fingerprints == {program.fingerprint()}

    def test_unknown_model_is_a_structured_400(self, daemon):
        client = Client(daemon.url, retries=1)
        with pytest.raises(CompileRequestError) as excinfo:
            client.compile("no-such-model")
        assert excinfo.value.code == "bad_request"
        assert "registered models" in str(excinfo.value)
        client.close()

    def test_batch_endpoint_isolates_failures(self, daemon):
        client = Client(daemon.url, retries=1)
        outcomes = client.compile_batch(
            [
                CompileJob("tiny-mlp", hardware="small-test-chip"),
                CompileJob("no-such-model"),
            ]
        )
        assert len(outcomes) == 2
        assert outcomes[0].verify()
        assert isinstance(outcomes[1], CompileRequestError)
        client.close()

    def test_stats_and_metrics_endpoints(self, daemon):
        client = Client(daemon.url, retries=1)
        client.compile("tiny-mlp", hardware="small-test-chip")
        stats = client.cache_stats()
        assert stats["serve"]["requests"] >= 1
        assert "coalescing" in stats and "cache" in stats
        text = client.metrics_text()
        assert "serve_compiles_executed" in text
        assert "serve_flights_started" in text
        client.close()

    def test_draining_daemon_refuses_new_work(self, tmp_path):
        daemon = CompileDaemon(workers=1)
        daemon.start_background()
        client = Client(daemon.url, retries=0)
        assert client.healthy(wait_seconds=5)
        daemon._draining.set()
        with pytest.raises(CompileRequestError) as excinfo:
            client.compile("tiny-mlp", hardware="small-test-chip")
        assert excinfo.value.code == "draining"
        client.close()
        daemon.shutdown()


# ---------------------------------------------------------------------- #
# Session integration (the cross-machine acceptance path, in-process)
# ---------------------------------------------------------------------- #
class TestSessionRemoteCache:
    def test_empty_local_cache_warm_compiles_with_zero_solves(
        self, cache_server, tmp_path
    ):
        options = CompilerOptions(generate_code=False)
        with Session(hardware="small-test-chip", remote_cache=cache_server.url) as warm:
            cold = warm.compile("tiny-mlp", options=options)
            assert cold.stats["allocator_solves"] > 0

        # A different "machine": empty local cache dir, same cache server.
        with Session(
            hardware="small-test-chip",
            cache_dir=tmp_path / "other-machine",
            remote_cache=cache_server.url,
        ) as other:
            program = other.compile("tiny-mlp", options=options)
            assert program.stats["allocator_solves"] == 0
            assert program.fingerprint() == cold.fingerprint()
            assert other.cache_stats.remote_hits > 0
            assert other.cache_stats.misses == 0

    def test_context_manager_closes_and_stays_usable(self):
        with Session(hardware="small-test-chip") as session:
            assert session.compile("tiny-mlp").num_segments >= 1
        session.close()  # idempotent
        assert session.compile("tiny-mlp").num_segments >= 1  # reconnectable


# ---------------------------------------------------------------------- #
# CLI surface
# ---------------------------------------------------------------------- #
class TestBatchJsonOut:
    def test_json_report_mirrors_the_table(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.json"
        code = main(["compile-batch", "tiny-mlp", "--json-out", str(out)])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "total allocator solves:" in stdout  # grep lines survive
        report = json.loads(out.read_text())
        assert report["totals"]["jobs"] == 1
        assert report["totals"]["failures"] == 0
        job = report["jobs"][0]
        assert job["label"] == "tiny-mlp" and job["ok"]
        assert job["allocator_solves"] == report["totals"]["allocator_solves"]
        assert job["latency_ms"] > 0
        assert "cache" in report
