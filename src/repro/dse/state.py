"""Resumable on-disk state of one DSE run.

A run directory makes a design-space exploration interruptible: every
evaluated point is appended to ``results.jsonl`` the moment its record
exists, and a restarted run loads the file and skips every point whose
key already appears.  The layout is deliberately minimal —

* ``space.json`` — the space declaration (:meth:`DesignSpace.to_spec`),
  its fingerprint, and run metadata (objective, strategy, format
  version).  Written atomically once, when the run is created.
* ``results.jsonl`` — one JSON object per evaluated design point,
  appended crash-safely: each line is written, flushed and fsynced
  before the runner moves on, so a killed process loses at most the
  record it was mid-writing — and the loader tolerates exactly that (a
  torn trailing line parses as "point not done", never as corruption).

Resume semantics: completed points are matched by their *point keys*
(:attr:`~repro.dse.space.DesignPoint.key`), not by the space fingerprint,
so resuming with a widened or otherwise overlapping space is supported —
the overlap is skipped, the new points are evaluated.  A changed space is
surfaced via :attr:`RunState.space_changed` for reporting, not rejected.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

__all__ = ["RunState", "RunStateError", "STATE_FORMAT_VERSION"]

#: Version of the run-directory format.  Bump on incompatible layout
#: changes; a loader refuses directories written by a different version.
STATE_FORMAT_VERSION = 1

SPACE_FILE = "space.json"
RESULTS_FILE = "results.jsonl"


class RunStateError(RuntimeError):
    """A run directory cannot be created or loaded as requested."""


class RunState:
    """Append-only persistent record of one DSE run.

    Use :meth:`open` (the front door: create-or-resume), or
    :meth:`create` / :meth:`load` directly.  Instances are context
    managers; closing them closes the append handle.

    Attributes:
        run_dir: The directory this state lives in.
        meta: Contents of ``space.json``.
        records: Result records in file order (dicts).
        completed: ``point_key -> record`` for every loaded/appended record.
        dropped_lines: Unparseable ``results.jsonl`` lines skipped on
            load (a crash-torn tail line lands here).
        space_changed: True when the state was resumed with a space whose
            fingerprint differs from the recorded one.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        meta: Dict,
        records: Optional[List[Dict]] = None,
        dropped_lines: int = 0,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.meta = meta
        self.records: List[Dict] = list(records or [])
        self.completed: Dict[str, Dict] = {
            record["point_key"]: record
            for record in self.records
            if isinstance(record, dict) and "point_key" in record
        }
        self.dropped_lines = dropped_lines
        self.space_changed = False
        self._handle = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def create(
        cls,
        run_dir: Union[str, Path],
        space_spec: Mapping,
        space_fingerprint: str,
        objective: str,
        strategy: str,
    ) -> "RunState":
        """Start a fresh run directory.

        Raises:
            RunStateError: The directory already holds results (pass
                ``resume`` / use :meth:`open` to continue it instead).
        """
        run_dir = Path(run_dir)
        run_dir.mkdir(parents=True, exist_ok=True)
        results = run_dir / RESULTS_FILE
        if results.exists() and results.stat().st_size > 0:
            raise RunStateError(
                f"run directory {run_dir} already contains results; "
                "resume it (--resume) or point the run at a fresh directory"
            )
        meta = {
            "format_version": STATE_FORMAT_VERSION,
            "space": dict(space_spec),
            "space_fingerprint": space_fingerprint,
            "objective": objective,
            "strategy": strategy,
        }
        _atomic_write_json(run_dir / SPACE_FILE, meta)
        return cls(run_dir, meta)

    @classmethod
    def load(cls, run_dir: Union[str, Path]) -> "RunState":
        """Load an existing run directory.

        Raises:
            RunStateError: Missing/unreadable ``space.json`` or a
                different format version.
        """
        run_dir = Path(run_dir)
        space_path = run_dir / SPACE_FILE
        try:
            with open(space_path, "r", encoding="utf-8") as handle:
                meta = json.load(handle)
        except FileNotFoundError:
            raise RunStateError(
                f"{run_dir} is not a DSE run directory ({SPACE_FILE} missing)"
            ) from None
        except (OSError, ValueError) as exc:
            raise RunStateError(f"cannot read {space_path}: {exc}") from exc
        version = meta.get("format_version")
        if version != STATE_FORMAT_VERSION:
            raise RunStateError(
                f"run directory {run_dir} uses state format {version!r}; "
                f"this version reads format {STATE_FORMAT_VERSION}"
            )
        records, dropped = _read_results(run_dir / RESULTS_FILE)
        return cls(run_dir, meta, records, dropped_lines=dropped)

    @classmethod
    def open(
        cls,
        run_dir: Union[str, Path],
        space_spec: Mapping,
        space_fingerprint: str,
        objective: str,
        strategy: str,
        resume: bool = False,
    ) -> "RunState":
        """Create-or-resume front door used by the runner and the CLI.

        * ``resume=True`` on an existing run directory loads it (a
          differing space fingerprint sets :attr:`space_changed`);
          on a missing/empty directory it simply starts fresh.
        * ``resume=True`` on a directory that has results but lost its
          ``space.json`` (a crash between directory creation and the
          metadata write, a stray delete) is *recovered*: the metadata
          is rebuilt from the current declaration, the results are
          loaded, and :attr:`space_changed` is set — the original
          declaration is unknown, so recorded coordinates are distrusted
          while point-key matching still works.
        * ``resume=False`` creates a fresh run and refuses a directory
          that already holds results.
        """
        run_dir = Path(run_dir)
        space_path = run_dir / SPACE_FILE
        if resume and space_path.exists():
            try:
                state = cls.load(run_dir)
            except RunStateError:
                # A torn/unreadable space.json is recoverable from the
                # results (the branch below); a *parseable* one that load
                # refused (format-version mismatch, unreadable results)
                # is not ours to clobber — re-raise.
                try:
                    with open(space_path, "r", encoding="utf-8") as handle:
                        json.load(handle)
                except (OSError, ValueError):
                    state = None
                else:
                    raise
        else:
            state = None
        if state is not None:
            state.space_changed = (
                state.meta.get("space_fingerprint") != space_fingerprint
            )
            # A resume may legitimately widen the space or switch
            # objective/strategy (records carry their own space
            # fingerprints, and the runner re-derives scores); the
            # directory's metadata must keep describing what the run
            # actually does now, so the *next* resume of the identical
            # declaration is not flagged as changed again.
            updated = {
                "space": dict(space_spec),
                "space_fingerprint": space_fingerprint,
                "objective": objective,
                "strategy": strategy,
            }
            if any(state.meta.get(key) != value for key, value in updated.items()):
                state.meta.update(updated)
                _atomic_write_json(run_dir / SPACE_FILE, state.meta)
            return state
        results = run_dir / RESULTS_FILE
        if resume and results.exists() and results.stat().st_size > 0:
            records, dropped = _read_results(results)
            meta = {
                "format_version": STATE_FORMAT_VERSION,
                "space": dict(space_spec),
                "space_fingerprint": space_fingerprint,
                "objective": objective,
                "strategy": strategy,
                "recovered": True,
            }
            _atomic_write_json(run_dir / SPACE_FILE, meta)
            state = cls(run_dir, meta, records, dropped_lines=dropped)
            state.space_changed = True
            return state
        return cls.create(run_dir, space_spec, space_fingerprint, objective, strategy)

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, record: Mapping) -> None:
        """Durably append one result record.

        The line is written, flushed and fsynced before returning: after
        this call the record survives a process kill.  ``record`` must
        carry a ``point_key``.
        """
        record = dict(record)
        if "point_key" not in record:
            raise ValueError("result records must carry a 'point_key'")
        if self._handle is None:
            self._handle = open(
                self.run_dir / RESULTS_FILE, "a", encoding="utf-8"
            )
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.records.append(record)
        self.completed[record["point_key"]] = record

    def close(self) -> None:
        """Close the append handle (appending later reopens it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunState":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __len__(self) -> int:
        return len(self.completed)


def _read_results(path: Path):
    """Read a results file, skipping unparseable (torn) lines.

    A missing file is an empty run; any other I/O failure raises
    :class:`RunStateError` — silently treating an *unreadable* file as
    empty would re-evaluate everything and then append to a file we
    cannot even read.
    """
    records: List[Dict] = []
    dropped = 0
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    dropped += 1
                    continue
                if isinstance(record, dict) and "point_key" in record:
                    records.append(record)
                else:
                    dropped += 1
    except FileNotFoundError:
        pass
    except OSError as exc:
        raise RunStateError(f"cannot read {path}: {exc}") from exc
    return records, dropped


def _atomic_write_json(path: Path, payload: Mapping) -> None:
    """Write JSON via tmp + fsync + rename so a crash never publishes a
    torn file (the results lines are fsynced, so the metadata that
    frames them must be just as durable)."""
    fd, tmp_name = tempfile.mkstemp(prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
