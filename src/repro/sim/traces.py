"""Request traces: the serving simulator's workload description.

A :class:`Trace` is an arrival-ordered list of inference requests —
which model, which workload (batch / sequence-length bucket), and when
it arrives on the *virtual* clock — plus free-form metadata about where
the trace came from.  Traces come from two places:

* **Files** — a versioned JSONL format (:func:`load_trace` /
  :func:`save_trace`): one header line carrying the format name and
  version, then one request per line.  The reader follows the same
  versioning discipline as :class:`~repro.core.store.DiskCacheStore`:
  a trace written by a *newer* format version is refused with a clear
  error instead of being misread, and malformed lines raise
  :class:`TraceFormatError` naming the offending line.
* **Seeded generators** — :func:`poisson_trace` (memoryless arrivals),
  :func:`bursty_trace` (a two-state Markov-modulated Poisson process:
  quiet baseline punctuated by high-rate bursts) and
  :func:`diurnal_trace` (sinusoidal rate modulation), all driven by one
  ``random.Random(seed)`` so the same seed reproduces the same trace
  bit-for-bit on any platform.

Sequence lengths are drawn from a small *bucket* list rather than a
continuum: every request then maps onto one of a handful of distinct
(model, workload) pairs, so the compile cache makes the whole bucket
family nearly free after the first request of each kind.

Workloads serialise through
:func:`repro.models.workload.workload_to_payload` — the exact format
DSE run directories use — so a workload written into a trace reads
back identical to one recorded by any other subsystem.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..models.registry import is_transformer
from ..models.workload import (
    Phase,
    Workload,
    workload_from_payload,
    workload_to_payload,
)

__all__ = [
    "TRACE_FORMAT",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceFormatError",
    "TraceRequest",
    "bursty_trace",
    "diurnal_trace",
    "load_trace",
    "poisson_trace",
    "save_trace",
    "synthetic_trace",
]

#: Format name carried by the header line of every trace file.
TRACE_FORMAT = "repro-trace"

#: Version of the JSONL trace format.  Bump it whenever the header or
#: request schema changes meaning; readers refuse *newer* versions (the
#: file belongs to a newer writer and misreading it would silently
#: replay the wrong traffic) and accept older ones they still understand.
TRACE_FORMAT_VERSION = 1

#: Synthetic generator kinds accepted by :func:`synthetic_trace`.
GENERATOR_KINDS = ("poisson", "bursty", "diurnal")


class TraceFormatError(ValueError):
    """A trace file (or payload) violates the trace format."""


@dataclass(frozen=True)
class TraceRequest:
    """One inference request of a trace.

    Attributes:
        request_id: Stable identifier, unique within the trace.
        arrival_ms: Arrival time on the virtual clock, in milliseconds.
        model: Registered model name.
        workload: Workload the request asks for (its sequence-length
            bucket, batch size and phase).
    """

    request_id: str
    arrival_ms: float
    model: str
    workload: Workload

    def __post_init__(self) -> None:
        if self.arrival_ms < 0:
            raise ValueError(
                f"request {self.request_id!r} arrives at negative time "
                f"{self.arrival_ms}"
            )

    def to_payload(self) -> Dict:
        """JSONL line payload of the request."""
        return {
            "id": self.request_id,
            "arrival_ms": self.arrival_ms,
            "model": self.model,
            "workload": workload_to_payload(self.workload),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "TraceRequest":
        """Rebuild a request from :meth:`to_payload` output."""
        try:
            return cls(
                request_id=str(payload["id"]),
                arrival_ms=float(payload["arrival_ms"]),
                model=str(payload["model"]),
                workload=workload_from_payload(payload["workload"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceFormatError(f"invalid trace request {payload!r}: {exc}") from exc


@dataclass
class Trace:
    """An arrival-ordered request sequence plus provenance metadata."""

    requests: List[TraceRequest] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Arrival order is the contract every consumer relies on (the
        # replay scheduler serves FIFO in this order); ties keep the
        # original position so sorting is deterministic.
        self.requests = sorted(
            self.requests, key=lambda r: r.arrival_ms
        )

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def models(self) -> List[str]:
        """Distinct model names, in first-appearance order."""
        seen: Dict[str, None] = {}
        for request in self.requests:
            seen.setdefault(request.model, None)
        return list(seen)

    @property
    def duration_ms(self) -> float:
        """Arrival span of the trace (last arrival; 0 when empty)."""
        return self.requests[-1].arrival_ms if self.requests else 0.0

    def describe(self) -> str:
        """One-line human-readable summary."""
        kind = self.metadata.get("kind", "file")
        return (
            f"{len(self.requests)} request(s), {len(self.models)} model(s), "
            f"{self.duration_ms:.1f} ms span ({kind})"
        )

    # ------------------------------------------------------------------ #
    # metamorphic transforms (library-level so tests and sweeps share them)
    # ------------------------------------------------------------------ #
    def with_gaps_scaled(self, factor: float) -> "Trace":
        """Copy with every arrival time scaled by ``factor``.

        Scaling arrivals from the origin scales every inter-arrival gap
        by the same factor; ``factor > 1`` thins the traffic (offered
        load drops), ``factor < 1`` intensifies it.  The request order
        and everything else are unchanged.
        """
        if factor <= 0:
            raise ValueError(f"gap scale factor must be positive, got {factor}")
        return Trace(
            requests=[
                replace(request, arrival_ms=request.arrival_ms * factor)
                for request in self.requests
            ],
            metadata={**self.metadata, "gap_scale": factor},
        )

    def merged(self, other: "Trace") -> "Trace":
        """The interleaving of two traces (requests re-sorted by arrival).

        Request ids are prefixed per source (``a:``/``b:``) so the merge
        never silently collapses two requests that happened to share an
        id.  Total work is preserved: every request of both inputs
        appears exactly once.
        """
        combined = [
            replace(request, request_id=f"a:{request.request_id}")
            for request in self.requests
        ] + [
            replace(request, request_id=f"b:{request.request_id}")
            for request in other.requests
        ]
        return Trace(requests=combined, metadata={"kind": "merged"})


# ---------------------------------------------------------------------- #
# file format
# ---------------------------------------------------------------------- #
def save_trace(trace: Trace, path: Union[str, Path]) -> Path:
    """Write a trace as versioned JSONL (header line + one request/line)."""
    path = Path(path).expanduser()
    header = {
        "format": TRACE_FORMAT,
        "version": TRACE_FORMAT_VERSION,
        "requests": len(trace.requests),
        "metadata": trace.metadata,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(request.to_payload(), sort_keys=True) for request in trace.requests
    )
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return path


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace file written by :func:`save_trace`.

    Raises:
        OSError: The file does not exist or cannot be read (callers —
            the CLI in particular — turn this into a usage error).
        TraceFormatError: Not a trace file, a newer format version, or
            a malformed header/request line.
    """
    path = Path(path).expanduser()
    text = path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError(f"{path}: empty file is not a trace")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"{path}: header line is not JSON: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != TRACE_FORMAT:
        raise TraceFormatError(
            f"{path}: not a {TRACE_FORMAT!r} file (header {str(lines[0])[:80]!r})"
        )
    version = header.get("version")
    if not isinstance(version, int):
        raise TraceFormatError(f"{path}: missing integer format version in header")
    if version > TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"{path}: trace format version {version} is newer than the "
            f"supported version {TRACE_FORMAT_VERSION}; upgrade repro to read it"
        )
    requests: List[TraceRequest] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"{path}:{number}: not JSON: {exc}") from exc
        try:
            requests.append(TraceRequest.from_payload(payload))
        except TraceFormatError as exc:
            raise TraceFormatError(f"{path}:{number}: {exc}") from exc
    metadata = header.get("metadata")
    return Trace(
        requests=requests,
        metadata=dict(metadata) if isinstance(metadata, dict) else {},
    )


# ---------------------------------------------------------------------- #
# seeded synthetic generators
# ---------------------------------------------------------------------- #
def default_workload(model: str, seq_len: int, batch_size: int = 1) -> Workload:
    """The workload a bare (model, sequence bucket) request means.

    Mirrors the CLI's phase convention: transformers run a single
    encode pass, everything else a prefill pass (the phase field is
    ignored by CNN builders anyway).
    """
    phase = Phase.ENCODE if is_transformer(model) else Phase.PREFILL
    return Workload(batch_size=batch_size, seq_len=seq_len, phase=phase)


def _draw_requests(
    rng,
    models: Sequence[str],
    num_requests: int,
    gap_ms,
    seq_len_buckets: Sequence[int],
    batch_size: int,
    weights: Optional[Sequence[float]],
) -> List[TraceRequest]:
    """Shared generator core: draw arrivals, models and buckets.

    ``gap_ms`` is a callable producing the next inter-arrival gap — the
    only thing the three traffic shapes differ in.
    """
    if not models:
        raise ValueError("trace generation requires at least one model")
    if num_requests <= 0:
        raise ValueError(f"num_requests must be positive, got {num_requests}")
    if not seq_len_buckets:
        raise ValueError("trace generation requires at least one seq-len bucket")
    if weights is not None and len(weights) != len(models):
        raise ValueError(
            f"got {len(weights)} weights for {len(models)} models"
        )
    models = list(models)
    buckets = list(seq_len_buckets)
    width = len(str(num_requests - 1))
    requests: List[TraceRequest] = []
    now = 0.0
    for index in range(num_requests):
        if index > 0:
            now += gap_ms()
        model = rng.choices(models, weights=weights, k=1)[0]
        seq_len = rng.choice(buckets)
        requests.append(
            TraceRequest(
                request_id=f"r{index:0{width}d}",
                arrival_ms=now,
                model=model,
                workload=default_workload(model, seq_len, batch_size=batch_size),
            )
        )
    return requests


def poisson_trace(
    models: Sequence[str],
    num_requests: int = 32,
    rate_rps: float = 50.0,
    seed: int = 0,
    seq_len_buckets: Sequence[int] = (32, 64),
    batch_size: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> Trace:
    """Memoryless traffic: exponential inter-arrival gaps at ``rate_rps``."""
    import random

    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    rng = random.Random(seed)
    rate_per_ms = rate_rps / 1000.0
    requests = _draw_requests(
        rng,
        models,
        num_requests,
        lambda: rng.expovariate(rate_per_ms),
        seq_len_buckets,
        batch_size,
        weights,
    )
    return Trace(
        requests=requests,
        metadata={
            "kind": "poisson",
            "seed": seed,
            "rate_rps": rate_rps,
            "models": list(models),
            "seq_len_buckets": list(seq_len_buckets),
        },
    )


def bursty_trace(
    models: Sequence[str],
    num_requests: int = 32,
    base_rate_rps: float = 20.0,
    burst_rate_rps: float = 200.0,
    burst_probability: float = 0.2,
    mean_burst_length: float = 5.0,
    seed: int = 0,
    seq_len_buckets: Sequence[int] = (32, 64),
    batch_size: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> Trace:
    """Bursty traffic: a two-state Markov-modulated Poisson process.

    The generator alternates between a quiet state (``base_rate_rps``)
    and a burst state (``burst_rate_rps``); each gap draws from the
    current state's exponential, then the state flips with probability
    ``burst_probability`` (quiet -> burst) or ``1/mean_burst_length``
    (burst -> quiet).  This is the classic MMPP(2) shape serving
    papers use for flash crowds.
    """
    import random

    if base_rate_rps <= 0 or burst_rate_rps <= 0:
        raise ValueError("arrival rates must be positive")
    if not 0.0 <= burst_probability <= 1.0:
        raise ValueError(f"burst_probability must be in [0, 1], got {burst_probability}")
    if mean_burst_length < 1.0:
        raise ValueError(f"mean_burst_length must be >= 1, got {mean_burst_length}")
    rng = random.Random(seed)
    state = {"bursting": False}

    def gap_ms() -> float:
        rate = burst_rate_rps if state["bursting"] else base_rate_rps
        gap = rng.expovariate(rate / 1000.0)
        if state["bursting"]:
            if rng.random() < 1.0 / mean_burst_length:
                state["bursting"] = False
        elif rng.random() < burst_probability:
            state["bursting"] = True
        return gap

    requests = _draw_requests(
        rng, models, num_requests, gap_ms, seq_len_buckets, batch_size, weights
    )
    return Trace(
        requests=requests,
        metadata={
            "kind": "bursty",
            "seed": seed,
            "base_rate_rps": base_rate_rps,
            "burst_rate_rps": burst_rate_rps,
            "burst_probability": burst_probability,
            "mean_burst_length": mean_burst_length,
            "models": list(models),
            "seq_len_buckets": list(seq_len_buckets),
        },
    )


def diurnal_trace(
    models: Sequence[str],
    num_requests: int = 32,
    peak_rate_rps: float = 100.0,
    trough_rate_rps: float = 10.0,
    period_ms: float = 1000.0,
    seed: int = 0,
    seq_len_buckets: Sequence[int] = (32, 64),
    batch_size: int = 1,
    weights: Optional[Sequence[float]] = None,
) -> Trace:
    """Diurnal traffic: sinusoidal rate between trough and peak.

    The instantaneous rate follows one sine cycle per ``period_ms`` of
    virtual time — a compressed day — so a trace spanning a few periods
    exercises both the saturated peak and the idle trough.
    """
    import math
    import random

    if trough_rate_rps <= 0 or peak_rate_rps < trough_rate_rps:
        raise ValueError(
            "need 0 < trough_rate_rps <= peak_rate_rps "
            f"(got trough={trough_rate_rps}, peak={peak_rate_rps})"
        )
    if period_ms <= 0:
        raise ValueError(f"period_ms must be positive, got {period_ms}")
    rng = random.Random(seed)
    mean = (peak_rate_rps + trough_rate_rps) / 2.0
    swing = (peak_rate_rps - trough_rate_rps) / 2.0
    clock = {"now": 0.0}

    def gap_ms() -> float:
        phase = 2.0 * math.pi * (clock["now"] % period_ms) / period_ms
        rate = mean + swing * math.sin(phase)
        gap = rng.expovariate(rate / 1000.0)
        clock["now"] += gap
        return gap

    requests = _draw_requests(
        rng, models, num_requests, gap_ms, seq_len_buckets, batch_size, weights
    )
    return Trace(
        requests=requests,
        metadata={
            "kind": "diurnal",
            "seed": seed,
            "peak_rate_rps": peak_rate_rps,
            "trough_rate_rps": trough_rate_rps,
            "period_ms": period_ms,
            "models": list(models),
            "seq_len_buckets": list(seq_len_buckets),
        },
    )


def synthetic_trace(kind: str, models: Sequence[str], **kwargs) -> Trace:
    """Build a synthetic trace by generator name (CLI entry point).

    Args:
        kind: ``"poisson"`` / ``"bursty"`` / ``"diurnal"``.
        models: Registered model names the traffic mixes.
        **kwargs: Forwarded to the chosen generator.

    Raises:
        ValueError: Unknown generator kind.
    """
    if kind == "poisson":
        return poisson_trace(models, **kwargs)
    if kind == "bursty":
        return bursty_trace(models, **kwargs)
    if kind == "diurnal":
        return diurnal_trace(models, **kwargs)
    raise ValueError(
        f"unknown trace generator {kind!r}; known: {', '.join(GENERATOR_KINDS)}"
    )
