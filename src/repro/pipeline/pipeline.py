"""The pipeline runner: ordered passes, surgery, instrumentation.

:class:`Pipeline` executes a sequence of :class:`~repro.pipeline.passes
.Pass` objects over one :class:`~repro.pipeline.context.PipelineContext`,
timing each pass (``ctx.pass_seconds``) and emitting
:class:`~repro.pipeline.context.TraceEvent` s to registered hooks.  The
pass list is a first-class value: :meth:`Pipeline.replace`,
:meth:`Pipeline.insert_before` / :meth:`Pipeline.insert_after` and
:meth:`Pipeline.remove` let callers swap a stage (a different
segmentation strategy, an extra instrumentation pass) without touching
the rest — which is what turns the compile pipeline itself into an
explorable artifact.

:func:`build_pipeline` constructs the standard CMSwitch sequence;
:func:`finalize` turns a finished context into a
:class:`~repro.core.program.CompiledProgram` (or raises
:class:`~repro.core.segmentation.NoFeasiblePlanError`), reproducing the
fused compiler's output bit for bit.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core.program import CompiledProgram
from ..core.segmentation import NoFeasiblePlanError, plan_cost
from ..obs import NULL_TRACER
from .context import PipelineContext, TraceEvent
from .passes import (
    Allocate,
    Codegen,
    FixedModeFallback,
    Flatten,
    PartitionOversized,
    Pass,
    Refine,
    Segment,
)

__all__ = [
    "Pipeline",
    "build_pipeline",
    "default_passes",
    "finalize",
    "instrumentation_stats",
]

#: Signature of a pipeline instrumentation hook.
Hook = Callable[[TraceEvent, PipelineContext], None]


class Pipeline:
    """An ordered, editable sequence of compile passes.

    Args:
        passes: Initial pass objects (names must be unique).
        hooks: Instrumentation callables invoked with every
            :class:`TraceEvent` (``start`` / ``end`` / ``skip``) and the
            context.  Hooks observe; exceptions they raise propagate —
            a broken instrument should fail loudly, not corrupt timings
            silently.
    """

    def __init__(
        self, passes: Sequence[Pass] = (), hooks: Sequence[Hook] = ()
    ) -> None:
        self._passes: List[Pass] = []
        self._hooks: List[Hook] = list(hooks)
        for p in passes:
            self.append(p)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def passes(self) -> tuple:
        """The pass objects, in execution order."""
        return tuple(self._passes)

    @property
    def names(self) -> List[str]:
        """Pass names, in execution order."""
        return [p.name for p in self._passes]

    def get(self, name: str) -> Pass:
        """The pass registered under ``name``.

        Raises:
            KeyError: If no pass has that name.
        """
        for p in self._passes:
            if p.name == name:
                return p
        raise KeyError(
            f"no pass named {name!r}; pipeline has: {', '.join(self.names)}"
        )

    def _index(self, name: str) -> int:
        for index, p in enumerate(self._passes):
            if p.name == name:
                return index
        raise KeyError(
            f"no pass named {name!r}; pipeline has: {', '.join(self.names)}"
        )

    def _check_free(self, new_pass: Pass) -> None:
        if any(p.name == new_pass.name for p in self._passes):
            raise ValueError(
                f"a pass named {new_pass.name!r} is already registered "
                f"(use replace() to swap it)"
            )

    # ------------------------------------------------------------------ #
    # surgery
    # ------------------------------------------------------------------ #
    def append(self, new_pass: Pass) -> "Pipeline":
        """Add a pass at the end."""
        self._check_free(new_pass)
        self._passes.append(new_pass)
        return self

    def replace(self, name: str, new_pass: Pass) -> "Pipeline":
        """Swap the pass named ``name`` for ``new_pass`` (same position)."""
        index = self._index(name)
        if new_pass.name != name:
            self._check_free(new_pass)
        self._passes[index] = new_pass
        return self

    def insert_before(self, name: str, new_pass: Pass) -> "Pipeline":
        """Insert ``new_pass`` immediately before the pass named ``name``."""
        self._check_free(new_pass)
        self._passes.insert(self._index(name), new_pass)
        return self

    def insert_after(self, name: str, new_pass: Pass) -> "Pipeline":
        """Insert ``new_pass`` immediately after the pass named ``name``."""
        self._check_free(new_pass)
        self._passes.insert(self._index(name) + 1, new_pass)
        return self

    def remove(self, name: str) -> "Pipeline":
        """Drop the pass named ``name``."""
        del self._passes[self._index(name)]
        return self

    def add_hook(self, hook: Hook) -> "Pipeline":
        """Register an instrumentation hook."""
        self._hooks.append(hook)
        return self

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def _emit(self, event: TraceEvent, ctx: PipelineContext) -> None:
        ctx.trace.append(event)
        for hook in self._hooks:
            hook(event, ctx)

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Execute every enabled pass over ``ctx``, timing each one.

        Disabled passes (``Pass.enabled(ctx)`` false) emit a ``skip``
        trace event and no timing entry, so ``pass_seconds`` lists
        exactly the work that ran.
        """
        if not ctx.started:
            ctx.started = time.perf_counter()
        tracer = getattr(ctx.obs, "tracer", NULL_TRACER)
        with tracer.span(
            "pipeline", graph=ctx.graph.name, compiler=ctx.compiler_name
        ):
            for p in self._passes:
                if not p.enabled(ctx):
                    self._emit(TraceEvent(p.name, "skip"), ctx)
                    tracer.event(f"{p.name}:skip")
                    continue
                self._emit(TraceEvent(p.name, "start"), ctx)
                with tracer.span(p.name, kind="pass"):
                    began = time.perf_counter()
                    p.run(ctx)
                    elapsed = time.perf_counter() - began
                ctx.pass_seconds[p.name] = elapsed
                self._emit(TraceEvent(p.name, "end", elapsed), ctx)
        return ctx


def default_passes() -> List[Pass]:
    """The standard CMSwitch pass sequence, fresh instances."""
    return [
        Flatten(),
        PartitionOversized(),
        Segment(),
        Allocate(),
        FixedModeFallback(),
        Refine(),
        Codegen(),
    ]


def build_pipeline(hooks: Sequence[Hook] = ()) -> Pipeline:
    """A :class:`Pipeline` with the standard CMSwitch pass sequence.

    Options-dependent passes (``FixedModeFallback``, ``Refine``,
    ``Codegen``) gate themselves on the context's options, so one
    pipeline serves every :class:`~repro.core.compiler.CompilerOptions`
    configuration — including the CIM-MLC baseline, which is exactly
    this pipeline with memory mode pinned off.
    """
    return Pipeline(default_passes(), hooks=hooks)


def instrumentation_stats(ctx: PipelineContext) -> Dict[str, object]:
    """The per-pass instrumentation block of ``CompiledProgram.stats``.

    One shape for every pipeline finaliser — :func:`finalize` here and
    the baselines' hand-assembled programs — so both the wall-time dict
    *and* the ordered trace-event log survive into stats (the baselines
    used to copy ``pass_seconds`` and silently drop the trace).
    """
    return {
        "pass_seconds": dict(ctx.pass_seconds),
        "pass_events": [
            {"pass": event.pass_name, "kind": event.kind, "seconds": event.seconds}
            for event in ctx.trace
        ],
    }


def finalize(ctx: PipelineContext) -> CompiledProgram:
    """Assemble the :class:`CompiledProgram` from a finished context.

    Raises:
        NoFeasiblePlanError: If the chosen plan has infinite cost for a
            non-empty graph (both the dual-mode and fixed-mode passes
            failed to produce a feasible plan).
    """
    result = ctx.result
    if result is None:
        raise RuntimeError("finalize() requires a completed pipeline run")
    final_cost = plan_cost(result)
    if result.segments and not math.isfinite(final_cost):
        raise NoFeasiblePlanError(
            f"no feasible execution plan for graph {ctx.graph.name!r} on "
            f"{ctx.hardware.name!r}: every evaluated plan has infinite cost",
            stats={
                **ctx.stats_payload(),
                "wall_seconds": time.perf_counter() - ctx.started,
            },
        )
    elapsed = time.perf_counter() - ctx.started
    block_repeat = float(ctx.graph.metadata.get("block_repeat", 1.0))
    stats = {
        **ctx.stats_payload(),
        "wall_seconds": elapsed,
        **instrumentation_stats(ctx),
    }
    for key, value in ctx.extras.items():
        stats.setdefault(key, value)
    options = ctx.options
    return CompiledProgram(
        graph_name=ctx.graph.name,
        compiler_name=ctx.compiler_name,
        hardware=ctx.hardware,
        segments=result.segments,
        block_repeat=block_repeat,
        compile_seconds=elapsed,
        metadata={
            "graph_metadata": dict(ctx.graph.metadata),
            "options": {
                "max_segment_operators": options.max_segment_operators,
                "pipelined": options.pipelined,
                "include_switch_cost": options.include_switch_cost,
                "use_milp": options.use_milp,
                "refine": options.refine,
                "allow_memory_mode": options.allow_memory_mode,
            },
            "num_flattened_units": len(result.units),
            "allocation_calls": ctx.allocation_calls,
            "dp_seconds": ctx.dp_seconds,
            "fixed_mode_fallback_used": ctx.fallback_used,
            "passes": [event.pass_name for event in ctx.trace if event.kind == "end"],
        },
        stats=stats,
        meta_program=ctx.meta_program,
    )
