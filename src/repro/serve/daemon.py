"""The compile daemon: ``Session`` promoted to a long-lived process.

:class:`CompileDaemon` is the front door of the serving tier — a
stdlib-only threaded HTTP/JSON server over one shared
:class:`~repro.service.CompileService`:

* **Bounded admission.**  Requests land on a bounded work queue served
  by a fixed worker pool; when the queue is full the daemon answers a
  structured 503 immediately instead of stacking threads.  The accept
  loop itself (``ThreadingHTTPServer``) only parses, validates and
  waits — compiles never run on connection threads.
* **In-flight coalescing.**  Requests are keyed by
  :func:`~repro.serve.wire.request_fingerprint` (graph identity × DEHA
  fingerprint × options — the same inputs that determine
  :meth:`CompiledProgram.fingerprint`); concurrent identical requests
  share one compile through :class:`~repro.serve.SingleFlight`.  Every
  waiter is bounded by ``wait_timeout`` (structured 504 on expiry), so
  a slow compile can never wedge the accept loop.
* **Warmth at every tier.**  The service's cache composes memory, an
  optional disk directory and an optional remote cache server
  (``remote_cache=``), so the daemon both serves *from* and feeds
  *into* fleet-wide warmth.
* **Observability.**  Per-request spans (``serve.request``) and
  counters flow through :mod:`repro.obs`; ``GET /metrics`` exposes
  them, the coalescing counters and the cache tiers in a text format,
  ``GET /v1/cache/stats`` in JSON.

Endpoints (all JSON, versioned via ``wire_version``):

* ``POST /v1/compile`` — one job in, one compiled program out.
* ``POST /v1/compile_batch`` — many jobs in, per-job outcomes out
  (failures isolated per job, mirroring :meth:`CompileService.compile_batch`).
* ``GET /v1/cache/stats`` — cache/tier counters.
* ``GET /healthz`` — liveness.
* ``GET /metrics`` — text metrics.
"""

from __future__ import annotations

import json
import logging
import queue
import threading
from typing import Dict, List, Optional, Union

from ..core.compiler import CompilerOptions
from ..models.registry import list_models
from ..obs import Observability
from ..service import CompileJob, CompileJobResult, CompileService
from .coalesce import CoalesceTimeout, SingleFlight
from .httpbase import QuietHandler, ServingHTTPServer, read_body, respond_json, respond_text
from .wire import (
    WIRE_VERSION,
    WireFormatError,
    error_payload,
    job_from_wire,
    program_to_wire,
    request_fingerprint,
)

__all__ = ["CompileDaemon"]

LOGGER = logging.getLogger("repro")

#: Default bound on queued-but-not-yet-compiling requests.
DEFAULT_QUEUE_LIMIT = 64

#: Default per-waiter bound (seconds) on coalesced/queued waits.
DEFAULT_WAIT_TIMEOUT = 300.0


class _QueueFull(Exception):
    """Internal: admission refused because the work queue is at its bound."""


class CompileDaemon:
    """Long-lived compile server over one shared :class:`CompileService`.

    Args:
        cache_dir: Optional persistent disk tier for the allocation
            cache (shared with every other process mounting it).
        remote_cache: Optional URL of a ``repro cache-server`` — the
            networked third cache tier.
        workers: Compile worker threads (the pool that executes jobs;
            connection threads only wait).
        solve_jobs: Worker threads for window-allocation solves.  One
            :class:`~repro.core.solverpool.SolverPool` is shared by every
            compile worker (the oversubscription rule — total solver
            concurrency stays bounded by this budget), its stats show up
            on ``/metrics``, and it is a *server-side* knob: the wire
            format rejects ``solve_jobs`` in request options, so clients
            cannot size the daemon's pool.
        queue_limit: Bound on jobs admitted but not yet compiling;
            beyond it requests get a structured 503.
        wait_timeout: Per-request bound in seconds on waiting for a
            result (queued or coalesced); expiry answers 504 while the
            compile itself keeps running for later requests.
        host: Bind address (loopback by default).
        port: TCP port; 0 picks an ephemeral one (see ``bound_port``).
        obs: Optional :class:`~repro.obs.Observability` bundle; the
            daemon creates an enabled one by default so ``/metrics``
            always has data.
        use_cache: Disable the allocation cache entirely (A/B timing).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        remote_cache: Optional[str] = None,
        workers: int = 2,
        solve_jobs: Optional[int] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        wait_timeout: float = DEFAULT_WAIT_TIMEOUT,
        host: str = "127.0.0.1",
        port: int = 0,
        obs: Optional[Observability] = None,
        use_cache: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        self.obs = obs if obs is not None else Observability.create()
        self.service = CompileService(
            cache_dir=cache_dir,
            remote_cache=remote_cache,
            use_cache=use_cache,
            solve_jobs=solve_jobs,
            obs=self.obs,
        )
        #: Options the service substitutes for ``options=None`` — also
        #: what the coalescing fingerprint folds omitted options onto.
        self.default_options = CompilerOptions(generate_code=False)
        self.wait_timeout = wait_timeout
        self.flights = SingleFlight()
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._counters: Dict[str, int] = {
            "requests": 0,
            "compiles_executed": 0,
            "compile_failures": 0,
            "coalesced_hits": 0,
            "queue_rejections": 0,
            "wait_timeouts": 0,
            "bad_requests": 0,
            "solves_executed": 0,
        }
        self._counters_lock = threading.Lock()
        self._draining = threading.Event()
        self._workers: List[threading.Thread] = []
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

        daemon = self

        class Handler(QuietHandler):
            server_version = "repro-serve"

            def do_GET(self) -> None:  # noqa: N802 - stdlib casing
                daemon._handle_get(self)

            def do_POST(self) -> None:  # noqa: N802 - stdlib casing
                daemon._handle_post(self)

        self.httpd = ServingHTTPServer((host, port), Handler)
        self.host = host

    # ------------------------------------------------------------------ #
    # counters
    # ------------------------------------------------------------------ #
    def _bump(self, counter: str, amount: int = 1) -> None:
        with self._counters_lock:
            self._counters[counter] += amount
        self.obs.metrics.inc(f"serve.{counter}", amount)

    def counters(self) -> Dict[str, int]:
        """Snapshot of the daemon's own counters."""
        with self._counters_lock:
            return dict(self._counters)

    @property
    def bound_port(self) -> int:
        """The actual TCP port (meaningful when constructed with port 0)."""
        return self.httpd.bound_port

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.bound_port}"

    # ------------------------------------------------------------------ #
    # worker pool
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:  # drain sentinel
                self._queue.task_done()
                return
            job, flight = item
            try:
                result = self.service.compile(job)
            except BaseException as exc:  # noqa: BLE001 - must settle the flight
                self.flights.finish(flight, error=exc)
                self._queue.task_done()
                continue
            self._bump("compiles_executed")
            self._bump("solves_executed", int(result.stats.get("allocator_solves", 0)))
            if not result.ok:
                self._bump("compile_failures")
            self.flights.finish(flight, value=result)
            self._queue.task_done()

    def _submit(self, job: CompileJob, fingerprint: str):
        """Admit one job: join an in-flight compile or queue a fresh one.

        Returns:
            ``(flight, coalesced)``.

        Raises:
            _QueueFull: The work queue is at its bound (only possible
                for would-be leaders; followers always join).
        """
        flight, leader = self.flights.begin(fingerprint)
        if not leader:
            self._bump("coalesced_hits")
            return flight, True
        try:
            self._queue.put_nowait((job, flight))
        except queue.Full:
            error = _QueueFull(f"work queue is full ({self._queue.maxsize} pending)")
            self.flights.finish(flight, error=error)
            self._bump("queue_rejections")
            raise error from None
        return flight, False

    # ------------------------------------------------------------------ #
    # request handling
    # ------------------------------------------------------------------ #
    def _parse_job(self, payload) -> CompileJob:
        """Wire payload → validated job (raises WireFormatError)."""
        job = job_from_wire(payload)
        if isinstance(job.model, str) and job.model not in set(list_models()):
            raise WireFormatError(
                f"unknown model {job.model!r}; registered models: "
                + ", ".join(list_models())
            )
        return job

    def _result_payload(self, result: CompileJobResult, coalesced: bool) -> Dict:
        """One job outcome as a wire document (success or compile failure)."""
        if result.ok:
            wire_program = program_to_wire(result.program)
            return {
                "wire_version": WIRE_VERSION,
                "ok": True,
                "coalesced": coalesced,
                "fingerprint": result.program.fingerprint(),
                "wall_seconds": result.wall_seconds,
                "stats": wire_program.get("stats") or {},
                "program": wire_program,
            }
        body = error_payload(
            "compile_failed",
            result.error or "compile failed",
            stats={k: v for k, v in result.stats.items() if isinstance(v, (int, float, str))},
        )
        body["ok"] = False
        body["coalesced"] = coalesced
        return body

    def _compile_one(self, payload) -> Dict:
        """The whole /v1/compile flow for one already-parsed job payload.

        Returns the response document; raises ``_QueueFull`` /
        ``CoalesceTimeout`` / ``WireFormatError`` for the transport layer
        to turn into status codes.
        """
        job = self._parse_job(payload)
        fingerprint = request_fingerprint(job, default_options=self.default_options)
        with self.obs.tracer.span(
            "serve.request", job=job.name, fingerprint=fingerprint[:12]
        ) as span:
            flight, coalesced = self._submit(job, fingerprint)
            result = self.flights.wait(flight, timeout=self.wait_timeout)
            span.set(coalesced=coalesced, ok=result.ok)
        return self._result_payload(result, coalesced)

    def _handle_post(self, handler: QuietHandler) -> None:
        if handler.path not in ("/v1/compile", "/v1/compile_batch"):
            respond_json(handler, 404, error_payload("not_found", handler.path))
            return
        if self._draining.is_set():
            respond_json(
                handler, 503, error_payload("draining", "daemon is shutting down")
            )
            return
        self._bump("requests")
        body, failure = read_body(handler)
        if failure is not None:
            status, message = failure
            self._bump("bad_requests")
            respond_json(handler, status, error_payload("bad_request", message))
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            self._bump("bad_requests")
            respond_json(
                handler, 400, error_payload("bad_request", f"invalid JSON body: {exc}")
            )
            return
        try:
            if handler.path == "/v1/compile":
                self._handle_compile(handler, payload)
            else:
                self._handle_compile_batch(handler, payload)
        except WireFormatError as exc:
            self._bump("bad_requests")
            respond_json(handler, 400, error_payload("bad_request", str(exc)))
        except _QueueFull as exc:
            respond_json(handler, 503, error_payload("queue_full", str(exc)))
        except CoalesceTimeout as exc:
            self._bump("wait_timeouts")
            respond_json(handler, 504, error_payload("timeout", str(exc)))

    def _handle_compile(self, handler: QuietHandler, payload) -> None:
        from .wire import check_version

        check_version(payload, "compile request")
        job_payload = payload.get("job", payload)
        document = self._compile_one(job_payload)
        respond_json(handler, 200 if document.get("ok") else 422, document)

    def _handle_compile_batch(self, handler: QuietHandler, payload) -> None:
        from .wire import check_version

        check_version(payload, "compile_batch request")
        jobs_payload = payload.get("jobs")
        if not isinstance(jobs_payload, list) or not jobs_payload:
            raise WireFormatError("'jobs' must be a non-empty array of compile jobs")
        # Admit every job first (identical jobs inside one batch coalesce
        # onto one flight too), then wait; a malformed or refused job
        # fails only its own slot, mirroring CompileService's isolation.
        admissions: List = []
        for job_payload in jobs_payload:
            try:
                job = self._parse_job(job_payload)
                fingerprint = request_fingerprint(job, default_options=self.default_options)
                flight, coalesced = self._submit(job, fingerprint)
                admissions.append(("flight", flight, coalesced))
            except WireFormatError as exc:
                self._bump("bad_requests")
                admissions.append(("error", error_payload("bad_request", str(exc)), False))
            except _QueueFull as exc:
                admissions.append(("error", error_payload("queue_full", str(exc)), False))
        results: List[Dict] = []
        for kind, value, coalesced in admissions:
            if kind == "error":
                value = dict(value)
                value["ok"] = False
                results.append(value)
                continue
            try:
                result = self.flights.wait(value, timeout=self.wait_timeout)
            except CoalesceTimeout as exc:
                self._bump("wait_timeouts")
                timeout_doc = error_payload("timeout", str(exc))
                timeout_doc["ok"] = False
                results.append(timeout_doc)
                continue
            results.append(self._result_payload(result, coalesced))
        respond_json(
            handler,
            200,
            {"wire_version": WIRE_VERSION, "results": results},
        )

    def _handle_get(self, handler: QuietHandler) -> None:
        if handler.path == "/healthz":
            respond_json(
                handler,
                200,
                {
                    "status": "draining" if self._draining.is_set() else "ok",
                    "role": "compile-daemon",
                    "queue_depth": self._queue.qsize(),
                },
            )
            return
        if handler.path == "/v1/cache/stats":
            respond_json(handler, 200, self.cache_stats_payload())
            return
        if handler.path == "/metrics":
            respond_text(handler, 200, self.render_metrics())
            return
        respond_json(handler, 404, error_payload("not_found", handler.path))

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def cache_stats_payload(self) -> Dict:
        """JSON document of every cache tier's counters."""
        payload: Dict = {
            "wire_version": WIRE_VERSION,
            "serve": self.counters(),
            "coalescing": {
                "flights_started": self.flights.started,
                "coalesced_waits": self.flights.coalesced,
                "in_flight": len(self.flights),
            },
        }
        cache = self.service.cache
        if cache is not None:
            payload["cache"] = cache.stats.snapshot().to_dict()
            if cache.store is not None:
                payload["disk"] = cache.store.stats.snapshot().to_dict()
            if cache.remote is not None:
                payload["remote"] = cache.remote.stats.snapshot().to_dict()
        pool_stats = self.service.solver_pool_stats()
        if pool_stats is not None:
            payload["solver_pool"] = pool_stats
        return payload

    def render_metrics(self) -> str:
        """Text exposition: daemon, coalescing and cache-tier counters."""
        lines = [
            f"serve_{name} {value}" for name, value in sorted(self.counters().items())
        ]
        lines.append(f"serve_queue_depth {self._queue.qsize()}")
        lines.append(f"serve_flights_started {self.flights.started}")
        lines.append(f"serve_coalesced_waits {self.flights.coalesced}")
        cache = self.service.cache
        if cache is not None:
            for name, value in sorted(cache.stats.snapshot().to_dict().items()):
                lines.append(f"cache_{name} {value:g}" if isinstance(value, float) else f"cache_{name} {value}")
            if cache.store is not None:
                for name, value in sorted(cache.store.stats.snapshot().to_dict().items()):
                    lines.append(f"cache_disk_{name} {value}")
            if cache.remote is not None:
                for name, value in sorted(cache.remote.stats.snapshot().to_dict().items()):
                    lines.append(f"cache_remote_{name} {value}")
        pool_stats = self.service.solver_pool_stats()
        if pool_stats is not None:
            for name, value in sorted(pool_stats.items()):
                rendered = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"solver_pool_{name} {rendered}")
        snapshot = self.obs.metrics.to_dict() if hasattr(self.obs.metrics, "to_dict") else {}
        for name, value in (snapshot.get("counters") or {}).items():
            lines.append(f"obs_{name.replace('.', '_')} {value}")
        return "\n".join(lines) + "\n"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        LOGGER.info(
            "compile daemon: %s (workers=%d, queue<=%d, cache=%s, remote=%s)",
            self.url,
            len(self._workers),
            self._queue.maxsize,
            self.service.cache_dir or "in-memory",
            getattr(self.service.remote_cache, "url", None) or "off",
        )
        self.httpd.serve_forever()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self, drain: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, optionally drain queued work, release the port.

        With ``drain`` (the default — what SIGTERM does via the CLI):
        new requests are refused with a structured 503, every job
        already admitted runs to completion and settles its waiters,
        the worker pool exits, and only then does the socket close.
        Idempotent.
        """
        self._draining.set()
        if drain:
            for _ in self._workers:
                self._queue.put(None)
            for thread in self._workers:
                thread.join(timeout=timeout)
        self.httpd.shutdown()
        self.httpd.server_close()
        self.service.close()
