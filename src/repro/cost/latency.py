"""Operator and segment latency model (Eq. 9 / Eq. 10 of the paper).

The latency of a CIM-mappable operator with ``Com`` compute-mode arrays
and ``Mem`` memory-mode arrays is

    L = OP / min(Com * OP_cim, (Mem * D_cim + D_main) * AI)

— the computation amount divided by the smaller of the compute rate the
allocated arrays provide and the computation rate the data supply can
sustain.  Within a segment, operators run in a pipelined fashion, so the
segment latency is the maximum operator latency (Eq. 9) plus a pipeline
fill term.

Two refinements keep the model physical without changing its character:

* memory-mode arrays only add bandwidth for data they can actually hold —
  allocating more arrays than the operator's working set occupies adds no
  supply (``useful_mem`` cap);
* an operator given fewer compute arrays than its stationary operand
  requires must time-multiplex weight loads, modelled as a proportional
  slowdown of its compute rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.transforms import ceil_div
from .arithmetic import OperatorProfile

#: Latency assigned to degenerate cases (no compute possible at all).
INFEASIBLE_LATENCY = float("inf")


def guard_infeasible(cycles: float) -> float:
    """Collapse NaN cycle counts to :data:`INFEASIBLE_LATENCY`.

    Infeasibility must always propagate as ``inf`` so that comparisons in
    the DP and the plan-selection logic stay well-ordered; a NaN (born of
    ``inf * 0`` or ``inf - inf`` arithmetic anywhere in a cost pipeline)
    would silently poison every ``min``/``max`` it reaches.
    """
    return INFEASIBLE_LATENCY if math.isnan(cycles) else cycles


@dataclass(frozen=True)
class OperatorAllocation:
    """Number of arrays, per mode, assigned to one operator.

    Attributes:
        compute_arrays: ``Com_Oi`` — arrays in compute mode (weight tiles
            plus any duplicated copies).
        memory_arrays: ``Mem_Oi`` — arrays in memory mode acting as the
            operator's input/output buffer.
    """

    compute_arrays: int
    memory_arrays: int

    def __post_init__(self) -> None:
        if self.compute_arrays < 0 or self.memory_arrays < 0:
            raise ValueError("array counts must be non-negative")

    @property
    def total_arrays(self) -> int:
        """Total arrays assigned to the operator."""
        return self.compute_arrays + self.memory_arrays


def compute_rate(
    profile: OperatorProfile,
    compute_arrays: int,
    hardware: DualModeHardwareAbstraction,
) -> float:
    """MACs per cycle the assigned compute arrays sustain (``C`` in Eq. 10).

    When fewer arrays than the stationary footprint are assigned the
    operator must reload weight tiles mid-execution; throughput degrades by
    the ratio of resident tiles to total tiles.
    """
    if compute_arrays <= 0:
        return 0.0
    rate = compute_arrays * hardware.op_cim
    required = profile.min_compute_arrays(hardware)
    if required > 0 and compute_arrays < required:
        rate *= compute_arrays / required
    return rate


def data_supply_times(
    profile: OperatorProfile,
    memory_arrays: int,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> Tuple[float, float]:
    """Off-chip and on-chip data-supply times (cycles) for one operator.

    The operator must move ``streamed_elements`` dynamic values.  Up to the
    native buffer plus the allocated memory-mode arrays' capacity of that
    working set lives on chip and is served at the on-chip rate
    ``D_main + Mem * D_cim``; the remainder crosses the off-chip link at
    ``d_extern``.  The two transfers overlap with each other (and with
    computation), so the slower one bounds the operator — this is the
    roofline realisation of Eq. 10's supply term: with no memory arrays and
    a working set far beyond the buffer it degenerates to
    ``OP / (D_main * AI)`` exactly as written in the paper.
    """
    streamed = profile.streamed_elements
    if streamed <= 0:
        return 0.0, 0.0
    # Inputs that do not fit in on-chip storage (native buffer plus
    # allocated memory-mode arrays) must be fetched across the off-chip
    # link while the operator runs.  Outputs drain through the on-chip path
    # — if they must ultimately spill, the inter-segment write-back term
    # charges that transfer, so it is not double-counted here.
    input_side = profile.streamed_input_elements + profile.extra_streamed_elements
    onchip_capacity = hardware.buffer_elements + memory_arrays * hardware.array_capacity_elements
    offchip_elements = max(0, input_side - onchip_capacity)
    onchip_elements = streamed - offchip_elements
    offchip_rate = hardware.d_extern * d_main_share
    onchip_rate = hardware.d_main * d_main_share + memory_arrays * hardware.d_cim
    # A zero rate only matters when there is data to move: moving nothing
    # takes no time even over a zero-bandwidth link (the rate==0, empty
    # transfer combination must not manufacture an infinity that later
    # turns into inf * 0 = NaN downstream).
    if offchip_elements <= 0:
        offchip_time = 0.0
    else:
        offchip_time = offchip_elements / offchip_rate if offchip_rate > 0 else INFEASIBLE_LATENCY
    if onchip_elements <= 0:
        onchip_time = 0.0
    else:
        onchip_time = onchip_elements / onchip_rate if onchip_rate > 0 else INFEASIBLE_LATENCY
    return offchip_time, onchip_time


def supply_rate(
    profile: OperatorProfile,
    memory_arrays: int,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> float:
    """MACs per cycle the data supply sustains (``M`` in Eq. 10)."""
    offchip_time, onchip_time = data_supply_times(profile, memory_arrays, hardware, d_main_share)
    supply_time = max(offchip_time, onchip_time)
    if supply_time <= 0:
        return float("inf")
    if math.isinf(supply_time):
        return 0.0  # data can never be supplied; avoid finite/inf -> 0.0 masking a NaN path
    return profile.macs / supply_time if profile.macs else profile.streamed_elements / supply_time


def operator_latency_cycles(
    profile: OperatorProfile,
    allocation: OperatorAllocation,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> float:
    """Latency (cycles) of one operator under an allocation — Eq. 10.

    ``L = max(OP / C, T_offchip, T_onchip)``: the computation time under
    the allocated compute arrays and the (overlapped) data-supply times,
    whichever is largest.
    """
    offchip_time, onchip_time = data_supply_times(
        profile, allocation.memory_arrays, hardware, d_main_share
    )
    supply_time = max(offchip_time, onchip_time)
    if profile.macs == 0:
        return guard_infeasible(supply_time)
    c_rate = compute_rate(profile, allocation.compute_arrays, hardware)
    if c_rate <= 0:
        return INFEASIBLE_LATENCY
    compute_time = profile.macs / c_rate
    return guard_infeasible(max(compute_time, supply_time))


def guard_infeasible_batch(cycles: np.ndarray) -> np.ndarray:
    """Vectorised :func:`guard_infeasible`: NaN entries become ``inf``."""
    return np.where(np.isnan(cycles), INFEASIBLE_LATENCY, cycles)


def compute_rate_batch(
    profile: OperatorProfile,
    compute_arrays: np.ndarray,
    hardware: DualModeHardwareAbstraction,
) -> np.ndarray:
    """Vectorised :func:`compute_rate` over an array of compute counts.

    Bit-identical to the scalar function for every element: the numpy
    float64 expressions mirror the scalar double expressions term by
    term, so IEEE-754 rounding is the same (ratcheted by the parity
    tests in ``tests/test_vectorized.py``).
    """
    com = np.asarray(compute_arrays, dtype=np.int64)
    com_f = com.astype(np.float64)
    rate = com_f * hardware.op_cim
    required = profile.min_compute_arrays(hardware)
    if required > 0:
        rate = np.where(com < required, rate * (com_f / float(required)), rate)
    return np.where(com <= 0, 0.0, rate)


def data_supply_times_batch(
    profile: OperatorProfile,
    memory_arrays: np.ndarray,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`data_supply_times` over an array of memory counts.

    Returns ``(offchip_times, onchip_times)`` with the same zero-element
    and zero-rate guards as the scalar path (moving nothing is free even
    over a zero-bandwidth link; moving something over one is ``inf``).
    """
    mem = np.asarray(memory_arrays, dtype=np.int64)
    streamed = profile.streamed_elements
    if streamed <= 0:
        zeros = np.zeros(mem.shape, dtype=np.float64)
        return zeros, zeros.copy()
    input_side = profile.streamed_input_elements + profile.extra_streamed_elements
    onchip_capacity = hardware.buffer_elements + mem * hardware.array_capacity_elements
    offchip_elements = np.maximum(0, input_side - onchip_capacity)
    onchip_elements = streamed - offchip_elements
    offchip_rate = hardware.d_extern * d_main_share
    onchip_rate = hardware.d_main * d_main_share + mem.astype(np.float64) * hardware.d_cim
    with np.errstate(divide="ignore", invalid="ignore"):
        if offchip_rate > 0:
            offchip_time = offchip_elements.astype(np.float64) / offchip_rate
        else:
            offchip_time = np.full(mem.shape, INFEASIBLE_LATENCY)
        offchip_time = np.where(offchip_elements <= 0, 0.0, offchip_time)
        onchip_time = np.where(
            onchip_elements <= 0,
            0.0,
            np.where(
                onchip_rate > 0,
                onchip_elements.astype(np.float64) / onchip_rate,
                INFEASIBLE_LATENCY,
            ),
        )
    return offchip_time, onchip_time


def operator_latency_cycles_batch(
    profile: OperatorProfile,
    compute_arrays: np.ndarray,
    memory_arrays: np.ndarray,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> np.ndarray:
    """Vectorised Eq. 10 over a grid of (compute, memory) allocations.

    ``compute_arrays`` and ``memory_arrays`` broadcast against each other
    (pass a column and a row to evaluate a full candidate grid in one
    call).  Every element equals the scalar
    :func:`operator_latency_cycles` for the same pair exactly — the
    candidate enumeration and the greedy allocator rely on that to keep
    compiled programs bit-identical to the scalar reference.
    """
    com = np.asarray(compute_arrays, dtype=np.int64)
    mem = np.asarray(memory_arrays, dtype=np.int64)
    com, mem = np.broadcast_arrays(com, mem)
    offchip_time, onchip_time = data_supply_times_batch(
        profile, mem, hardware, d_main_share
    )
    supply_time = np.maximum(offchip_time, onchip_time)
    if profile.macs == 0:
        return guard_infeasible_batch(supply_time)
    c_rate = compute_rate_batch(profile, com, hardware)
    with np.errstate(divide="ignore", invalid="ignore"):
        compute_time = np.where(
            c_rate > 0, float(profile.macs) / c_rate, INFEASIBLE_LATENCY
        )
    latency = np.where(
        c_rate <= 0, INFEASIBLE_LATENCY, np.maximum(compute_time, supply_time)
    )
    return guard_infeasible_batch(latency)


def operator_bound(
    profile: OperatorProfile,
    allocation: OperatorAllocation,
    hardware: DualModeHardwareAbstraction,
    d_main_share: float = 1.0,
) -> str:
    """Which resource bounds the operator: ``"compute"`` or ``"memory"``."""
    offchip_time, onchip_time = data_supply_times(
        profile, allocation.memory_arrays, hardware, d_main_share
    )
    supply_time = max(offchip_time, onchip_time)
    c_rate = compute_rate(profile, allocation.compute_arrays, hardware)
    compute_time = profile.macs / c_rate if c_rate > 0 else INFEASIBLE_LATENCY
    return "compute" if compute_time >= supply_time else "memory"


def pipeline_fill_cycles(
    profiles: Iterable[OperatorProfile],
    hardware: DualModeHardwareAbstraction,
) -> float:
    """First-result latency before the intra-segment pipeline is full.

    Operators inside a segment form a dataflow pipeline; before the
    steady state each stage must produce its first tile.  We charge one
    array activation per stage, a small constant that keeps single-operator
    and multi-operator segments comparable.
    """
    stages = sum(1 for _ in profiles)
    return stages * hardware.compute_latency_cycles


def segment_latency_cycles(
    profiles: Mapping[str, OperatorProfile],
    allocations: Mapping[str, OperatorAllocation],
    hardware: DualModeHardwareAbstraction,
    pipelined: bool = True,
    d_main_share: float = 1.0,
) -> float:
    """Intra-segment latency ``T_intra`` under a resource allocation.

    Args:
        profiles: Profiles of the segment's operators.
        allocations: Allocation for every operator in ``profiles``.
        hardware: Target hardware abstraction.
        pipelined: When True (the paper's scheduling strategy) the segment
            latency is the maximum operator latency plus the pipeline fill
            time; when False operators execute serially and latencies add.
        d_main_share: Fraction of the main-memory bandwidth available to
            each operator (1.0 reproduces the paper's model).

    Raises:
        KeyError: If an operator has no allocation entry.
    """
    latencies: List[float] = []
    for name, profile in profiles.items():
        allocation = allocations[name]
        latencies.append(operator_latency_cycles(profile, allocation, hardware, d_main_share))
    if not latencies:
        return 0.0
    if pipelined:
        return guard_infeasible(max(latencies) + pipeline_fill_cycles(profiles.values(), hardware))
    return guard_infeasible(sum(latencies))


def minimum_latency_all_compute(
    profile: OperatorProfile,
    total_arrays: int,
    hardware: DualModeHardwareAbstraction,
) -> float:
    """Best achievable latency when every array is in compute mode.

    Used by the baselines and by the mode-ratio sweep (Fig. 1(b) / Fig. 5):
    the operator receives all arrays as compute resources (weight
    duplication) and data is supplied from main memory only.
    """
    allocation = OperatorAllocation(compute_arrays=total_arrays, memory_arrays=0)
    return operator_latency_cycles(profile, allocation, hardware)


def best_split_latency(
    profile: OperatorProfile,
    total_arrays: int,
    hardware: DualModeHardwareAbstraction,
) -> Tuple[float, OperatorAllocation]:
    """Best latency and allocation for a single operator given a budget.

    Sweeps the compute/memory split of ``total_arrays`` arrays.  Used by
    the motivation sweeps and as a reference point for the MIP allocator.
    """
    best = (INFEASIBLE_LATENCY, OperatorAllocation(0, 0))
    min_compute = min(profile.min_compute_arrays(hardware), total_arrays)
    for compute_arrays in range(max(min_compute, 1), total_arrays + 1):
        memory_arrays = total_arrays - compute_arrays
        allocation = OperatorAllocation(compute_arrays, memory_arrays)
        latency = operator_latency_cycles(profile, allocation, hardware)
        if latency < best[0]:
            best = (latency, allocation)
    return best
