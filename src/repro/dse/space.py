"""Design-space declaration for dual-mode hardware/allocation exploration.

A :class:`DesignSpace` is the declarative input of the DSE engine: it
crosses *axes* — models, workloads, hardware-parameter overrides of a base
:class:`~repro.hardware.deha.DualModeHardwareAbstraction`, and compiler
options — into a grid of :class:`DesignPoint` candidates.  Each point is a
fully materialised (model, workload, hardware, options) tuple the compile
pipeline can evaluate, plus the coordinate vector that locates it in the
grid (which is what neighbourhood-based strategies navigate).

Identity is taken seriously because everything downstream keys on it:

* :attr:`DesignPoint.key` is a stable SHA-256-derived digest of the
  point's model, workload, hardware parameters and solve-relevant options
  — identical across processes and interpreter restarts, so a resumable
  run directory written by one process lets any later process skip the
  points it already evaluated;
* :meth:`DesignSpace.fingerprint` digests the whole space declaration, so
  a run directory can record which space produced it (resuming with an
  *overlapping* but different space is allowed — completed points are
  matched by their point keys, not by the space).

Example::

    space = DesignSpace(
        models=["resnet18"],
        base_hardware="dynaplasia",
        hardware_axes={"num_arrays": [64, 96, 128]},
        option_axes={"allow_memory_mode": [True, False]},
    )
    for point in space.points():
        print(point.describe())
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, fields as dataclass_fields, replace
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.compiler import RUNTIME_OPTION_FIELDS, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import get_preset
from ..ir.graph import Graph
from ..models.workload import (
    Phase,
    Workload,
    workload_from_payload as _workload_from_payload,
    workload_to_payload as _workload_to_payload,
)

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "ParameterAxis",
    "options_signature",
    "workload_payload",
]

#: Compiler-option fields a design point may legally vary.  ``generate_code``
#: is deliberately excluded: it changes what artefacts a compile emits, not
#: the plan or its cost, so two points differing only in it are identical
#: design candidates.  The runtime fields (``solve_jobs`` and friends —
#: see :data:`repro.core.compiler.RUNTIME_OPTION_FIELDS`) are excluded for
#: the same reason: they steer how fast a compile runs, never what plan it
#: produces, so they cannot distinguish design points.
OPTION_AXIS_FIELDS = tuple(
    f.name
    for f in dataclass_fields(CompilerOptions)
    if f.name != "generate_code" and f.name not in RUNTIME_OPTION_FIELDS
)

#: Hardware fields a design point may legally vary (everything the DEHA
#: serialises except its display name).
HARDWARE_AXIS_FIELDS = tuple(
    f.name for f in dataclass_fields(DualModeHardwareAbstraction) if f.name != "name"
)


def options_signature(options: CompilerOptions) -> Tuple:
    """Solve-relevant identity of compiler options (``generate_code`` excluded).

    ``fixed_mode_fallback`` is canonicalised to ``False`` when memory
    mode is off: the compiler ignores the flag there (the primary plan
    already is fixed-mode), so the two spellings are one configuration
    and must share point keys, structural-dedup groups and resume
    records.
    """
    values = {name: getattr(options, name) for name in OPTION_AXIS_FIELDS}
    if not values.get("allow_memory_mode", True):
        values["fixed_mode_fallback"] = False
    return tuple(values[name] for name in OPTION_AXIS_FIELDS)


def workload_payload(workload: Workload) -> Dict:
    """Canonical JSON-compatible rendering of a workload.

    Thin alias of :func:`repro.models.workload.workload_to_payload` —
    the trace format (:mod:`repro.sim.traces`) shares the same
    serialisation, so workloads round-trip identically between DSE run
    directories and request traces.
    """
    return _workload_to_payload(workload)


def workload_from_payload(payload: Mapping) -> Workload:
    """Rebuild a workload from :func:`workload_payload` output."""
    return _workload_from_payload(payload)


def _digest(payload) -> str:
    """Short stable digest of a JSON-compatible payload."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def _coerce_axis_value(value):
    """Convert numpy scalars to plain Python values.

    Axis values flow into JSON digests (point keys, space fingerprints,
    run metadata), and ``np.arange``/``np.array`` sweeps are the natural
    input in this repo — an ``int64`` must not crash ``fingerprint()``
    three calls later with an opaque serialisation error.
    """
    if isinstance(value, (str, bytes, bool, int, float)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            return value
    return value


@dataclass(frozen=True)
class ParameterAxis:
    """One explored dimension of a design space.

    Attributes:
        name: Axis name — ``"model"``, ``"workload"``, a DEHA field name
            (e.g. ``"num_arrays"``) or a compiler-option field name
            (e.g. ``"allow_memory_mode"``).
        values: The candidate values, in declaration order (never sorted —
            neighbourhood strategies step along the declared order).
        kind: ``"model"`` / ``"workload"`` / ``"hardware"`` / ``"option"``.
    """

    name: str
    values: Tuple
    kind: str

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"axis {self.name!r} has no values")


@dataclass
class DesignPoint:
    """One fully materialised design candidate.

    Attributes:
        model: Registered model name or a prebuilt graph.
        workload: Workload the model is built for (ignored for graphs).
        hardware: The candidate chip (base preset + axis overrides).
        options: Compiler options of the candidate.
        coords: Axis-index vector locating the point in its space.
        model_digest: Structural digest standing in for graph-object
            models in the point key (None for registered names).
    """

    model: Union[str, Graph]
    workload: Workload
    hardware: DualModeHardwareAbstraction
    options: CompilerOptions
    coords: Tuple[int, ...] = ()
    model_digest: Optional[str] = None

    @property
    def model_name(self) -> str:
        """Display name of the point's model."""
        return self.model if isinstance(self.model, str) else self.model.name

    @property
    def key(self) -> str:
        """Stable cross-process identity of the point.

        Two points with the same key compile to bit-identical programs
        (same model structure, workload, hardware parameters and
        solve-relevant options), so a resumable run may skip a point
        whose key already appears in its results file.
        """
        model_id = self.model if isinstance(self.model, str) else (
            self.model_digest or f"graph:{self.model.name}"
        )
        return _digest(
            {
                "model": model_id,
                "workload": workload_payload(self.workload),
                "hardware": self.hardware.to_dict(),
                "options": list(options_signature(self.options)),
            }
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        mode = "dual" if self.options.allow_memory_mode else "fixed"
        return (
            f"{self.model_name} [{self.workload.describe()}] on "
            f"{self.hardware.name}/{self.hardware.num_arrays} arrays ({mode})"
        )


class DesignSpace:
    """A grid of design candidates over models, workloads, hardware and options.

    The axis order is fixed — model, workload, hardware axes (declaration
    order), option axes (declaration order) — and :meth:`points` iterates
    the grid lexicographically in that order, so a ``grid`` strategy is
    deterministic and a run directory's point order is reproducible.

    Args:
        models: Registered model names and/or prebuilt graphs (non-empty).
        base_hardware: Preset name or DEHA instance every hardware axis
            overrides.
        workloads: Workloads to cross with the models (default: one
            default :class:`Workload`).
        hardware_axes: Mapping of DEHA field name -> candidate values.
        option_axes: Mapping of :class:`CompilerOptions` field name ->
            candidate values.
        base_options: Options every option axis overrides (default:
            paper defaults with code generation off).

    Raises:
        ValueError: Empty model/workload/axis lists or unknown axis names.
    """

    def __init__(
        self,
        models: Sequence[Union[str, Graph]],
        base_hardware: Union[str, DualModeHardwareAbstraction] = "dynaplasia",
        workloads: Optional[Sequence[Workload]] = None,
        hardware_axes: Optional[Mapping[str, Sequence]] = None,
        option_axes: Optional[Mapping[str, Sequence]] = None,
        base_options: Optional[CompilerOptions] = None,
    ) -> None:
        models = list(models)
        if not models:
            raise ValueError("DesignSpace requires at least one model")
        workloads = list(workloads) if workloads is not None else [Workload()]
        if not workloads:
            raise ValueError("DesignSpace requires at least one workload")
        if isinstance(base_hardware, str):
            base_hardware = get_preset(base_hardware)
        self.base_hardware = base_hardware
        self.base_options = base_options or CompilerOptions(generate_code=False)
        self.models = models
        self.workloads = workloads

        axes: List[ParameterAxis] = [
            ParameterAxis("model", tuple(range(len(models))), "model"),
            ParameterAxis("workload", tuple(range(len(workloads))), "workload"),
        ]
        for name, values in (hardware_axes or {}).items():
            if name not in HARDWARE_AXIS_FIELDS:
                raise ValueError(
                    f"unknown hardware axis {name!r}; known fields: "
                    f"{', '.join(HARDWARE_AXIS_FIELDS)}"
                )
            values = tuple(_coerce_axis_value(v) for v in values)
            axes.append(ParameterAxis(name, values, "hardware"))
        for name, values in (option_axes or {}).items():
            if name not in OPTION_AXIS_FIELDS:
                raise ValueError(
                    f"unknown option axis {name!r}; known fields: "
                    f"{', '.join(OPTION_AXIS_FIELDS)}"
                )
            values = tuple(_coerce_axis_value(v) for v in values)
            axes.append(ParameterAxis(name, values, "option"))
        self.axes: Tuple[ParameterAxis, ...] = tuple(axes)

        # Hardware instances are memoised per override combination: the
        # DEHA fingerprint is memoised per instance, so sharing instances
        # across points keeps planner fingerprinting O(#hardware configs).
        self._hardware_memo: Dict[Tuple[int, ...], DualModeHardwareAbstraction] = {}
        self._options_memo: Dict[Tuple[int, ...], CompilerOptions] = {}
        # Graph-object models get a structural digest once (their name is
        # not a trustworthy identity; see DesignPoint.key).
        self._model_digests: Dict[int, str] = {}
        for index, model in enumerate(models):
            if isinstance(model, Graph):
                self._model_digests[index] = _graph_digest(model)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        """Number of points in the grid."""
        total = 1
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def coordinates(self) -> Iterator[Tuple[int, ...]]:
        """All coordinate vectors in lexicographic order."""
        ranges = [range(len(axis.values)) for axis in self.axes]
        return iter(itertools.product(*ranges))

    def neighbors(self, coords: Sequence[int]) -> List[Tuple[int, ...]]:
        """Coordinates differing from ``coords`` by one step on one axis."""
        coords = tuple(coords)
        result: List[Tuple[int, ...]] = []
        for axis_index, axis in enumerate(self.axes):
            for delta in (-1, 1):
                value = coords[axis_index] + delta
                if 0 <= value < len(axis.values):
                    neighbor = list(coords)
                    neighbor[axis_index] = value
                    result.append(tuple(neighbor))
        return result

    # ------------------------------------------------------------------ #
    # materialisation
    # ------------------------------------------------------------------ #
    def point_at(self, coords: Sequence[int]) -> DesignPoint:
        """Materialise the design point at a coordinate vector."""
        coords = tuple(coords)
        if len(coords) != len(self.axes):
            raise ValueError(
                f"expected {len(self.axes)} coordinates, got {len(coords)}"
            )
        model_index = coords[0]
        workload_index = coords[1]
        hardware_coords = []
        hardware_overrides: Dict[str, object] = {}
        option_overrides: Dict[str, object] = {}
        option_coords = []
        for axis, value_index in zip(self.axes[2:], coords[2:]):
            value = axis.values[value_index]
            if axis.kind == "hardware":
                hardware_overrides[axis.name] = value
                hardware_coords.append(value_index)
            else:
                option_overrides[axis.name] = value
                option_coords.append(value_index)
        hw_key = tuple(hardware_coords)
        hardware = self._hardware_memo.get(hw_key)
        if hardware is None:
            hardware = (
                self.base_hardware.with_overrides(**hardware_overrides)
                if hardware_overrides
                else self.base_hardware
            )
            self._hardware_memo[hw_key] = hardware
        opt_key = tuple(option_coords)
        options = self._options_memo.get(opt_key)
        if options is None:
            options = (
                replace(self.base_options, **option_overrides)
                if option_overrides
                else self.base_options
            )
            self._options_memo[opt_key] = options
        return DesignPoint(
            model=self.models[model_index],
            workload=self.workloads[workload_index],
            hardware=hardware,
            options=options,
            coords=coords,
            model_digest=self._model_digests.get(model_index),
        )

    def points(self) -> Iterator[DesignPoint]:
        """All design points in lexicographic coordinate order."""
        for coords in self.coordinates():
            yield self.point_at(coords)

    # ------------------------------------------------------------------ #
    # identity / persistence
    # ------------------------------------------------------------------ #
    def to_spec(self) -> Dict:
        """JSON-compatible declaration of the space (for run directories).

        Graph-object models are recorded by structural digest; such a
        spec documents the run but cannot rebuild the space (resume still
        works — completed points are matched by point key, not by spec).
        """
        return {
            "models": [
                model if isinstance(model, str) else {
                    "graph": model.name,
                    "digest": self._model_digests[index],
                }
                for index, model in enumerate(self.models)
            ],
            "base_hardware": self.base_hardware.to_dict(),
            "workloads": [workload_payload(w) for w in self.workloads],
            "axes": [
                {"name": axis.name, "kind": axis.kind, "values": list(axis.values)}
                for axis in self.axes
                if axis.kind in ("hardware", "option")
            ],
            "base_options": {
                name: getattr(self.base_options, name) for name in OPTION_AXIS_FIELDS
            },
        }

    @classmethod
    def from_spec(cls, spec: Mapping) -> "DesignSpace":
        """Rebuild a space from :meth:`to_spec` output (name-based models only)."""
        models = []
        for model in spec["models"]:
            if not isinstance(model, str):
                raise ValueError(
                    "cannot rebuild a DesignSpace containing graph-object models "
                    f"(found {model!r}); re-declare the space in code"
                )
            models.append(model)
        hardware_axes = {}
        option_axes = {}
        for axis in spec.get("axes", []):
            target = hardware_axes if axis["kind"] == "hardware" else option_axes
            target[axis["name"]] = axis["values"]
        return cls(
            models=models,
            base_hardware=DualModeHardwareAbstraction.from_dict(spec["base_hardware"]),
            workloads=[workload_from_payload(w) for w in spec["workloads"]],
            hardware_axes=hardware_axes,
            option_axes=option_axes,
            base_options=replace(
                CompilerOptions(generate_code=False), **spec.get("base_options", {})
            ),
        )

    def fingerprint(self) -> str:
        """Stable digest of the whole space declaration (memoised —
        the declaration is immutable after construction)."""
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            cached = _digest(self.to_spec())
            self._fingerprint = cached
        return cached

    def describe(self) -> str:
        """One-line human-readable summary of the space."""
        parts = [f"{len(self.models)} model(s)", f"{len(self.workloads)} workload(s)"]
        for axis in self.axes:
            if axis.kind in ("hardware", "option"):
                parts.append(f"{axis.name} x {len(axis.values)}")
        return f"{self.size} points ({', '.join(parts)})"


def _graph_digest(graph: Graph) -> str:
    """Structural digest of a prebuilt graph (profile signatures).

    Used as the model component of point keys when the model is a graph
    object rather than a registry name, so identically named but
    structurally different graphs never share a point key.
    """
    from ..core.cache import segment_signature
    from ..cost.arithmetic import profile_graph

    signature = segment_signature(profile_graph(graph))
    return _digest([list(row) for row in signature])
