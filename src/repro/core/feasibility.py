"""Shared chip-fit predicates: one source of truth for "does it fit".

Feasibility used to be decided in three places with three idioms: the
module-level ``segment_fits`` / ``minimum_compute_arrays`` helpers in
:mod:`repro.core.allocation`, an inlined footprint comparison inside the
segmentation DP, and (implicitly) the candidate enumeration of the MILP
allocator.  The rung-0 analytical evaluation tier needs the *same*
answer without running any of those code paths — an analytical estimate
that disagreed with the allocator about feasibility would prune
compilable design points (or promote doomed ones) during multi-fidelity
search.

:class:`FeasibilityModel` centralises the predicates.  The allocators
and the segmenter consult it for segment-level fit; the analytical tier
consults it for unit-level fit, which is exactly the *necessary*
condition for compilability:

* a flattened unit whose minimum compute footprint exceeds the chip can
  belong to no feasible segment (footprints are additive, so every
  window containing it is infeasible, and the single-segment fallback
  fails on it too) — the compiler is guaranteed to raise;
* conversely, if every unit fits on its own, the one-segment-per-unit
  plan exists, so the compiler is guaranteed to succeed.

That equivalence is what makes the analytical tier's feasibility verdict
trustworthy: it never reports a compilable point infeasible and never
reports an uncompilable point feasible (asserted by the calibration
suite in ``tests/test_eval.py``).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..cost.arithmetic import OperatorProfile
from ..hardware.deha import DualModeHardwareAbstraction

__all__ = ["FeasibilityModel"]


class FeasibilityModel:
    """Chip-fit predicates for one hardware target.

    All predicates are phrased over the *minimum compute footprint* — the
    fewest compute-mode arrays that hold an operator's stationary
    operand (at least one array per scheduled operator).  Memory-mode
    arrays never relax feasibility: the minimum footprint uses none, so
    the predicates are identical for dual- and fixed-mode compilation.

    Args:
        hardware: The target dual-mode hardware abstraction.
    """

    def __init__(self, hardware: DualModeHardwareAbstraction) -> None:
        self.hardware = hardware

    # ------------------------------------------------------------------ #
    # per-operator floors
    # ------------------------------------------------------------------ #
    def operator_floor(self, profile: OperatorProfile) -> int:
        """Fewest arrays one scheduled operator occupies (>= 1)."""
        return max(1, profile.min_compute_arrays(self.hardware))

    def unit_fits(self, profile: OperatorProfile) -> bool:
        """Whether one flattened unit can be scheduled on the chip at all."""
        return self.operator_floor(profile) <= self.hardware.num_arrays

    # ------------------------------------------------------------------ #
    # segment-level predicates (what the allocators ask)
    # ------------------------------------------------------------------ #
    def minimum_compute_arrays(
        self, profiles: Mapping[str, OperatorProfile]
    ) -> int:
        """Fewest compute arrays a segment needs to hold its operands."""
        return sum(self.operator_floor(profile) for profile in profiles.values())

    def segment_fits(self, profiles: Mapping[str, OperatorProfile]) -> bool:
        """Whether a segment's minimum footprint fits the array budget."""
        return self.minimum_compute_arrays(profiles) <= self.hardware.num_arrays

    # ------------------------------------------------------------------ #
    # graph-level predicate (what the analytical tier asks)
    # ------------------------------------------------------------------ #
    def first_unfit(
        self, profiles: Mapping[str, OperatorProfile]
    ) -> Optional[str]:
        """Name of the first operator that cannot fit the chip alone.

        ``None`` means every unit fits individually — the necessary and
        (thanks to the one-segment-per-unit fallback plan) sufficient
        condition for a feasible compilation of the flattened sequence.
        """
        for name, profile in profiles.items():
            if not self.unit_fits(profile):
                return name
        return None

    def units_fit(self, profiles: Iterable[OperatorProfile]) -> bool:
        """Whether every flattened unit fits the chip individually."""
        return all(self.unit_fits(profile) for profile in profiles)
