"""Figure 16: effectiveness across workload scales (sequence length, batch).

Two trends from the paper are checked: the speedup of CMSwitch over
CIM-MLC shrinks as the sequence length grows (arithmetic intensity rises
and the workload becomes compute-bound), and the average fraction of
arrays in memory mode falls with the sequence length.
"""

import pytest

from conftest import record

from repro.experiments import memory_ratio_trend, run_workload_scale
from repro.experiments.workload_scale import render_report


@pytest.mark.benchmark(group="fig16")
def test_fig16_workload_scale(benchmark, chip, grids):
    """Speedup and memory-array ratio across sequence lengths (Fig. 16)."""
    models = ("bert", "llama2-7b", "opt-6.7b", "opt-13b") if len(
        grids["batch_sizes_fig16"]
    ) > 1 else ("bert", "llama2-7b")

    def run():
        return run_workload_scale(
            hardware=chip,
            models=models,
            batch_sizes=grids["batch_sizes_fig16"],
            sequence_lengths=grids["sequence_lengths"],
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))

    # CMSwitch never loses to CIM-MLC anywhere on the grid.
    assert all(row["speedup_vs_cim-mlc"] >= 0.99 for row in rows)

    batch = grids["batch_sizes_fig16"][0]
    lengths = sorted(grids["sequence_lengths"])
    for model in models:
        by_len = {
            row["seq_len"]: row["speedup_vs_cim-mlc"]
            for row in rows
            if row["model"] == model and row["batch_size"] == batch
        }
        # At the longest sequence the advantage has converged: the speedup
        # there is no larger than the best speedup seen at shorter lengths
        # (the paper reports BERT reaching parity with CIM-MLC beyond 512).
        assert by_len[lengths[-1]] <= max(by_len[l] for l in lengths[:-1]) + 0.02

    assert all(0.0 <= r <= 1.0 for r in memory_ratio_trend(rows, "bert", batch))
    by_len_bert = {
        row["seq_len"]: row["speedup_vs_cim-mlc"]
        for row in rows
        if row["model"] == "bert" and row["batch_size"] == batch
    }
    assert by_len_bert[lengths[-1]] <= 1.1
