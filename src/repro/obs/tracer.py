"""Hierarchical span tracing (zero-dependency, thread-safe).

A :class:`Tracer` records *spans* — named, attributed intervals on an
injectable :class:`~repro.core.clock.Clock` — nested through ordinary
``with`` blocks::

    with tracer.span("segment", graph="bert"):
        with tracer.span("allocate", segment=3) as handle:
            ...
            handle.set(solver="milp")

Nesting is per-thread: each thread keeps its own stack of active spans,
so concurrent ``CompileService`` workers produce independent well-formed
sub-forests that merge on :meth:`Tracer.spans`.  Cross-thread edges
(a pool worker's job span hanging under the batch span opened on the
main thread) are made explicit with ``parent=``.  Process-pool workers
build their own tracer, ship the finished :class:`Span` list back with
the job result (spans are plain picklable dataclasses), and the parent
re-roots them with :meth:`Tracer.adopt`.

The disabled path is the null-object :data:`NULL_TRACER`: every call is
a constant-time no-op returning shared singletons, so instrumented code
never branches on "is tracing on?" and the cold-compile bench stays
within the ratchet's tolerance with telemetry compiled in.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..core.clock import Clock, SYSTEM_CLOCK

__all__ = ["Span", "SpanHandle", "Tracer", "NullTracer", "NULL_TRACER"]


@dataclass
class Span:
    """One finished (or instant) interval on a tracer's clock.

    Plain data, no behaviour beyond serialisation: spans cross process
    boundaries by pickling (process-backend workers ship them home with
    job results), so everything here must stay picklable and equality
    must be bit-exact for the round-trip tests.

    Attributes:
        name: What the interval covers (``"segment"``, ``"compile"``).
        start: Start time in seconds on the recording tracer's clock.
        end: End time; equals ``start`` for instant events.
        span_id: Id unique within the recording tracer.
        parent_id: Enclosing span's id, or None for a root.
        thread: Label of the recording thread (name + ident).
        process: Label of the recording process (``pid-<n>``).
        attrs: Small JSON-compatible annotation dict.
        instant: True for point events (:meth:`Tracer.event`).
    """

    name: str
    start: float
    end: float
    span_id: int
    parent_id: Optional[int]
    thread: str
    process: str
    attrs: Dict[str, object] = field(default_factory=dict)
    instant: bool = False

    @property
    def duration(self) -> float:
        """Length in seconds (0.0 for instants)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible form (the JSONL exporter's row)."""
        return {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "thread": self.thread,
            "process": self.process,
            "attrs": dict(self.attrs),
            "instant": self.instant,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            start=payload["start"],
            end=payload["end"],
            span_id=payload["span_id"],
            parent_id=payload["parent_id"],
            thread=payload["thread"],
            process=payload["process"],
            attrs=dict(payload.get("attrs", {})),
            instant=bool(payload.get("instant", False)),
        )


ParentLike = Union[None, int, Span, "SpanHandle"]


class SpanHandle:
    """Context manager for one active span.

    Returned by :meth:`Tracer.span`; entering starts the clock and
    pushes the span onto the calling thread's stack, exiting records the
    finished :class:`Span`.  :meth:`set` attaches attributes discovered
    mid-flight (the solver that won, the cache tier that hit).
    """

    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, parent: ParentLike, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = 0  # allocated on __enter__
        self.parent_id = _resolve_parent(parent)
        self.start = 0.0

    def set(self, **attrs: object) -> "SpanHandle":
        """Merge attributes into the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "SpanHandle":
        self._tracer._begin(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self)
        return False


def _resolve_parent(parent: ParentLike) -> Optional[int]:
    """Accept a handle, a finished span, a raw id, or None."""
    if parent is None:
        return None
    if isinstance(parent, int):
        return parent
    return parent.span_id


class Tracer:
    """Collects spans from any number of threads.

    Each thread appends to its own buffer (registered once under the
    tracer lock, then appended to lock-free — list.append is atomic
    under the GIL); :meth:`spans` / :meth:`flush` merge the buffers
    into one start-ordered list.

    Args:
        clock: Time source; spans use ``clock.perf`` (monotonic).  Tests
            inject :class:`~repro.core.clock.ManualClock` to make
            durations deterministic.
        process: Label stamped on every span; defaults to ``pid-<os pid>``
            so adopted worker spans stay distinguishable.
    """

    enabled = True

    def __init__(self, clock: Clock = SYSTEM_CLOCK, process: Optional[str] = None) -> None:
        self.clock = clock
        self.process = process if process is not None else f"pid-{os.getpid()}"
        self._lock = threading.Lock()
        # A list, not an ident-keyed dict: the OS reuses thread idents
        # after a thread exits, and keying by ident would silently
        # overwrite (and lose) a finished thread's buffer.
        self._buffers: List[List[Span]] = []
        self._local = threading.local()
        self._next_id = 1

    # ------------------------------------------------------------------ #
    # recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, parent: ParentLike = None, **attrs: object) -> SpanHandle:
        """Open a span; use as a context manager.

        ``parent`` overrides the thread-stack parent for cross-thread
        edges (pool workers nesting under a batch span).
        """
        return SpanHandle(self, name, parent, attrs)

    def event(self, name: str, parent: ParentLike = None, **attrs: object) -> Span:
        """Record an instant (zero-duration) event at the current time."""
        now = self.clock.perf()
        span = Span(
            name=name,
            start=now,
            end=now,
            span_id=self._allocate_id(),
            parent_id=_resolve_parent(parent) if parent is not None else self._stack_top(),
            thread=_thread_label(),
            process=self.process,
            attrs=dict(attrs),
            instant=True,
        )
        self._buffer().append(span)
        return span

    def _begin(self, handle: SpanHandle) -> None:
        handle.span_id = self._allocate_id()
        stack = self._stack()
        if handle.parent_id is None and stack:
            handle.parent_id = stack[-1]
        stack.append(handle.span_id)
        handle.start = self.clock.perf()

    def _finish(self, handle: SpanHandle) -> None:
        end = self.clock.perf()
        stack = self._stack()
        if stack and stack[-1] == handle.span_id:
            stack.pop()
        elif handle.span_id in stack:  # tolerate mis-nested exits
            stack.remove(handle.span_id)
        self._buffer().append(
            Span(
                name=handle.name,
                start=handle.start,
                end=end,
                span_id=handle.span_id,
                parent_id=handle.parent_id,
                thread=_thread_label(),
                process=self.process,
                attrs=handle.attrs,
                instant=False,
            )
        )

    def adopt(
        self,
        spans: Sequence[Span],
        parent: ParentLike = None,
        process: Optional[str] = None,
    ) -> List[Span]:
        """Graft spans recorded by another tracer into this one.

        Ids are re-allocated (the shipper's id space is its own), parent
        links inside the shipped set are remapped, and roots are
        re-rooted under ``parent``.  Used by the process backend: the
        batch tracer adopts each worker's flushed spans under the batch
        span.  Returns the adopted copies.
        """
        parent_id = _resolve_parent(parent)
        mapping: Dict[int, int] = {}
        for span in spans:
            mapping[span.span_id] = self._allocate_id()
        adopted: List[Span] = []
        for span in spans:
            adopted.append(
                Span(
                    name=span.name,
                    start=span.start,
                    end=span.end,
                    span_id=mapping[span.span_id],
                    parent_id=mapping.get(span.parent_id, parent_id),
                    thread=span.thread,
                    process=span.process if process is None else process,
                    attrs=dict(span.attrs),
                    instant=span.instant,
                )
            )
        buffer = self._buffer()
        buffer.extend(adopted)
        return adopted

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        """Merged snapshot of every thread's buffer, start-ordered."""
        with self._lock:
            merged = [span for buffer in self._buffers for span in buffer]
        merged.sort(key=lambda s: (s.start, s.span_id))
        return merged

    def flush(self) -> List[Span]:
        """Merged snapshot, clearing all buffers."""
        with self._lock:
            merged = [span for buffer in self._buffers for span in buffer]
            for buffer in self._buffers:
                del buffer[:]
        merged.sort(key=lambda s: (s.start, s.span_id))
        return merged

    def clear(self) -> None:
        """Drop everything recorded so far."""
        with self._lock:
            for buffer in self._buffers:
                del buffer[:]

    # ------------------------------------------------------------------ #
    # per-thread state
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _stack_top(self) -> Optional[int]:
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def current_span_id(self) -> Optional[int]:
        """Id of the calling thread's innermost open span (None at root).

        Capture this before handing work to another thread and pass it as
        that work's ``parent=`` — the explicit cross-thread edge the
        solver pool uses to hang worker-side ``allocator.solve`` spans
        under the pass span that requested them.
        """
        return self._stack_top()

    def _buffer(self) -> List[Span]:
        buffer = getattr(self._local, "buffer", None)
        if buffer is None:
            buffer = self._local.buffer = []
            with self._lock:
                self._buffers.append(buffer)
        return buffer

    def _allocate_id(self) -> int:
        with self._lock:
            allocated = self._next_id
            self._next_id += 1
        return allocated


def _thread_label() -> str:
    thread = threading.current_thread()
    return f"{thread.name}@{thread.ident}"


class _NullHandle:
    """Shared no-op span handle — the whole disabled-tracer hot path."""

    __slots__ = ()

    def set(self, **attrs: object) -> "_NullHandle":
        return self

    def __enter__(self) -> "_NullHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_HANDLE = _NullHandle()


class NullTracer:
    """Disabled tracer: every call a constant-time no-op.

    Instrumentation sites call straight through without checking a
    flag; the only cost of a disabled span is one method call and the
    kwargs dict the call site builds (measured <2% on the cold bench).
    """

    enabled = False
    process = "null"

    def span(self, name: str, parent: ParentLike = None, **attrs: object) -> _NullHandle:
        return _NULL_HANDLE

    def event(self, name: str, parent: ParentLike = None, **attrs: object) -> None:
        return None

    def current_span_id(self) -> None:
        return None

    def adopt(
        self,
        spans: Sequence[Span],
        parent: ParentLike = None,
        process: Optional[str] = None,
    ) -> List[Span]:
        return []

    def spans(self) -> List[Span]:
        return []

    def flush(self) -> List[Span]:
        return []

    def clear(self) -> None:
        return None


NULL_TRACER = NullTracer()
