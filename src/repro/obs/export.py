"""Span/metric exporters: Chrome trace, JSONL log, text profile.

Chrome/Perfetto format notes (``about:tracing`` / https://ui.perfetto.dev):

* top level is ``{"traceEvents": [...], "displayTimeUnit": "ms"}``;
* duration events are ``B``/``E`` pairs per ``(pid, tid)`` lane with
  ``ts`` in *microseconds*; instants are ``ph: "i"``;
* this exporter emits each lane as a depth-first walk of the span
  forest, so within a lane timestamps are non-decreasing and every
  ``E`` closes the most recent open ``B`` — the property
  :func:`validate_chrome_trace` checks and CI's obs-smoke job relies on.

Process/thread labels (strings on :class:`~repro.obs.tracer.Span`) are
mapped to small integer pids/tids here, with ``process_name`` /
``thread_name`` metadata events so the UI shows the labels.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from .tracer import Span

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "write_span_jsonl",
    "profile_report",
    "validate_chrome_trace",
]


def chrome_trace_events(spans: Sequence[Span]) -> List[Dict[str, object]]:
    """Spans → Chrome ``traceEvents`` list (metadata + B/E/i events)."""
    if not spans:
        return []
    epoch = min(span.start for span in spans)
    pids: Dict[str, int] = {}
    tids: Dict[Tuple[str, str], int] = {}
    lanes: Dict[Tuple[str, str], List[Span]] = defaultdict(list)
    for span in spans:
        if span.process not in pids:
            pids[span.process] = len(pids) + 1
        lane = (span.process, span.thread)
        if lane not in tids:
            tids[lane] = len(tids) + 1
        lanes[lane].append(span)

    events: List[Dict[str, object]] = []
    for process, pid in pids.items():
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": process},
            }
        )
    for (process, thread), tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pids[process],
                "tid": tid,
                "args": {"name": thread},
            }
        )

    for lane, lane_spans in lanes.items():
        pid = pids[lane[0]]
        tid = tids[lane]
        events.extend(_lane_events(lane_spans, epoch, pid, tid))
    return events


def _lane_events(
    lane_spans: Sequence[Span], epoch: float, pid: int, tid: int
) -> List[Dict[str, object]]:
    """Depth-first B/E/i emission of one (process, thread) lane.

    Spans whose parent lives on another lane (cross-thread edges,
    adopted process spans) are roots here; parent links within the lane
    drive the nesting, so emission order is valid by construction rather
    than by timestamp heuristics.
    """
    by_id = {span.span_id: span for span in lane_spans}
    children: Dict[Optional[int], List[Span]] = defaultdict(list)
    roots: List[Span] = []
    for span in lane_spans:
        if span.parent_id is not None and span.parent_id in by_id:
            children[span.parent_id].append(span)
        else:
            roots.append(span)
    for bucket in children.values():
        bucket.sort(key=lambda s: (s.start, s.span_id))
    roots.sort(key=lambda s: (s.start, s.span_id))

    events: List[Dict[str, object]] = []

    def emit(span: Span) -> None:
        ts = (span.start - epoch) * 1e6
        args = {str(k): v for k, v in span.attrs.items()}
        if span.instant:
            events.append(
                {"ph": "i", "name": span.name, "pid": pid, "tid": tid, "ts": ts, "s": "t", "args": args}
            )
            return
        events.append({"ph": "B", "name": span.name, "pid": pid, "tid": tid, "ts": ts, "args": args})
        for child in children.get(span.span_id, ()):  # children nest inside
            emit(child)
        events.append(
            {"ph": "E", "name": span.name, "pid": pid, "tid": tid, "ts": (span.end - epoch) * 1e6}
        )

    for root in roots:
        emit(root)
    return events


def write_chrome_trace(path: Union[str, Path], spans: Sequence[Span]) -> Path:
    """Write a Perfetto-loadable JSON trace; returns the path."""
    path = Path(path)
    payload = {"traceEvents": chrome_trace_events(spans), "displayTimeUnit": "ms"}
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def write_span_jsonl(path: Union[str, Path], spans: Sequence[Span]) -> Path:
    """Write one JSON object per span (the machine-greppable log form)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for span in spans:
            handle.write(json.dumps(span.to_dict(), sort_keys=True))
            handle.write("\n")
    return path


def profile_report(spans: Sequence[Span], metrics=None, top: int = 15) -> str:
    """Text report: top spans by total self-explanatory wall, + metrics.

    Aggregates by span name (count, total, mean, max); instants are
    listed by count only.  ``metrics`` is a registry (or None) whose
    ``render_table`` is appended.
    """
    durations: Dict[str, List[float]] = defaultdict(list)
    instants: Dict[str, int] = defaultdict(int)
    for span in spans:
        if span.instant:
            instants[span.name] += 1
        else:
            durations[span.name].append(span.duration)
    lines: List[str] = ["== profile: top spans =="]
    if durations:
        rows = sorted(
            ((name, values) for name, values in durations.items()),
            key=lambda item: -sum(item[1]),
        )[:top]
        name_width = max(len(name) for name, _ in rows)
        header = f"{'span':<{name_width}}  {'count':>6}  {'total_s':>9}  {'mean_ms':>9}  {'max_ms':>9}"
        lines.append(header)
        for name, values in rows:
            total = sum(values)
            lines.append(
                f"{name:<{name_width}}  {len(values):>6}  {total:>9.4f}"
                f"  {1e3 * total / len(values):>9.3f}  {1e3 * max(values):>9.3f}"
            )
    else:
        lines.append("(no spans recorded)")
    if instants:
        lines.append("instant events:")
        for name in sorted(instants):
            lines.append(f"  {name}  x{instants[name]}")
    lines.append("")
    lines.append("== profile: metrics ==")
    lines.append(metrics.render_table() if metrics is not None else "(no metrics)")
    return "\n".join(lines)


def validate_chrome_trace(payload: Union[Dict[str, object], str, Path]) -> Dict[str, float]:
    """Check a Chrome trace for well-formedness; return per-name seconds.

    Accepts the parsed payload, a JSON string, or a file path.  Raises
    ``ValueError`` when the trace is malformed:

    * top level must carry a ``traceEvents`` list;
    * per ``(pid, tid)`` lane, timestamps must be non-decreasing and
      every ``E`` must close the most recently opened ``B`` (monotonic
      nesting — what Perfetto needs to build a flame graph);
    * no ``B`` may be left open at the end.

    The return value maps span name → total duration in *seconds*
    summed across lanes, which obs-smoke cross-checks against
    ``stats["pass_seconds"]``.
    """
    if isinstance(payload, Path):
        payload = json.loads(payload.read_text(encoding="utf-8"))
    elif isinstance(payload, str):
        payload = json.loads(payload)
    if not isinstance(payload, dict) or not isinstance(payload.get("traceEvents"), list):
        raise ValueError("trace must be an object with a traceEvents list")

    stacks: Dict[Tuple[int, int], List[Tuple[str, float]]] = defaultdict(list)
    last_ts: Dict[Tuple[int, int], float] = {}
    totals: Dict[str, float] = defaultdict(float)
    for event in payload["traceEvents"]:
        phase = event.get("ph")
        if phase == "M":
            continue
        lane = (event.get("pid"), event.get("tid"))
        ts = float(event["ts"])
        if lane in last_ts and ts < last_ts[lane] - 1e-6:
            raise ValueError(f"timestamps regress on lane {lane}: {ts} < {last_ts[lane]}")
        last_ts[lane] = ts
        if phase == "B":
            stacks[lane].append((event["name"], ts))
        elif phase == "E":
            if not stacks[lane]:
                raise ValueError(f"E without open B on lane {lane} at ts={ts}")
            name, began = stacks[lane].pop()
            if "name" in event and event["name"] != name:
                raise ValueError(
                    f"mis-nested E on lane {lane}: closes {event['name']!r}, open is {name!r}"
                )
            totals[name] += (ts - began) / 1e6
        elif phase == "i":
            continue
        else:
            raise ValueError(f"unexpected phase {phase!r}")
    for lane, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed B events on lane {lane}: {[name for name, _ in stack]}")
    return dict(totals)
