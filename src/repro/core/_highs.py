"""Deterministic low-overhead bridge to the HiGHS MILP solver.

``scipy.optimize.milp`` spends most of a small model's wall time on
per-call Python: input validation, dense→sparse conversion, option
re-validation, and dual/slack extraction the allocator never reads.  At
~700 allocator solves per cold compile that layer dominated compile
time (the HiGHS C++ core itself needs only ~2 ms per segment model).

:func:`solve_canonical_milp` accepts the model in the exact canonical
form HiGHS consumes — a csc matrix with sorted, zero-free columns plus
float64 bound/cost arrays — and hands it to the solver through one of
two tiers:

1. **direct highspy** (scipy's vendored ``_highspy`` core): builds the
   ``HighsLp`` exactly as scipy's internal wrapper does, passes a
   cached ``HighsOptions`` carrying the same option values scipy would
   set (``log_to_console=False``, ``presolve="on"``, the time limit),
   and reads back only the solution vector;
2. **public ``scipy.optimize.milp``** fallback when the vendored
   internals are absent or shaped differently (older/newer scipy).

Both tiers give HiGHS a bit-identical problem, so the returned solution
is the same regardless of tier — the parity suite ratchets compiled
programs against the frozen reference either way.  A fresh ``Highs``
instance is created per solve, exactly like scipy does, so no solver
state leaks between segments.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["solve_canonical_milp"]

#: Resolved lazily: ``(highspy_core_module, options_cache)`` or
#: ``(None, None)`` when the direct tier is unavailable.
_RUNTIME: Optional[Tuple[Optional[object], Optional[Dict]]] = None


def _runtime() -> Tuple[Optional[object], Optional[Dict]]:
    global _RUNTIME
    if _RUNTIME is None:
        try:
            import scipy.optimize._highspy._core as core

            # The attributes the direct tier touches; probing them here
            # turns any vendored-layout change into a clean fallback.
            for attribute in (
                "HighsLp",
                "_Highs",
                "HighsOptions",
                "HighsVarType",
                "HighsStatus",
                "HighsModelStatus",
                "MatrixFormat",
                "kHighsInf",
            ):
                getattr(core, attribute)
            _RUNTIME = (core, {})
        except Exception:  # noqa: BLE001 - any layout mismatch → fallback
            _RUNTIME = (None, None)
    return _RUNTIME


def _options_object(core, options_cache: Dict, time_limit: float, presolve: bool):
    """Cached ``HighsOptions`` carrying scipy's option values.

    ``passOptions`` copies values out of the object, so one instance per
    distinct (time_limit, presolve) pair is safe to reuse across solves.
    The values mirror what scipy's wrapper sets for
    ``options={"time_limit": ..., "presolve": ...}``: console logging
    off, presolve mapped from bool to ``"on"``/``"off"``.
    """
    key = (float(time_limit), bool(presolve))
    cached = options_cache.get(key)
    if cached is None:
        cached = core.HighsOptions()
        cached.log_to_console = False
        cached.time_limit = float(time_limit)
        cached.presolve = "on" if presolve else "off"
        options_cache[key] = cached
    return cached


def solve_canonical_milp(
    objective: np.ndarray,
    col_lb: np.ndarray,
    col_ub: np.ndarray,
    integrality: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    row_lb: np.ndarray,
    row_ub: np.ndarray,
    time_limit: float,
    presolve: bool = True,
) -> Optional[Tuple[bool, Optional[np.ndarray]]]:
    """Solve ``min c.T x  s.t. row_lb <= A x <= row_ub, col_lb <= x <= col_ub``.

    Args:
        objective: Float64 cost vector ``c``.
        col_lb / col_ub: Float64 variable bounds.
        integrality: Per-variable integrality flags (1 integer, 0
            continuous), as scipy's ``milp`` understands them.
        indptr / indices / data: The constraint matrix in canonical csc
            form — column-sorted indices, no explicit zeros (what
            ``scipy.sparse.csc_array`` produces from a dense matrix).
        row_lb / row_ub: Float64 constraint bounds.
        time_limit: HiGHS wall-clock limit in seconds.
        presolve: Whether HiGHS presolve runs (scipy bool semantics).

    Returns:
        ``(success, x)`` where ``success`` mirrors scipy's
        ``result.success`` (model solved to proven optimality), or
        ``None`` when scipy itself is unavailable.
    """
    core, options_cache = _runtime()
    if core is not None:
        try:
            return _solve_direct(
                core,
                options_cache,
                objective,
                col_lb,
                col_ub,
                integrality,
                indptr,
                indices,
                data,
                row_lb,
                row_ub,
                time_limit,
                presolve,
            )
        except Exception:  # noqa: BLE001 - never let the fast tier fail a solve
            pass
    return _solve_public(
        objective,
        col_lb,
        col_ub,
        integrality,
        indptr,
        indices,
        data,
        row_lb,
        row_ub,
        time_limit,
        presolve,
    )


def _solve_direct(
    core,
    options_cache: Dict,
    objective,
    col_lb,
    col_ub,
    integrality,
    indptr,
    indices,
    data,
    row_lb,
    row_ub,
    time_limit,
    presolve,
) -> Tuple[bool, Optional[np.ndarray]]:
    """The highspy tier; mirrors scipy's ``_highs_wrapper`` model fill."""
    lp = core.HighsLp()
    lp.num_col_ = objective.size
    lp.num_row_ = row_ub.size
    lp.a_matrix_.num_col_ = objective.size
    lp.a_matrix_.num_row_ = row_ub.size
    lp.a_matrix_.format_ = core.MatrixFormat.kColwise
    lp.col_cost_ = objective
    lp.col_lower_ = col_lb
    lp.col_upper_ = col_ub
    lp.row_lower_ = row_lb
    lp.row_upper_ = row_ub
    lp.a_matrix_.start_ = indptr
    lp.a_matrix_.index_ = indices
    lp.a_matrix_.value_ = data
    lp.integrality_ = [core.HighsVarType(int(flag)) for flag in integrality]

    highs = core._Highs()
    if (
        highs.passOptions(
            _options_object(core, options_cache, time_limit, presolve)
        )
        == core.HighsStatus.kError
    ):
        return False, None
    if highs.passModel(lp) == core.HighsStatus.kError:
        return False, None
    if highs.run() == core.HighsStatus.kError:
        return False, None
    # scipy maps only a proven-optimal model status to success for a
    # MIP; a time-limit-feasible solution reports success=False, which
    # the allocator treats as "fall back to greedy" — same as before.
    if highs.getModelStatus() != core.HighsModelStatus.kOptimal:
        return False, None
    return True, np.array(highs.getSolution().col_value)


def _solve_public(
    objective,
    col_lb,
    col_ub,
    integrality,
    indptr,
    indices,
    data,
    row_lb,
    row_ub,
    time_limit,
    presolve,
) -> Optional[Tuple[bool, Optional[np.ndarray]]]:
    """The public-API tier; same model through ``scipy.optimize.milp``."""
    try:
        from scipy.optimize import Bounds, LinearConstraint, milp
        from scipy.sparse import csc_array
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return None
    matrix = csc_array(
        (data, indices, indptr), shape=(row_ub.size, objective.size)
    )
    result = milp(
        c=objective,
        constraints=LinearConstraint(matrix, lb=row_lb, ub=row_ub),
        integrality=integrality,
        bounds=Bounds(lb=col_lb, ub=col_ub),
        options={"time_limit": float(time_limit), "presolve": bool(presolve)},
    )
    return bool(result.success), result.x
