"""Cost and scalability analyses — §5.5 of the paper.

Two studies:

* **Dual-mode switch overhead** — the share of total execution time spent
  on the mode-switch process itself (configuring the array drivers plus
  the associated data staging).  The paper reports 3–5 %, i.e. the
  switching that unlocks the speedups is nearly free.
* **PRIME scalability** — re-running the transformer benchmarks on a
  PRIME-like ReRAM chip (larger arrays, far more expensive writes) to show
  the approach is not specific to DynaPlasia.  The paper reports 1.48x
  (BERT), 1.09x (LLaMA-7B) and 1.10x (OPT-13B) over CIM-MLC.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.cache import AllocationCache
from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia, prime
from ..models.registry import build_model
from .common import FIG14_MODELS, encode_workload, format_table, run_model, speedup


def switch_overhead(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG14_MODELS,
    batch_size: int = 1,
    seq_len: int = 64,
    cache: Optional["AllocationCache"] = None,
) -> List[Dict]:
    """Share of execution time spent on the dual-mode switch process.

    Two measures are reported per benchmark: the pure Eq. 1 driver
    reconfiguration time, and the full switch *process* (driver
    reconfiguration plus the data staging of Fig. 10's steps 1 and 3 that
    accompanies a mode change).
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for model in models:
        workload = encode_workload(model, batch_size, seq_len)
        graph = build_model(model, workload)
        program = CMSwitchCompiler(
            hardware, CompilerOptions(generate_code=False), cache=cache
        ).compile(graph)
        total = program.graph_cycles
        switch_only = program.switch_cycles
        process = sum(segment.inter_cycles for segment in program.segments)
        rows.append(
            {
                "model": model,
                "total_cycles": total,
                "switch_cycles": switch_only,
                "switch_share": switch_only / total if total else 0.0,
                "switch_process_share": process / total if total else 0.0,
            }
        )
    return rows


def prime_scalability(
    models: Sequence[str] = ("bert", "llama2-7b", "opt-13b"),
    batch_size: int = 1,
    seq_len: int = 64,
    hardware: Optional[DualModeHardwareAbstraction] = None,
    cache: Optional["AllocationCache"] = None,
) -> List[Dict]:
    """CMSwitch vs CIM-MLC on the PRIME-like ReRAM target (§5.5).

    Note: the default target here is the PRIME preset, not the CLI's
    ``--hardware`` choice — a cache warmed on another chip contributes
    nothing (different hardware fingerprint), but sharing one is always
    safe.
    """
    hardware = hardware or prime()
    rows: List[Dict] = []
    for model in models:
        workload = encode_workload(model, batch_size, seq_len)
        cms = run_model(model, workload, hardware, "cmswitch", cache=cache)
        mlc = run_model(model, workload, hardware, "cim-mlc")
        rows.append(
            {
                "model": model,
                "hardware": hardware.name,
                "cmswitch_cycles": cms.cycles,
                "cim-mlc_cycles": mlc.cycles,
                "speedup_vs_cim-mlc": speedup(mlc.cycles, cms.cycles),
                "memory_array_ratio": cms.memory_array_ratio,
            }
        )
    return rows


def render_switch_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the switch-overhead table."""
    columns = ["model", "switch_share", "switch_process_share"]
    return format_table(rows, columns)


def render_prime_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the PRIME scalability table."""
    columns = ["model", "hardware", "speedup_vs_cim-mlc", "memory_array_ratio"]
    return format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print both §5.5 analyses."""
    print(render_switch_report(switch_overhead()))
    print()
    print(render_prime_report(prime_scalability()))


if __name__ == "__main__":  # pragma: no cover
    main()
