"""Tests for the tiered evaluation layer (repro.eval).

The two contracts the refactor hangs on:

* **calibration** — the analytical rung-0 tier is a true lower bound on
  the registered model zoo: it never reports a compilable point
  infeasible (or vice versa), and its latency/energy never exceed the
  compiled plan's;
* **parity** — compile-fidelity evaluation produces programs
  bit-identical (by semantic fingerprint) to direct
  :meth:`repro.api.Session.compile` output across the option matrix.
"""

import math

import pytest

from repro.api import Session
from repro.core import CompilerOptions, FeasibilityModel, flatten_graph
from repro.core.allocation import GreedyAllocator, MIPAllocator
from repro.cost import (
    analytical_graph_estimate,
    analytical_latency_bound,
    compute_roofline_cycles,
    estimate_energy,
)
from repro.eval import (
    AnalyticalEvaluator,
    CachedEvaluator,
    CompileEvaluator,
    Evaluation,
    fidelity_rank,
)
from repro.hardware import small_test_chip
from repro.models import Workload, build_model
from repro.service import CompileJob, CompileService

#: The calibration zoo: every registered family that compiles quickly on
#: the 8-array test chip, at a workload small enough for CI.
ZOO = ("tiny-cnn", "tiny-mlp", "tiny-transformer", "mobilenet")
ZOO_WORKLOAD = Workload(batch_size=1, seq_len=16)

#: The parity option matrix (mirrors the PR 4 fingerprint suite).
OPTION_MATRIX = (
    CompilerOptions(generate_code=False),
    CompilerOptions(generate_code=False, allow_memory_mode=False),
    CompilerOptions(generate_code=False, use_milp=False),
    CompilerOptions(generate_code=False, pipelined=False, refine=False),
)


def job_for(model, options=None, hardware=None):
    return CompileJob(
        model,
        workload=ZOO_WORKLOAD,
        hardware=hardware if hardware is not None else small_test_chip(),
        options=options or CompilerOptions(generate_code=False),
    )


@pytest.fixture()
def no_allocator_solves(monkeypatch):
    """Make any allocator engine call a hard failure."""

    def _boom(self, *args, **kwargs):
        raise AssertionError("allocator invoked during analytical evaluation")

    monkeypatch.setattr(MIPAllocator, "allocate", _boom)
    monkeypatch.setattr(GreedyAllocator, "allocate", _boom)


# ---------------------------------------------------------------------- #
# analytical tier
# ---------------------------------------------------------------------- #
class TestAnalyticalEvaluator:
    def test_zero_allocator_solves_across_the_zoo(self, no_allocator_solves):
        evaluator = AnalyticalEvaluator()
        for model in ZOO:
            for options in OPTION_MATRIX:
                evaluation = evaluator.evaluate(job_for(model, options))
                assert evaluation.fidelity == "analytical"
                assert evaluation.lower_bound
                assert evaluation.allocator_solves == 0
                assert not evaluation.failed, evaluation.error
                assert evaluation.feasible
                assert math.isfinite(evaluation.latency_ms)

    def test_lower_bound_calibration_against_full_compiles(self):
        """Latency/energy bounds never exceed the compiled plan's cost."""
        analytical = AnalyticalEvaluator()
        compiler = CompileEvaluator()
        checked = 0
        for model in ZOO:
            for options in OPTION_MATRIX:
                job = job_for(model, options)
                bound = analytical.evaluate(job)
                exact = compiler.evaluate(job)
                # Feasibility verdicts must agree in both directions.
                assert bound.feasible == exact.feasible, (model, options)
                if not exact.feasible:
                    continue
                checked += 1
                assert bound.cycles <= exact.cycles * (1 + 1e-9), (model, options)
                assert bound.latency_ms <= exact.latency_ms * (1 + 1e-9)
                assert bound.energy_mj <= exact.energy_mj * (1 + 1e-9)
                assert bound.peak_arrays <= exact.peak_arrays
        assert checked >= len(ZOO)

    def test_infeasible_unit_is_detected_without_solving(
        self, no_allocator_solves, monkeypatch
    ):
        """A unit that cannot fit the chip alone is reported infeasible."""
        from repro.cost.arithmetic import OperatorProfile

        # Make every unit look unfit without touching the real models.
        monkeypatch.setattr(
            OperatorProfile, "min_compute_arrays", lambda self, hardware: 10**6
        )
        evaluation = AnalyticalEvaluator().evaluate(job_for("tiny-mlp"))
        assert not evaluation.feasible
        assert not evaluation.failed
        assert "arrays" in (evaluation.error or "")

    def test_feasibility_matches_compiler_on_unfit_unit(self):
        """The shared FeasibilityModel predicate mirrors the compiler."""
        hardware = small_test_chip()
        graph = build_model("tiny-mlp", ZOO_WORKLOAD)
        units = flatten_graph(graph, hardware)
        model = FeasibilityModel(hardware)
        profiles = {unit.name: unit.profile for unit in units}
        assert model.first_unfit(profiles) is None
        assert model.minimum_compute_arrays(profiles) == sum(
            model.operator_floor(p) for p in profiles.values()
        )
        # The module-level helpers delegate to the same predicates.
        from repro.core import minimum_compute_arrays, segment_fits

        assert minimum_compute_arrays(profiles, hardware) == (
            model.minimum_compute_arrays(profiles)
        )
        assert segment_fits(profiles, hardware) == model.segment_fits(profiles)

    def test_unknown_model_is_a_captured_failure(self):
        evaluation = AnalyticalEvaluator().evaluate(job_for("no-such-model"))
        assert evaluation.failed
        assert not evaluation.feasible
        assert "no-such-model" in (evaluation.error or "")

    def test_cost_bounds_are_consistent(self):
        """The aggregate estimate equals its constituent bounds."""
        hardware = small_test_chip()
        graph = build_model("tiny-cnn", ZOO_WORKLOAD)
        units = flatten_graph(graph, hardware)
        profiles = [unit.profile for unit in units]
        cycles, bottleneck = analytical_latency_bound(profiles, hardware)
        assert bottleneck in ("compute-roofline", "operator")
        assert cycles >= compute_roofline_cycles(profiles, hardware)
        estimate = analytical_graph_estimate(profiles, hardware)
        assert estimate.graph_cycles == cycles
        assert estimate.end_to_end_cycles == cycles * estimate.block_repeat
        assert estimate.min_peak_arrays >= 1


# ---------------------------------------------------------------------- #
# compile tier (parity)
# ---------------------------------------------------------------------- #
class TestCompileEvaluator:
    def test_fingerprint_parity_with_session_compile(self):
        """Evaluator-produced programs are bit-identical to Session.compile."""
        for model in ("tiny-cnn", "tiny-mlp"):
            for options in OPTION_MATRIX:
                evaluation = CompileEvaluator().evaluate(job_for(model, options))
                assert evaluation.feasible
                direct = Session(hardware=small_test_chip(), options=options).compile(
                    model, workload=ZOO_WORKLOAD
                )
                assert evaluation.program.fingerprint() == direct.fingerprint()
                assert evaluation.latency_ms == direct.end_to_end_ms
                assert evaluation.energy_mj == estimate_energy(direct).end_to_end_mj

    def test_infeasible_plan_is_not_a_failure(self, monkeypatch):
        from repro.core.segmentation import NoFeasiblePlanError

        def _raise(self):
            raise NoFeasiblePlanError("nope")

        monkeypatch.setattr(CompileJob, "resolve_graph", _raise)
        evaluation = CompileEvaluator().evaluate(job_for("tiny-mlp"))
        assert not evaluation.feasible
        assert not evaluation.failed
        assert (evaluation.error or "").startswith("NoFeasiblePlanError")


# ---------------------------------------------------------------------- #
# cached tier
# ---------------------------------------------------------------------- #
class TestCachedEvaluator:
    def test_cold_candidate_is_declined_not_solved(self, tmp_path):
        service = CompileService(cache_dir=tmp_path / "store")
        evaluation = CachedEvaluator(service).evaluate(job_for("tiny-cnn"))
        assert evaluation.skipped
        assert evaluation.allocator_solves == 0
        assert "cold" in (evaluation.error or "")

    def test_warm_candidate_is_answered_at_full_fidelity(self, tmp_path):
        job = job_for("tiny-cnn")
        warmup = CompileService(cache_dir=tmp_path / "store")
        baseline = warmup.compile(job)
        assert baseline.ok

        service = CompileService(cache_dir=tmp_path / "store")
        evaluation = CachedEvaluator(service).evaluate(job)
        assert not evaluation.skipped
        assert evaluation.fidelity == "cached"
        assert evaluation.feasible
        assert evaluation.allocator_solves == 0  # served from the store
        assert evaluation.program.fingerprint() == baseline.program.fingerprint()

    def test_without_a_store_everything_is_declined(self):
        service = CompileService()  # in-memory cache only
        evaluation = CachedEvaluator(service).evaluate(job_for("tiny-mlp"))
        assert evaluation.skipped
        assert "store" in (evaluation.error or "")


# ---------------------------------------------------------------------- #
# protocol plumbing
# ---------------------------------------------------------------------- #
class TestEvaluationProtocol:
    def test_fidelity_ranks(self):
        assert fidelity_rank("analytical") < fidelity_rank("cached")
        assert fidelity_rank("cached") < fidelity_rank("compile")
        # Legacy records (no tag) were full compiles.
        assert fidelity_rank(None) == fidelity_rank("compile")
        assert fidelity_rank("") == fidelity_rank("compile")

    def test_describe_renders_every_shape(self):
        assert "skipped" in Evaluation(fidelity="cached", skipped=True).describe()
        assert "FAILED" in Evaluation(fidelity="compile", failed=True).describe()
        assert "infeasible" in Evaluation(fidelity="analytical").describe()
        ok = Evaluation(
            fidelity="analytical",
            feasible=True,
            latency_ms=1.0,
            energy_mj=2.0,
            lower_bound=True,
        )
        assert "lower bound" in ok.describe()

    def test_batch_default_maps_evaluate(self):
        evaluator = AnalyticalEvaluator()
        jobs = [job_for("tiny-cnn"), job_for("tiny-mlp")]
        evaluations = evaluator.evaluate_batch(jobs)
        assert len(evaluations) == 2
        assert all(e.feasible for e in evaluations)


class TestAnalyticalMemoSafety:
    def test_units_memo_validates_graph_identity(self):
        """A recycled id() must not serve another graph's units."""
        hardware = small_test_chip()
        evaluator = AnalyticalEvaluator()
        cnn = build_model("tiny-cnn", ZOO_WORKLOAD)
        mlp = build_model("tiny-mlp", ZOO_WORKLOAD)
        cnn_units = evaluator._units(cnn, hardware)
        # Simulate an address collision: plant the CNN's entry under the
        # MLP's memo key (what id-reuse after garbage collection does).
        evaluator._units_memo[(id(mlp), hardware.fingerprint())] = (cnn, cnn_units)
        mlp_units = evaluator._units(mlp, hardware)
        assert mlp_units is not cnn_units
        assert {u.name for u in mlp_units} == {
            u.name for u in flatten_graph(mlp, hardware)
        }

    def test_shared_evaluator_matches_fresh_evaluators(self):
        """Interleaved model-name jobs never cross-contaminate metrics."""
        shared = AnalyticalEvaluator()
        for model in ZOO + tuple(reversed(ZOO)):
            from_shared = shared.evaluate(job_for(model))
            from_fresh = AnalyticalEvaluator().evaluate(job_for(model))
            assert from_shared.cycles == from_fresh.cycles, model
            assert from_shared.energy_mj == from_fresh.energy_mj, model

    def test_units_memo_is_bounded(self):
        hardware = small_test_chip()
        evaluator = AnalyticalEvaluator()
        for _ in range(evaluator.MEMO_ENTRIES + 8):
            evaluator._units(build_model("tiny-mlp", ZOO_WORKLOAD), hardware)
        assert len(evaluator._units_memo) <= evaluator.MEMO_ENTRIES
