"""Pareto-frontier computation and reporting for DSE results.

A design-space exploration rarely has a single winner: a bigger chip is
faster but costs more arrays, a memory-heavy split saves energy but adds
latency.  The useful output is the *Pareto frontier* — the set of
evaluated points no other point beats on every axis simultaneously.  The
default axes are the three the paper's trade-off lives on:

* ``latency_ms`` — predicted end-to-end latency,
* ``energy_mj`` — first-order energy estimate
  (:func:`repro.cost.energy.estimate_energy`),
* ``num_arrays`` — the hardware cost of the candidate chip.

All axes are minimised.  Infeasible or non-finite records never reach
the frontier.  Reports come in two shapes: a text table
(:func:`render_report`) for terminals and logs, and a CSV of every
record with a ``pareto`` flag column (:func:`write_csv`) for notebooks
and downstream tooling.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

__all__ = [
    "DEFAULT_AXES",
    "dominates",
    "full_fidelity_records",
    "pareto_frontier",
    "render_report",
    "write_csv",
]

#: Default minimised axes of the frontier.
DEFAULT_AXES: Tuple[str, ...] = ("latency_ms", "energy_mj", "num_arrays")

#: Columns of the CSV report, in order.
CSV_FIELDS = (
    "point_key",
    "model",
    "workload",
    "hardware",
    "num_arrays",
    "allow_memory_mode",
    "feasible",
    "latency_ms",
    "cycles",
    "energy_mj",
    "num_segments",
    "peak_arrays",
    "objective",
    "objective_value",
    "allocator_solves",
    "cache_hits",
    "disk_hits",
    "wall_seconds",
    "status",
    "fidelity",
    "lower_bound",
    "pareto",
)


def _axis_vector(record, axes: Sequence[str]) -> Tuple[float, ...]:
    return tuple(float(getattr(record, axis)) for axis in axes)


def full_fidelity_records(records: Sequence) -> List:
    """The records whose metrics describe a real plan, not a lower bound.

    Mixed-fidelity results must rank, crown and dominate only on these —
    an optimistic analytical bound would otherwise beat every plan it
    merely approximates.  A pure rung-0 screening (no full-fidelity
    record at all) falls back to every record: comparing bounds against
    each other is exactly what a screening is for.  Records without a
    ``lower_bound`` attribute (pre-fidelity data) count as full fidelity.
    """
    full = [
        record for record in records if not getattr(record, "lower_bound", False)
    ]
    return full if full else list(records)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Whether axis vector ``a`` Pareto-dominates ``b`` (all <=, one <)."""
    return all(x <= y for x, y in zip(a, b)) and any(x < y for x, y in zip(a, b))


def pareto_frontier(records: Sequence, axes: Sequence[str] = DEFAULT_AXES) -> List:
    """Non-dominated feasible records, sorted by the first axis.

    A record participates only when it is feasible and finite on every
    axis.  Records with identical axis vectors are all kept (they are
    mutually non-dominating — distinct designs achieving the same
    trade-off are each worth reporting).

    The scan is the plain O(n²) dominance check — fine for the
    thousands-of-points scale DSE runs reach; consumers that need the
    frontier more than once should compute it once and pass it to
    :func:`render_report` / :func:`write_csv` (which
    :meth:`repro.dse.runner.DSEResult.frontier` does via its cache).
    """
    candidates = [
        record
        for record in records
        if getattr(record, "feasible", False)
        and all(math.isfinite(v) for v in _axis_vector(record, axes))
    ]
    vectors = [_axis_vector(record, axes) for record in candidates]
    frontier = [
        record
        for index, record in enumerate(candidates)
        if not any(
            dominates(other, vectors[index])
            for j, other in enumerate(vectors)
            if j != index
        )
    ]
    # Point key breaks axis-vector ties so equal trade-offs render (and
    # serialise) in the same order regardless of evaluation order.
    frontier.sort(
        key=lambda record: (_axis_vector(record, axes), record.point_key)
    )
    return frontier


def render_report(
    records: Sequence,
    axes: Sequence[str] = DEFAULT_AXES,
    objective: str = "latency",
    frontier: Optional[Sequence] = None,
) -> str:
    """Text report: the frontier table plus evaluation totals.

    ``frontier`` lets callers reuse an already-computed frontier.  The
    "best" line and the dominated count rank only full-fidelity records
    (see :func:`full_fidelity_records`) — in a mixed run an analytical
    lower bound must not be crowned best over the real plans.
    """
    pool = full_fidelity_records(records)
    if frontier is None:
        frontier = pareto_frontier(pool, axes)
    frontier_keys = {record.point_key for record in frontier}
    feasible = sum(1 for record in records if getattr(record, "feasible", False))
    lines = [
        f"pareto frontier over ({', '.join(axes)}) — "
        f"{len(frontier)} of {len(records)} points "
        f"({feasible} feasible), objective: {objective}",
        f"{'model':16s} {'workload':36s} {'arrays':>6s} {'mode':>5s} "
        f"{'latency (ms)':>13s} {'energy (mJ)':>12s} {'segments':>9s}",
    ]
    for record in frontier:
        mode = "dual" if record.allow_memory_mode else "fixed"
        lines.append(
            f"{record.model:16s} {record.workload:36s} {record.num_arrays:6d} "
            f"{mode:>5s} {record.latency_ms:13.3f} {record.energy_mj:12.3f} "
            f"{record.num_segments:9d}"
        )
    best = min(
        (record for record in pool if getattr(record, "feasible", False)),
        key=lambda record: record.objective_value,
        default=None,
    )
    if best is not None:
        lines.append(
            f"best ({best.objective}): {best.model} @ {best.num_arrays} arrays "
            f"-> {best.objective_value:.3f}"
        )
    dominated = [
        record
        for record in pool
        if getattr(record, "feasible", False) and record.point_key not in frontier_keys
    ]
    totals = f"dominated: {len(dominated)}, infeasible/failed: {len(records) - feasible}"
    screened = len(records) - len(pool)
    if screened:
        totals += f", lower-bound screened: {screened}"
    lines.append(totals)
    return "\n".join(lines)


def write_csv(
    path: Union[str, Path],
    records: Sequence,
    axes: Sequence[str] = DEFAULT_AXES,
    frontier: Optional[Sequence] = None,
) -> Path:
    """Write every record (with a ``pareto`` flag column) as CSV.

    ``frontier`` lets callers reuse an already-computed frontier.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if frontier is None:
        frontier = pareto_frontier(records, axes)
    frontier_keys = {record.point_key for record in frontier}
    with open(path, "w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=CSV_FIELDS)
        writer.writeheader()
        for record in records:
            row = {name: getattr(record, name, "") for name in CSV_FIELDS if name != "pareto"}
            row["pareto"] = int(record.point_key in frontier_keys)
            writer.writerow(row)
    return path
