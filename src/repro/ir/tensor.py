"""Tensor metadata used throughout the compiler.

The CMSwitch compiler never needs concrete tensor *values* to make
scheduling decisions; it only needs shapes and element widths.  The
functional simulator (:mod:`repro.sim.functional`) attaches concrete numpy
arrays to these specs when it executes a compiled program.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Tuple


class DataType(Enum):
    """Element data types supported by the hardware model.

    The paper quantises all evaluated networks to 8-bit weights and
    activations; wider types are provided so the cost model can also be
    exercised on mixed-precision graphs.
    """

    INT8 = "int8"
    INT16 = "int16"
    INT32 = "int32"
    FP16 = "fp16"
    FP32 = "fp32"

    @property
    def size_bytes(self) -> int:
        """Size of one element in bytes."""
        return _DTYPE_BYTES[self]

    @property
    def size_bits(self) -> int:
        """Size of one element in bits."""
        return self.size_bytes * 8

    @property
    def numpy_dtype(self) -> str:
        """Name of the numpy dtype used by the functional simulator."""
        return _DTYPE_NUMPY[self]


_DTYPE_BYTES = {
    DataType.INT8: 1,
    DataType.INT16: 2,
    DataType.INT32: 4,
    DataType.FP16: 2,
    DataType.FP32: 4,
}

_DTYPE_NUMPY = {
    DataType.INT8: "int8",
    DataType.INT16: "int16",
    DataType.INT32: "int32",
    DataType.FP16: "float16",
    DataType.FP32: "float32",
}


@dataclass(frozen=True)
class TensorSpec:
    """Shape/dtype description of a tensor flowing through the graph.

    Attributes:
        name: Unique tensor name within a graph.
        shape: Tensor shape.  Scalars are represented by an empty tuple.
        dtype: Element type, defaults to INT8 (the paper's quantisation).
    """

    name: str
    shape: Tuple[int, ...]
    dtype: DataType = DataType.INT8

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("TensorSpec requires a non-empty name")
        shape = tuple(int(dim) for dim in self.shape)
        object.__setattr__(self, "shape", shape)
        for dim in shape:
            if dim <= 0:
                raise ValueError(
                    f"tensor {self.name!r}: all dimensions must be positive, got {shape}"
                )

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        """Total number of elements."""
        return int(math.prod(self.shape)) if self.shape else 1

    @property
    def num_bytes(self) -> int:
        """Total storage size in bytes."""
        return self.num_elements * self.dtype.size_bytes

    def with_name(self, name: str) -> "TensorSpec":
        """Return a copy of this spec under a different name."""
        return TensorSpec(name=name, shape=self.shape, dtype=self.dtype)

    def with_shape(self, shape: Iterable[int]) -> "TensorSpec":
        """Return a copy of this spec with a different shape."""
        return TensorSpec(name=self.name, shape=tuple(shape), dtype=self.dtype)

    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON friendly)."""
        return {
            "name": self.name,
            "shape": list(self.shape),
            "dtype": self.dtype.value,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TensorSpec":
        """Deserialise from :meth:`to_dict` output."""
        return cls(
            name=data["name"],
            shape=tuple(data["shape"]),
            dtype=DataType(data["dtype"]),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(d) for d in self.shape) or "scalar"
        return f"{self.name}:{dims}:{self.dtype.value}"


def elements(specs: Iterable[TensorSpec]) -> int:
    """Total number of elements across a collection of tensor specs."""
    return sum(spec.num_elements for spec in specs)


def total_bytes(specs: Iterable[TensorSpec]) -> int:
    """Total number of bytes across a collection of tensor specs."""
    return sum(spec.num_bytes for spec in specs)
