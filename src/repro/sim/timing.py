"""Timing simulator: replay a meta-operator flow and account cycles.

The compiler predicts latency from its analytical cost model; the timing
simulator provides an independent estimate by *replaying the generated
meta-operator flow* against the hardware abstraction:

* ``CM.switch`` operators cost the per-array switch latency (Eq. 1),
* weight loads cost the array-programming latency per written array,
* memory reads/writes cost elements divided by the bandwidth of their
  source/destination (memory-mode arrays vs. the off-chip path),
* compute operators cost MACs divided by the throughput of the arrays
  they occupy,
* operators inside one ``parallel { ... }`` block overlap (pipeline), so a
  block costs its longest stage plus the pipeline fill time.

The resulting totals should track the compiler's prediction; tests check
they agree within a modelling tolerance, which guards against the compiler
optimising for a cost it would not actually achieve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.metaop import (
    ComputeOp,
    MemoryReadOp,
    MemoryWriteOp,
    MetaProgram,
    ParallelBlock,
    SwitchOp,
    SwitchType,
    WeightLoadOp,
)
from ..core.program import CompiledProgram
from ..hardware.chip import CIMChip
from ..hardware.deha import ArrayMode, DualModeHardwareAbstraction


@dataclass
class TimingBreakdown:
    """Cycle totals per activity category."""

    compute: float = 0.0
    memory_read: float = 0.0
    memory_write: float = 0.0
    weight_load: float = 0.0
    mode_switch: float = 0.0
    pipeline_fill: float = 0.0

    @property
    def total(self) -> float:
        """Sum over all categories."""
        return (
            self.compute
            + self.memory_read
            + self.memory_write
            + self.weight_load
            + self.mode_switch
            + self.pipeline_fill
        )


@dataclass
class TimingReport:
    """Result of replaying one compiled program."""

    graph_name: str
    block_cycles: List[float] = field(default_factory=list)
    breakdown: TimingBreakdown = field(default_factory=TimingBreakdown)
    switch_events: int = 0
    #: Cycles of meta-operators issued outside any parallel block.
    top_level_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Total cycles of one pass over the program."""
        return sum(self.block_cycles) + self.top_level_cycles

    def summary(self) -> str:
        """Human-readable summary used by examples."""
        b = self.breakdown
        return (
            f"timing for {self.graph_name}: {self.total_cycles:,.0f} cycles "
            f"(compute {b.compute:,.0f}, reads {b.memory_read:,.0f}, "
            f"writes {b.memory_write:,.0f}, weight loads {b.weight_load:,.0f}, "
            f"switches {b.mode_switch:,.0f})"
        )


class TimingSimulator:
    """Replays meta-operator flows against the DEHA parameters."""

    def __init__(self, hardware: DualModeHardwareAbstraction) -> None:
        self.hardware = hardware

    # ------------------------------------------------------------------ #
    # meta-operator costs
    # ------------------------------------------------------------------ #
    def _read_cycles(self, op: MemoryReadOp) -> float:
        if op.source == "cim-memory" and op.array_addresses:
            bandwidth = self.hardware.d_main + len(op.array_addresses) * self.hardware.d_cim
        else:
            bandwidth = self.hardware.d_main
        return op.elements / bandwidth if bandwidth > 0 else float("inf")

    def _write_cycles(self, op: MemoryWriteOp) -> float:
        if op.destination == "cim-memory" and op.array_addresses:
            bandwidth = self.hardware.d_main + len(op.array_addresses) * self.hardware.d_cim
        else:
            bandwidth = self.hardware.d_main
        return op.elements / bandwidth if bandwidth > 0 else float("inf")

    def _compute_cycles(self, op: ComputeOp) -> float:
        arrays = max(1, len(op.array_addresses))
        rate = arrays * self.hardware.op_cim
        return op.macs / rate if rate > 0 else float("inf")

    def _weight_load_cycles(self, op: WeightLoadOp) -> float:
        return len(op.array_addresses) * self.hardware.array_write_latency_cycles

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def run(self, program_or_meta: object) -> TimingReport:
        """Replay a compiled program (or a bare meta program)."""
        if isinstance(program_or_meta, CompiledProgram):
            meta = program_or_meta.meta_program
            name = program_or_meta.graph_name
            if meta is None:
                raise ValueError(
                    "compiled program has no meta program; compile with generate_code=True"
                )
        elif isinstance(program_or_meta, MetaProgram):
            meta = program_or_meta
            name = program_or_meta.graph_name
        else:
            raise TypeError(f"cannot simulate object of type {type(program_or_meta)!r}")

        chip = CIMChip(self.hardware)
        report = TimingReport(graph_name=name)
        for item in meta.items:
            if isinstance(item, ParallelBlock):
                report.block_cycles.append(self._run_block(item, chip, report))
            elif isinstance(item, SwitchOp):
                cycles = self._switch(item, chip, report)
                report.breakdown.mode_switch += cycles
                report.top_level_cycles += cycles
            elif isinstance(item, WeightLoadOp):
                cycles = self._weight_load_cycles(item)
                report.breakdown.weight_load += cycles
                report.top_level_cycles += cycles
        return report

    def _switch(self, op: SwitchOp, chip: CIMChip, report: TimingReport) -> float:
        mode = ArrayMode.MEMORY if op.switch_type is SwitchType.TO_MEMORY else ArrayMode.COMPUTE
        cycles = chip.switch_mode(op.array_addresses, mode)
        report.switch_events += len(op.array_addresses)
        return cycles

    def _run_block(self, block: ParallelBlock, chip: CIMChip, report: TimingReport) -> float:
        """Cost of one segment: pipelined stages overlap, switches serialise."""
        stage_cycles: Dict[str, float] = {}
        switch_cycles = 0.0
        weight_cycles: Dict[str, float] = {}
        for op in block.body:
            if isinstance(op, SwitchOp):
                switch_cycles += self._switch(op, chip, report)
            elif isinstance(op, WeightLoadOp):
                weight_cycles[op.operator] = (
                    weight_cycles.get(op.operator, 0.0) + self._weight_load_cycles(op)
                )
            elif isinstance(op, MemoryReadOp):
                cycles = self._read_cycles(op)
                stage_cycles[op.operator] = stage_cycles.get(op.operator, 0.0) + cycles
                report.breakdown.memory_read += cycles
            elif isinstance(op, MemoryWriteOp):
                cycles = self._write_cycles(op)
                stage_cycles[op.operator] = stage_cycles.get(op.operator, 0.0) + cycles
                report.breakdown.memory_write += cycles
            elif isinstance(op, ComputeOp):
                cycles = self._compute_cycles(op)
                stage_cycles[op.operator] = stage_cycles.get(op.operator, 0.0) + cycles
                report.breakdown.compute += cycles
        report.breakdown.mode_switch += switch_cycles
        # Weight loads of different operators overlap (per-array ports);
        # the longest one is exposed before the pipeline starts.
        exposed_weight = max(weight_cycles.values(), default=0.0)
        report.breakdown.weight_load += exposed_weight
        fill = len(stage_cycles) * self.hardware.compute_latency_cycles
        report.breakdown.pipeline_fill += fill
        longest_stage = max(stage_cycles.values(), default=0.0)
        return longest_stage + fill + exposed_weight + switch_cycles
