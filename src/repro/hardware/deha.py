"""Dual-mode Enhanced Hardware Abstraction (DEHA).

This is the hardware description of §4.2 / Fig. 8 of the paper: the
compiler sees the CIM chip through a small set of parameters — the number
and size of dual-mode arrays, the native buffer, internal and external
bandwidth, the method and latency of the compute<->memory mode switch and
the per-mode operation latencies.  Everything the cost model and the
simulators need is derived from these parameters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Dict


class ArrayMode(Enum):
    """Operating mode of a dual-mode CIM array."""

    COMPUTE = "compute"
    MEMORY = "memory"
    IDLE = "idle"


@dataclass(frozen=True)
class DualModeHardwareAbstraction:
    """Parameters of a dual-mode CIM accelerator (the paper's DEHA).

    The attribute names follow Fig. 8; derived quantities (``op_cim``,
    ``d_cim``, ``d_main``) follow Table 1.

    Attributes:
        name: Preset name (e.g. ``"dynaplasia"``).
        num_arrays: ``#_switch_array`` — number of dual-mode arrays.
        array_rows: Rows of one array (wordlines).
        array_cols: Columns of one array (bitlines).
        buffer_bytes: Native on-chip buffer capacity in bytes
            (DynaPlasia: 10 KB x 8 banks).
        internal_bw_bits: ``internal_bw`` — on-chip bus width in bits/cycle.
        extern_bw_bits: ``extern_bw`` — main-memory bandwidth in bits/cycle.
        weight_bits: Weight precision (paper: 8-bit quantisation).
        activation_bits: Activation precision.
        compute_latency_cycles: Cycles one compute-mode array needs to
            finish one full-array MVM activation (bit-serial input, ADC and
            accumulation included).
        array_read_bits: Bits a memory-mode array can read per cycle.
        array_write_bits: Bits that can be written into an array per cycle
            (weight programming and memory-mode stores).
        switch_latency_m2c: ``L_{m->c}`` — cycles to switch one array from
            memory to compute mode.
        switch_latency_c2m: ``L_{c->m}`` — cycles to switch one array from
            compute to memory mode.
        switch_method_m2c: ``Methd_{m->c}`` — free-text description of the
            switching mechanism (e.g. global-wordline driver input change).
        switch_method_c2m: ``Methd_{c->m}``.
        frequency_mhz: Clock frequency used to convert cycles to time.
        write_energy_factor: Relative cost multiplier for array writes
            (ReRAM-based chips such as PRIME pay much more per write than
            the eDRAM-based DynaPlasia).
        weight_update_overlap: Fraction of array weight-programming time
            hidden behind concurrent computation.  Recent dual-mode macros
            (DynaPlasia and the ping-pong CIM designs it builds on) support
            simultaneous MAC and write operations, so most of the reload is
            overlapped; ReRAM chips hide far less.  The overlap is a
            property of the chip and applies to every compiler equally.
    """

    name: str
    num_arrays: int
    array_rows: int
    array_cols: int
    buffer_bytes: int
    internal_bw_bits: int
    extern_bw_bits: int
    weight_bits: int = 8
    activation_bits: int = 8
    compute_latency_cycles: int = 8
    array_read_bits: int = 0
    array_write_bits: int = 0
    switch_latency_m2c: int = 1
    switch_latency_c2m: int = 1
    switch_method_m2c: str = "set GIA/GIAb to input activation"
    switch_method_c2m: str = "set GIA/GIAb high"
    frequency_mhz: float = 200.0
    write_energy_factor: float = 1.0
    weight_update_overlap: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.weight_update_overlap < 1.0:
            raise ValueError("weight_update_overlap must be in [0, 1)")
        if self.num_arrays <= 0:
            raise ValueError("num_arrays must be positive")
        if self.array_rows <= 0 or self.array_cols <= 0:
            raise ValueError("array dimensions must be positive")
        if self.buffer_bytes < 0:
            raise ValueError("buffer_bytes must be non-negative")
        if self.internal_bw_bits <= 0 or self.extern_bw_bits <= 0:
            raise ValueError("bandwidths must be positive")
        if self.compute_latency_cycles <= 0:
            raise ValueError("compute_latency_cycles must be positive")
        if self.weight_bits <= 0 or self.activation_bits <= 0:
            raise ValueError("bit widths must be positive")
        if self.switch_latency_m2c < 0 or self.switch_latency_c2m < 0:
            raise ValueError("switch latencies must be non-negative")
        # Default the per-array read/write port widths to one row/column of
        # bits per cycle when not specified.
        if self.array_read_bits <= 0:
            object.__setattr__(self, "array_read_bits", self.array_cols)
        if self.array_write_bits <= 0:
            object.__setattr__(self, "array_write_bits", self.array_cols)

    # ------------------------------------------------------------------ #
    # derived capacities
    # ------------------------------------------------------------------ #
    @property
    def array_capacity_elements(self) -> int:
        """Weight elements one array stores (one element per cell group)."""
        return self.array_rows * self.array_cols

    @property
    def array_capacity_bytes(self) -> int:
        """Bytes one array stores in memory mode."""
        return self.array_capacity_elements * self.weight_bits // 8

    @property
    def total_array_capacity_bytes(self) -> int:
        """Bytes stored if every array were in memory mode."""
        return self.num_arrays * self.array_capacity_bytes

    @property
    def buffer_elements(self) -> int:
        """Activation elements the native buffer holds."""
        return self.buffer_bytes * 8 // self.activation_bits

    # ------------------------------------------------------------------ #
    # derived rates (Table 1 constants)
    # ------------------------------------------------------------------ #
    @property
    def op_cim(self) -> float:
        """``OP_cim`` — MACs per cycle one compute-mode array provides.

        A compute-mode array evaluates a full ``rows x cols`` MVM every
        ``compute_latency_cycles`` cycles (bit-serial activation input).
        """
        return self.array_rows * self.array_cols / self.compute_latency_cycles

    @property
    def d_cim(self) -> float:
        """``D_cim`` — elements per cycle one memory-mode array provides."""
        return self.array_read_bits / self.activation_bits

    @property
    def d_main(self) -> float:
        """``D_main`` — elements per cycle from main memory + native buffer.

        Following Table 1, ``D_main`` is proportional to
        ``extern_bw + internal_bw``.
        """
        return (self.extern_bw_bits + self.internal_bw_bits) / self.activation_bits

    @property
    def d_extern(self) -> float:
        """Elements per cycle across the off-chip link only."""
        return self.extern_bw_bits / self.activation_bits

    @property
    def array_write_latency_cycles(self) -> float:
        """``Latency_write`` — exposed cycles to (re)program one full array.

        Writing ``rows x cols`` weights through an ``array_write_bits``-wide
        port, scaled by the technology's write-cost factor (ReRAM >> eDRAM)
        and reduced by the fraction of the update that overlaps with
        concurrent computation (ping-pong weight update).
        """
        bits = self.array_rows * self.array_cols * self.weight_bits
        raw = bits / self.array_write_bits * self.write_energy_factor
        return raw * (1.0 - self.weight_update_overlap)

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one cycle in nanoseconds."""
        return 1000.0 / self.frequency_mhz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds."""
        return cycles * self.cycle_time_ns * 1e-6

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    def with_overrides(self, **kwargs) -> "DualModeHardwareAbstraction":
        """Copy of this abstraction with some parameters replaced."""
        return replace(self, **kwargs)

    def fingerprint(self) -> str:
        """Stable hashable digest of every cost-relevant parameter.

        Two abstractions with identical parameters (the preset name
        included) produce the same fingerprint; any override — changing
        one of the :meth:`to_dict` fields via :meth:`with_overrides` or
        construction — invalidates it.  Used as the hardware component
        of allocation-cache keys, so cached MILP solutions are never
        reused across different chips.

        Invariants:

        * **Cross-process stability** — the digest is SHA-256 over the
          canonical parameter rendering, never Python's randomised
          ``hash()``, so it is identical across processes, interpreter
          restarts and machines.  This is what makes it safe as the key
          component of the persistent
          :class:`~repro.core.store.DiskCacheStore`.
        * **Completeness** — every field of :meth:`to_dict` is covered.
          When adding a DEHA parameter that influences any cost model,
          add it to :meth:`to_dict` (which feeds this digest); an
          uncovered parameter would let two different chips share cache
          entries.
        * The digest is memoised on the (frozen, hence immutable)
          instance — allocation-cache lookups call this in the DP inner
          loop.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            canonical = repr(sorted(self.to_dict().items()))
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
            object.__setattr__(self, "_fingerprint", cached)
        return cached

    def to_dict(self) -> Dict:
        """Serialise to a plain dictionary."""
        return {
            "name": self.name,
            "num_arrays": self.num_arrays,
            "array_rows": self.array_rows,
            "array_cols": self.array_cols,
            "buffer_bytes": self.buffer_bytes,
            "internal_bw_bits": self.internal_bw_bits,
            "extern_bw_bits": self.extern_bw_bits,
            "weight_bits": self.weight_bits,
            "activation_bits": self.activation_bits,
            "compute_latency_cycles": self.compute_latency_cycles,
            "array_read_bits": self.array_read_bits,
            "array_write_bits": self.array_write_bits,
            "switch_latency_m2c": self.switch_latency_m2c,
            "switch_latency_c2m": self.switch_latency_c2m,
            "switch_method_m2c": self.switch_method_m2c,
            "switch_method_c2m": self.switch_method_c2m,
            "frequency_mhz": self.frequency_mhz,
            "write_energy_factor": self.write_energy_factor,
            "weight_update_overlap": self.weight_update_overlap,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "DualModeHardwareAbstraction":
        """Rebuild an abstraction from :meth:`to_dict` output."""
        return cls(**data)

    def summary(self) -> str:
        """Multi-line human-readable summary (used by examples/reports)."""
        lines = [
            f"DEHA {self.name!r}",
            f"  arrays            : {self.num_arrays} x {self.array_rows}x{self.array_cols}",
            f"  native buffer     : {self.buffer_bytes / 1024:.1f} KB",
            f"  internal bw       : {self.internal_bw_bits} b/cycle",
            f"  external bw       : {self.extern_bw_bits} b/cycle",
            f"  OP_cim            : {self.op_cim:.0f} MAC/cycle/array",
            f"  D_cim             : {self.d_cim:.1f} elem/cycle/array",
            f"  D_main            : {self.d_main:.1f} elem/cycle",
            f"  array write       : {self.array_write_latency_cycles:.0f} cycles",
            f"  mode switch m->c  : {self.switch_latency_m2c} cycles ({self.switch_method_m2c})",
            f"  mode switch c->m  : {self.switch_latency_c2m} cycles ({self.switch_method_c2m})",
        ]
        return "\n".join(lines)
