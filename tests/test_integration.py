"""Integration tests across the whole stack (paper-shape assertions).

These tests exercise the real benchmark networks on the real DynaPlasia
configuration and assert the qualitative results of the paper's
evaluation: CMSwitch never loses to CIM-MLC, gains are largest for the
large decoder-only models, the memory-array ratio is non-trivial for LLMs
and small for compute-bound CNNs, and the dual-mode switch overhead is a
small fraction of execution time.
"""

import pytest

from repro.baselines import CIMMLCCompiler, OCCCompiler, PUMACompiler
from repro.core import CMSwitchCompiler, CompilerOptions
from repro.ir import graph_from_json, graph_to_json
from repro.models import Phase, Workload, build_model
from repro.sim import FunctionalSimulator


@pytest.fixture(scope="module")
def chip(dynaplasia_chip):
    return dynaplasia_chip


@pytest.fixture(scope="module")
def llama_programs(chip):
    graph = build_model("llama2-7b", Workload(batch_size=4, seq_len=64, phase=Phase.ENCODE))
    options = CompilerOptions(generate_code=False)
    return {
        "cmswitch": CMSwitchCompiler(chip, options).compile(graph),
        "cim-mlc": CIMMLCCompiler(chip).compile(graph),
        "puma": PUMACompiler(chip).compile(graph),
        "occ": OCCCompiler(chip).compile(graph),
    }


@pytest.fixture(scope="module")
def resnet_programs(chip, resnet18_graph):
    options = CompilerOptions(generate_code=False)
    return {
        "cmswitch": CMSwitchCompiler(chip, options).compile(resnet18_graph),
        "cim-mlc": CIMMLCCompiler(chip).compile(resnet18_graph),
    }


class TestPaperShapeLLM:
    def test_cmswitch_beats_cim_mlc_on_llama(self, llama_programs):
        speedup = (
            llama_programs["cim-mlc"].end_to_end_cycles
            / llama_programs["cmswitch"].end_to_end_cycles
        )
        assert speedup >= 1.05

    def test_cmswitch_beats_every_baseline(self, llama_programs):
        cms = llama_programs["cmswitch"].end_to_end_cycles
        for name in ("cim-mlc", "puma", "occ"):
            assert llama_programs[name].end_to_end_cycles >= cms * 0.999

    def test_llm_uses_memory_mode_arrays(self, llama_programs):
        assert llama_programs["cmswitch"].mean_memory_array_ratio > 0.03

    def test_fixed_mode_baseline_uses_none(self, llama_programs):
        assert llama_programs["cim-mlc"].mean_memory_array_ratio == 0.0

    def test_llama_needs_many_segments(self, llama_programs):
        # A 7B-parameter block cannot fit on a 9.8 MB chip at once.
        assert llama_programs["cmswitch"].num_segments >= 5

    def test_switch_overhead_is_small(self, llama_programs):
        assert llama_programs["cmswitch"].switch_overhead_fraction < 0.05


class TestPaperShapeCNN:
    def test_cmswitch_not_slower_on_resnet(self, resnet_programs):
        speedup = (
            resnet_programs["cim-mlc"].end_to_end_cycles
            / resnet_programs["cmswitch"].end_to_end_cycles
        )
        assert speedup >= 0.999

    def test_cnn_gain_smaller_than_llm_gain(self, resnet_programs, llama_programs):
        cnn_gain = (
            resnet_programs["cim-mlc"].end_to_end_cycles
            / resnet_programs["cmswitch"].end_to_end_cycles
        )
        llm_gain = (
            llama_programs["cim-mlc"].end_to_end_cycles
            / llama_programs["cmswitch"].end_to_end_cycles
        )
        assert llm_gain >= cnn_gain - 0.10

    def test_resnet_latency_in_sane_range(self, resnet_programs, chip):
        # A 1.8 GMAC CNN on a ~120 TOPS-equivalent chip: sub-10 ms.
        assert resnet_programs["cmswitch"].end_to_end_ms < 10.0


class TestRoundTripAndVerification:
    def test_graph_serialisation_preserves_compilation(self, small_chip, tiny_transformer_graph):
        restored = graph_from_json(graph_to_json(tiny_transformer_graph))
        original = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(
            tiny_transformer_graph
        )
        reloaded = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(
            restored
        )
        assert reloaded.graph_cycles == pytest.approx(original.graph_cycles)
        assert reloaded.num_segments == original.num_segments

    def test_functional_verification_of_compiled_cnn(self, small_chip, tiny_cnn_graph):
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(
            tiny_cnn_graph
        )
        report = FunctionalSimulator(small_chip).run(program, tiny_cnn_graph)
        assert report.all_matched

    def test_same_graph_compiles_deterministically(self, small_chip, tiny_transformer_graph):
        options = CompilerOptions(generate_code=False)
        first = CMSwitchCompiler(small_chip, options).compile(tiny_transformer_graph)
        second = CMSwitchCompiler(small_chip, options).compile(tiny_transformer_graph)
        assert first.graph_cycles == pytest.approx(second.graph_cycles)
        assert [s.operator_names for s in first.segments] == [
            s.operator_names for s in second.segments
        ]


class TestScalingTrends:
    def test_bigger_chip_is_never_slower(self, tiny_transformer_graph, small_chip):
        small = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(
            tiny_transformer_graph
        )
        big_chip = small_chip.with_overrides(num_arrays=small_chip.num_arrays * 4)
        big = CMSwitchCompiler(big_chip, CompilerOptions(generate_code=False)).compile(
            tiny_transformer_graph
        )
        assert big.graph_cycles <= small.graph_cycles * 1.001

    def test_batch_size_scales_latency_superlinearly_or_linearly(self, chip):
        one = build_model("bert", Workload(batch_size=1, seq_len=64, phase=Phase.ENCODE))
        four = build_model("bert", Workload(batch_size=4, seq_len=64, phase=Phase.ENCODE))
        options = CompilerOptions(generate_code=False)
        lat_one = CMSwitchCompiler(chip, options).compile(one).end_to_end_cycles
        lat_four = CMSwitchCompiler(chip, options).compile(four).end_to_end_cycles
        assert lat_four > lat_one
        assert lat_four <= 8 * lat_one
