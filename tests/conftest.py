"""Shared fixtures for the test suite.

Most compiler-level tests run against the deliberately small test chip and
the tiny synthetic models so the whole suite stays fast; a handful of
integration tests exercise the full DynaPlasia-sized configuration and the
real benchmark networks.
"""

from __future__ import annotations

import pytest

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.hardware import dynaplasia, prime, small_test_chip
from repro.models import Phase, Workload, build_model


@pytest.fixture(scope="session")
def small_chip():
    """The 8-array test chip."""
    return small_test_chip()


@pytest.fixture(scope="session")
def dynaplasia_chip():
    """The paper's DynaPlasia-like target (Table 2)."""
    return dynaplasia()

@pytest.fixture(scope="session")
def prime_chip():
    """The PRIME-like ReRAM target of the scalability study."""
    return prime()


@pytest.fixture(scope="session")
def tiny_mlp_graph():
    """Three-layer MLP."""
    return build_model("tiny-mlp", Workload(batch_size=1))


@pytest.fixture(scope="session")
def tiny_cnn_graph():
    """Four-convolution CNN at 32x32."""
    return build_model("tiny-cnn", Workload(batch_size=1))


@pytest.fixture(scope="session")
def tiny_transformer_graph():
    """Two-block, 128-hidden transformer at sequence length 16."""
    return build_model("tiny-transformer", Workload(batch_size=1, seq_len=16))


@pytest.fixture(scope="session")
def tiny_transformer_decode_graph():
    """Tiny transformer single decode step with a KV cache of 16 tokens."""
    return build_model(
        "tiny-transformer", Workload(batch_size=1, seq_len=16, phase=Phase.DECODE)
    )


@pytest.fixture(scope="session")
def compiled_tiny_cnn(small_chip, tiny_cnn_graph):
    """Tiny CNN compiled for the small chip with code generation enabled."""
    return CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(
        tiny_cnn_graph
    )


@pytest.fixture(scope="session")
def compiled_tiny_transformer(small_chip, tiny_transformer_graph):
    """Tiny transformer compiled for the small chip."""
    return CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(
        tiny_transformer_graph
    )


@pytest.fixture(scope="session")
def resnet18_graph():
    """ResNet-18 at ImageNet resolution (used by a few integration tests)."""
    return build_model("resnet18", Workload(batch_size=1))
