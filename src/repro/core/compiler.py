"""CMSwitch compiler facade.

:class:`CMSwitchCompiler` is the public entry point of the library: it
takes a computation graph and a dual-mode hardware abstraction and runs
the full DACO pipeline of the paper —

1. flatten the graph and partition oversized operators,
2. dynamic-programming network segmentation with mode-switch awareness,
3. per-segment MIP allocation of compute / memory arrays with pipelined
   scheduling and weight-duplication refinement,
4. code generation into the dual-mode meta-operator flow (DMO).

The result is a :class:`~repro.core.program.CompiledProgram` that the
timing and functional simulators (and the benchmark harness) consume.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..cost.latency import guard_infeasible
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from .cache import AllocationCache
from .program import CompiledProgram
from .codegen import generate_program
from .segmentation import NetworkSegmenter, SegmentationOptions, SegmentationResult


# Re-exported here (its historical home); defined next to the segmenter,
# which raises it for unmappable segments.
from .segmentation import NoFeasiblePlanError  # noqa: E402  (public re-export)


@dataclass
class CompilerOptions:
    """User-facing compilation options.

    Attributes:
        max_segment_operators: DP window — maximum operators per segment.
        pipelined: Pipeline operators within a segment (Eq. 9 objective).
        include_switch_cost: Charge the Eq. 1 mode-switch latency in the DP.
        use_milp: Use the MILP per-segment allocator (otherwise greedy).
        refine: Apply weight-duplication refinement after allocation.
        allow_memory_mode: Allow arrays in memory mode.  Setting this to
            False degenerates CMSwitch into a fixed-mode compiler and is
            used by baselines/ablations.
        fixed_mode_fallback: Also evaluate the fixed-mode (all-compute)
            plan and keep whichever is faster.  The dual-mode optimisation
            space strictly contains the fixed-mode space, so a production
            compiler never ships a plan worse than the fixed-mode one; the
            extra pass is part of CMSwitch's larger compilation time
            (Fig. 18).
        generate_code: Emit the meta-operator flow alongside the plan.
    """

    max_segment_operators: int = 8
    pipelined: bool = True
    include_switch_cost: bool = True
    use_milp: bool = True
    refine: bool = True
    allow_memory_mode: bool = True
    fixed_mode_fallback: bool = True
    generate_code: bool = True

    def to_segmentation_options(self) -> SegmentationOptions:
        """Translate to the segmentation pass options."""
        return SegmentationOptions(
            max_segment_operators=self.max_segment_operators,
            pipelined=self.pipelined,
            include_switch_cost=self.include_switch_cost,
            allow_memory_mode=self.allow_memory_mode,
            use_milp=self.use_milp,
            refine=self.refine,
        )


def plan_cost(result: SegmentationResult) -> float:
    """Comparable cost of a segmentation plan (NaN collapsed to ``inf``)."""
    return guard_infeasible(result.total_cycles)


def plan_arrays(result: SegmentationResult) -> int:
    """Total arrays (compute + memory + boundary) a plan occupies."""
    return sum(
        segment.compute_arrays + segment.memory_arrays for segment in result.segments
    )


def choose_plan(
    dual: SegmentationResult, fixed: SegmentationResult
) -> Tuple[SegmentationResult, bool]:
    """Pick between the dual-mode plan and the fixed-mode fallback plan.

    The comparison is robust to :data:`INFEASIBLE_LATENCY` and NaN costs:

    * if both plans are infeasible the dual-mode plan is returned (the
      caller raises :class:`NoFeasiblePlanError`) — never a silent
      ``inf < inf`` keep;
    * a strictly cheaper fixed-mode plan wins;
    * on an exact finite tie the fixed-mode plan wins only when it
      occupies fewer arrays (same latency for less hardware).

    Returns:
        ``(chosen_result, fallback_used)``.
    """
    dual_cost = plan_cost(dual)
    fixed_cost = plan_cost(fixed)
    if fixed_cost < dual_cost:
        return fixed, True
    if fixed_cost == dual_cost and math.isfinite(fixed_cost):
        if plan_arrays(fixed) < plan_arrays(dual):
            return fixed, True
    return dual, False


class CMSwitchCompiler:
    """Dual-mode-aware DNN compiler for CIM accelerators (the paper's tool).

    Args:
        hardware: Target dual-mode hardware abstraction (DEHA).
        options: Compilation options; defaults reproduce the paper's setup.
        cache: Optional shared :class:`~repro.core.cache.AllocationCache`.
            With a cache the fixed-mode fallback pass reuses the dual-mode
            pass's MILP solutions (and vice versa, where valid), and
            repeated compiles of the same network skip the solver
            entirely.  Pass one cache to many compilers (or use
            :class:`repro.service.CompileService`) to share it between
            compile requests.

    Example:
        >>> from repro.hardware import dynaplasia
        >>> from repro.models import build_model, Workload
        >>> compiler = CMSwitchCompiler(dynaplasia())
        >>> program = compiler.compile(build_model("tiny-cnn", Workload()))
        >>> program.num_segments >= 1
        True
    """

    name = "cmswitch"

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        options: Optional[CompilerOptions] = None,
        cache: Optional[AllocationCache] = None,
    ) -> None:
        self.hardware = hardware
        self.options = options or CompilerOptions()
        self.cache = cache

    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile a graph into a dual-mode execution plan.

        Args:
            graph: The computation graph (typically from
                :func:`repro.models.build_model`).

        Returns:
            The compiled program with segment plans, predicted latency and,
            when ``generate_code`` is enabled, the meta-operator flow.

        Raises:
            NoFeasiblePlanError: If no pass produces a feasible plan for a
                non-empty graph.
        """
        start = time.perf_counter()
        segmenter = NetworkSegmenter(
            self.hardware, self.options.to_segmentation_options(), cache=self.cache
        )
        result = segmenter.segment(graph)
        fallback_used = False
        allocation_calls = result.allocation_calls
        cache_hits = result.cache_hits
        disk_hits = result.disk_hits
        if self.options.allow_memory_mode and self.options.fixed_mode_fallback:
            fixed_options = self.options.to_segmentation_options()
            fixed_options.allow_memory_mode = False
            try:
                fixed_result = NetworkSegmenter(
                    self.hardware, fixed_options, cache=self.cache
                ).segment(graph)
            except NoFeasiblePlanError as exc:
                # The fallback pass proving fixed-mode infeasible does not
                # invalidate the dual-mode plan — keep it, and keep the
                # fallback pass's solver work in the totals.
                allocation_calls += exc.stats.get("allocator_solves", 0)
                cache_hits += exc.stats.get("allocation_cache_hits", 0)
                disk_hits += exc.stats.get("allocation_disk_hits", 0)
            else:
                allocation_calls += fixed_result.allocation_calls
                cache_hits += fixed_result.cache_hits
                disk_hits += fixed_result.disk_hits
                result, fallback_used = choose_plan(result, fixed_result)
        final_cost = plan_cost(result)
        if result.segments and not math.isfinite(final_cost):
            attempts = allocation_calls + cache_hits
            raise NoFeasiblePlanError(
                f"no feasible execution plan for graph {graph.name!r} on "
                f"{self.hardware.name!r}: every evaluated plan has infinite cost",
                stats={
                    "allocator_solves": allocation_calls,
                    "allocation_cache_hits": cache_hits,
                    "allocation_disk_hits": disk_hits,
                    "allocation_cache_hit_rate": (
                        cache_hits / attempts if attempts else 0.0
                    ),
                    "wall_seconds": time.perf_counter() - start,
                },
            )
        meta_program = None
        if self.options.generate_code and result.segments:
            meta_program = generate_program(graph.name, result.segments, self.hardware)
        elapsed = time.perf_counter() - start
        block_repeat = float(graph.metadata.get("block_repeat", 1.0))
        solve_attempts = allocation_calls + cache_hits
        stats = {
            "allocator_solves": allocation_calls,
            "allocation_cache_hits": cache_hits,
            "allocation_disk_hits": disk_hits,
            "allocation_cache_hit_rate": (
                cache_hits / solve_attempts if solve_attempts else 0.0
            ),
            "wall_seconds": elapsed,
        }
        program = CompiledProgram(
            graph_name=graph.name,
            compiler_name=self.name,
            hardware=self.hardware,
            segments=result.segments,
            block_repeat=block_repeat,
            compile_seconds=elapsed,
            metadata={
                "graph_metadata": dict(graph.metadata),
                "options": {
                    "max_segment_operators": self.options.max_segment_operators,
                    "pipelined": self.options.pipelined,
                    "include_switch_cost": self.options.include_switch_cost,
                    "use_milp": self.options.use_milp,
                    "refine": self.options.refine,
                    "allow_memory_mode": self.options.allow_memory_mode,
                },
                "num_flattened_units": len(result.units),
                "allocation_calls": allocation_calls,
                "dp_seconds": result.dp_seconds,
                "fixed_mode_fallback_used": fallback_used,
            },
            stats=stats,
            meta_program=meta_program,
        )
        return program


def compile_model(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    options: Optional[CompilerOptions] = None,
    cache: Optional[AllocationCache] = None,
) -> CompiledProgram:
    """Convenience wrapper: compile ``graph`` with :class:`CMSwitchCompiler`."""
    return CMSwitchCompiler(hardware, options, cache=cache).compile(graph)
