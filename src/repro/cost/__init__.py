"""Cost models: per-operator profiles, Eq. 10 latency, Eq. 1/2/4 overheads.

:mod:`repro.cost.analytical` adds the segment-free rung-0 bounds the
tiered evaluation layer (:mod:`repro.eval`) scores candidates with.
"""

from .analytical import (
    AnalyticalEstimate,
    analytical_energy_bound,
    analytical_graph_estimate,
    analytical_latency_bound,
    compute_roofline_cycles,
    operator_latency_bound,
)
from .arithmetic import (
    OperatorProfile,
    mean_arithmetic_intensity,
    profile_graph,
    profile_operator,
    total_macs,
    total_weight_elements,
)
from .energy import EnergyParameters, EnergyReport, compare_energy, estimate_energy
from .latency import (
    data_supply_times,
    INFEASIBLE_LATENCY,
    OperatorAllocation,
    best_split_latency,
    compute_rate,
    minimum_latency_all_compute,
    operator_bound,
    operator_latency_cycles,
    pipeline_fill_cycles,
    segment_latency_cycles,
    supply_rate,
)
from .switching import (
    SegmentResources,
    aggregate_resources,
    inter_segment_breakdown,
    inter_segment_cycles,
    mode_switch_counts,
    mode_switch_cycles,
    weight_reload_cycles,
    writeback_cycles,
)

__all__ = [
    "AnalyticalEstimate",
    "EnergyParameters",
    "EnergyReport",
    "INFEASIBLE_LATENCY",
    "OperatorAllocation",
    "OperatorProfile",
    "SegmentResources",
    "aggregate_resources",
    "analytical_energy_bound",
    "analytical_graph_estimate",
    "analytical_latency_bound",
    "best_split_latency",
    "compute_roofline_cycles",
    "operator_latency_bound",
    "data_supply_times",
    "compare_energy",
    "compute_rate",
    "estimate_energy",
    "inter_segment_breakdown",
    "inter_segment_cycles",
    "mean_arithmetic_intensity",
    "minimum_latency_all_compute",
    "mode_switch_counts",
    "mode_switch_cycles",
    "operator_bound",
    "operator_latency_cycles",
    "pipeline_fill_cycles",
    "profile_graph",
    "profile_operator",
    "segment_latency_cycles",
    "supply_rate",
    "total_macs",
    "total_weight_elements",
    "weight_reload_cycles",
    "writeback_cycles",
]
