"""Tests for graph flattening and the DP network segmentation."""

import pytest

from repro.core.segmentation import (
    NetworkSegmenter,
    SegmentationOptions,
    flatten_graph,
    live_elements_at_boundary,
)
from repro.hardware import small_test_chip
from repro.models import Phase, Workload, build_model


class TestFlatten:
    def test_small_graph_one_unit_per_operator(self, small_chip, tiny_cnn_graph):
        units = flatten_graph(tiny_cnn_graph, small_chip)
        cim_ops = tiny_cnn_graph.cim_operators()
        assert len(units) == len(cim_ops)
        assert [u.parent for u in units] == [op.name for op in cim_ops]

    def test_oversized_operators_are_partitioned(self, small_chip, tiny_transformer_graph):
        units = flatten_graph(tiny_transformer_graph, small_chip)
        cim_ops = tiny_transformer_graph.cim_operators()
        # FFN projections (128x256) exceed a 64x64-array budget of 8 arrays?
        # They fit on the whole chip here, so check the general invariant:
        assert len(units) >= len(cim_ops)
        for unit in units:
            assert unit.profile.min_compute_arrays(small_chip) <= small_chip.num_arrays

    def test_huge_operator_is_split(self, small_chip):
        graph = build_model("tiny-mlp", Workload(batch_size=1))
        tiny_chip = small_chip.with_overrides(num_arrays=2)
        units = flatten_graph(graph, tiny_chip)
        assert len(units) > len(graph.cim_operators())
        for unit in units:
            assert unit.profile.min_compute_arrays(tiny_chip) <= tiny_chip.num_arrays

    def test_units_are_indexed_in_order(self, small_chip, tiny_transformer_graph):
        units = flatten_graph(tiny_transformer_graph, small_chip)
        assert [u.index for u in units] == list(range(len(units)))

    def test_live_until_is_forward(self, small_chip, tiny_transformer_graph):
        units = flatten_graph(tiny_transformer_graph, small_chip)
        for unit in units:
            assert unit.live_until >= unit.index

    def test_live_elements_at_boundary_counts_crossing_data(self, small_chip, tiny_cnn_graph):
        units = flatten_graph(tiny_cnn_graph, small_chip)
        # After the first convolution its output is still needed downstream.
        live = live_elements_at_boundary(units, 0)
        assert live >= units[0].profile.output_elements

    def test_live_elements_monotone_bounds(self, small_chip, tiny_transformer_graph):
        units = flatten_graph(tiny_transformer_graph, small_chip)
        for boundary in range(len(units) - 1):
            live = live_elements_at_boundary(units, boundary)
            assert live >= 0


class TestSegmentationDP:
    def segment(self, graph, hardware, **options):
        segmenter = NetworkSegmenter(hardware, SegmentationOptions(**options))
        return segmenter.segment(graph)

    def test_segments_partition_all_units(self, small_chip, tiny_transformer_graph):
        result = self.segment(tiny_transformer_graph, small_chip)
        names = [name for seg in result.segments for name in seg.operator_names]
        assert names == [unit.name for unit in result.units]

    def test_segments_are_contiguous_and_ordered(self, small_chip, tiny_cnn_graph):
        result = self.segment(tiny_cnn_graph, small_chip)
        indices = [segment.index for segment in result.segments]
        assert indices == list(range(len(result.segments)))

    def test_every_segment_fits_chip(self, small_chip, tiny_transformer_graph):
        result = self.segment(tiny_transformer_graph, small_chip)
        for segment in result.segments:
            used = sum(a.total_arrays for a in segment.allocations.values())
            assert used <= small_chip.num_arrays

    def test_window_limits_segment_size(self, small_chip, tiny_cnn_graph):
        result = self.segment(tiny_cnn_graph, small_chip, max_segment_operators=1)
        assert all(len(segment.operator_names) == 1 for segment in result.segments)

    def test_larger_window_never_hurts(self, small_chip, tiny_cnn_graph):
        narrow = self.segment(tiny_cnn_graph, small_chip, max_segment_operators=1)
        wide = self.segment(tiny_cnn_graph, small_chip, max_segment_operators=8)
        assert wide.total_cycles <= narrow.total_cycles * 1.01

    def test_memory_mode_disabled_uses_no_memory_arrays(self, small_chip, tiny_transformer_graph):
        result = self.segment(tiny_transformer_graph, small_chip, allow_memory_mode=False)
        for segment in result.segments:
            assert segment.memory_arrays == 0
            assert segment.boundary_memory_arrays == 0

    def test_memory_mode_enabled_never_slower(self, small_chip, tiny_transformer_graph):
        dual = self.segment(tiny_transformer_graph, small_chip, allow_memory_mode=True)
        fixed = self.segment(tiny_transformer_graph, small_chip, allow_memory_mode=False)
        assert dual.total_cycles <= fixed.total_cycles * 1.10

    def test_switch_cost_flag_zeroes_breakdown(self, small_chip, tiny_transformer_graph):
        result = self.segment(tiny_transformer_graph, small_chip, include_switch_cost=False)
        for segment in result.segments:
            assert segment.inter_breakdown.get("mode_switch", 0.0) == 0.0

    def test_greedy_allocator_option(self, small_chip, tiny_cnn_graph):
        result = self.segment(tiny_cnn_graph, small_chip, use_milp=False)
        assert result.segments
        assert result.total_cycles > 0

    def test_first_segment_has_no_writeback(self, small_chip, tiny_cnn_graph):
        result = self.segment(tiny_cnn_graph, small_chip)
        first = result.segments[0]
        assert first.inter_breakdown.get("writeback", 0.0) == 0.0
        assert first.inter_breakdown.get("mode_switch", 0.0) == 0.0

    def test_allocation_calls_are_memoised(self, small_chip, tiny_cnn_graph):
        segmenter = NetworkSegmenter(small_chip, SegmentationOptions())
        result = segmenter.segment(tiny_cnn_graph)
        m = len(result.units)
        window = SegmentationOptions().max_segment_operators
        assert result.allocation_calls <= m * window

    def test_decode_graph_segments(self, small_chip, tiny_transformer_decode_graph):
        result = self.segment(tiny_transformer_decode_graph, small_chip)
        assert result.segments
        names = [name for seg in result.segments for name in seg.operator_names]
        assert len(names) == len(result.units)

    def test_dp_seconds_recorded(self, small_chip, tiny_mlp_graph):
        result = self.segment(tiny_mlp_graph, small_chip)
        assert result.dp_seconds >= 0.0
