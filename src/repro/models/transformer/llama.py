"""LLaMA 2 decoder models (Touvron et al., 2023).

LLaMA2-7B is the paper's flagship low-arithmetic-intensity benchmark: its
weights cannot fit on the CIM chip and single-batch decoding is strongly
memory-bound, which is exactly the regime where switching arrays to memory
mode pays off.  The architecture uses RMSNorm and a gated (SwiGLU)
feed-forward network.
"""

from __future__ import annotations

from ...ir.graph import Graph
from ...ir.tensor import DataType
from ..workload import Workload
from .common import TransformerConfig, build_transformer_graph

LLAMA2_7B = TransformerConfig(
    name="llama2-7b",
    hidden_size=4096,
    num_layers=32,
    num_heads=32,
    ffn_hidden=11008,
    vocab_size=32000,
    activation="silu",
    gated_ffn=True,
    norm="rmsnorm",
    causal=True,
)

LLAMA2_13B = TransformerConfig(
    name="llama2-13b",
    hidden_size=5120,
    num_layers=40,
    num_heads=40,
    ffn_hidden=13824,
    vocab_size=32000,
    activation="silu",
    gated_ffn=True,
    norm="rmsnorm",
    causal=True,
)


def build_llama2_7b(
    workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8
) -> Graph:
    """Build a LLaMA2-7B graph for the given workload phase."""
    return build_transformer_graph(LLAMA2_7B, workload, blocks=blocks, dtype=dtype)


def build_llama2_13b(
    workload: Workload, blocks: int = 1, dtype: DataType = DataType.INT8
) -> Graph:
    """Build a LLaMA2-13B graph for the given workload phase."""
    return build_transformer_graph(LLAMA2_13B, workload, blocks=blocks, dtype=dtype)
