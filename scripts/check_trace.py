"""Observability smoke check: the trace layer must tell the truth.

Two modes, both exiting non-zero on the first violation:

* ``python scripts/check_trace.py trace.json`` — validate an existing
  Chrome/Perfetto trace file: it parses, every per-lane event stream is
  monotonic, and B/E pairs nest like a well-formed bracket sequence
  (:func:`repro.obs.export.validate_chrome_trace` enforces all three).

* ``python scripts/check_trace.py`` (no argument) — self-contained
  end-to-end check: compile a small model with tracing enabled, export
  the trace, validate it, and cross-check the *pass* span durations
  against the program's own ``stats["pass_seconds"]`` — the two are
  measured by the same clock around the same calls, so they must agree
  to a small absolute tolerance.  This is the guarantee that makes the
  trace trustworthy: what the profiler shows is what the compiler
  already reported.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import Session  # noqa: E402
from repro.obs.export import validate_chrome_trace  # noqa: E402

#: Absolute per-pass slack between span duration and pass_seconds.  Both
#: are perf_counter differences around the same call; the span adds two
#: clock reads and a buffer append, so the drift is microseconds — 5 ms
#: absorbs CI scheduling noise without hiding a real mismatch.
PASS_TOLERANCE_SECONDS = 5e-3


def check_file(path: Path) -> int:
    """Validate one existing trace file (parse + monotonic + nesting)."""
    totals = validate_chrome_trace(path)
    if not totals:
        print(f"FAIL: {path} holds no spans")
        return 1
    print(f"OK: {path} valid ({len(totals)} span name(s))")
    return 0


def check_end_to_end(out_path: Path) -> int:
    """Compile with tracing on; the trace must match the compiler's stats."""
    session = Session(hardware="small-test-chip", trace=out_path)
    program = session.compile("tiny-cnn")
    session.export_trace()

    payload = json.loads(out_path.read_text(encoding="utf-8"))
    totals = validate_chrome_trace(payload)
    print(f"trace: {len(payload['traceEvents'])} events, {len(totals)} span name(s)")

    pass_seconds = program.stats["pass_seconds"]
    failures = 0
    for pass_name, reported in sorted(pass_seconds.items()):
        spanned = totals.get(pass_name)
        if spanned is None:
            print(f"FAIL: pass {pass_name!r} has stats but no span")
            failures += 1
            continue
        drift = abs(spanned - reported)
        verdict = "OK" if drift <= PASS_TOLERANCE_SECONDS else "FAIL"
        print(
            f"{verdict}: pass {pass_name:16s} span {spanned:.6f} s "
            f"vs stats {reported:.6f} s (drift {drift:.6f} s)"
        )
        if verdict == "FAIL":
            failures += 1
    for required in ("pipeline", "allocator.solve"):
        if required not in totals:
            print(f"FAIL: expected span {required!r} missing from the trace")
            failures += 1
    if not failures:
        print("OK: trace parses, nests and matches pass_seconds")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "trace",
        nargs="?",
        type=Path,
        default=None,
        help="existing trace file to validate (omit for the end-to-end check)",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=None,
        help="where the end-to-end mode writes its trace (default: a temp file)",
    )
    args = parser.parse_args(argv)
    if args.trace is not None:
        return check_file(args.trace)
    if args.out is not None:
        return check_end_to_end(args.out)
    with tempfile.TemporaryDirectory(prefix="obs-check-trace-") as tmp:
        return check_end_to_end(Path(tmp) / "trace.json")


if __name__ == "__main__":
    sys.exit(main())
