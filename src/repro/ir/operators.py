"""Operator definitions for the DNN computation graph.

Operators carry only *metadata*: shapes, weight sizes, MAC counts and the
matrix dimensions they expose when lowered onto a CIM array.  This is the
same information an ONNX export of the evaluated networks would provide and
is all the compiler requires.

The central distinction for the dual-mode compiler is:

* **CIM-mappable operators** (:class:`MatMulLike` subclasses) execute as
  matrix-vector / matrix-matrix products on arrays in *compute mode*.  They
  expose ``matmul_dims()`` describing the ``M x K @ K x N`` product.
* **Auxiliary operators** (softmax, layer-norm, elementwise, pooling, ...)
  run on the chip's peripheral function units.  They contribute activation
  traffic but negligible MAC work and are never assigned compute arrays.

A mappable operator may have a *static* matrix operand (pre-trained
weights, e.g. ``Linear``/``Conv2d``) or a *dynamic* one (produced at run
time, e.g. the ``Q @ K^T`` and ``S @ V`` products inside attention).  The
distinction matters for the inter-segment weight-reload cost (Eq. 2 in the
paper) and for the data-supply term of the latency model (Eq. 10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from .tensor import DataType, TensorSpec


class MatmulDims(NamedTuple):
    """Dimensions of the equivalent matrix product ``(M x K) @ (K x N)``.

    ``M`` rows of activations are streamed through a stationary ``K x N``
    matrix.  Convolutions are described through their im2col lowering.
    """

    m: int
    k: int
    n: int

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the product."""
        return self.m * self.k * self.n

    @property
    def stationary_elements(self) -> int:
        """Number of elements of the stationary (array-resident) operand."""
        return self.k * self.n

    @property
    def streamed_input_elements(self) -> int:
        """Number of elements streamed as the moving operand."""
        return self.m * self.k

    @property
    def output_elements(self) -> int:
        """Number of elements produced."""
        return self.m * self.n


class Operator:
    """Base class of all graph operators.

    Attributes:
        name: Unique operator name within a graph.
        inputs: Activation inputs (weights are *not* listed here).
        outputs: Produced tensors.
        weight: Optional static parameter tensor (weights + folded bias).
        attrs: Free-form attributes used by subclasses and analyses.
    """

    op_type: str = "operator"

    def __init__(
        self,
        name: str,
        inputs: Sequence[TensorSpec],
        outputs: Sequence[TensorSpec],
        weight: Optional[TensorSpec] = None,
        attrs: Optional[Dict] = None,
    ) -> None:
        if not name:
            raise ValueError("operator requires a non-empty name")
        if not outputs:
            raise ValueError(f"operator {name!r} must produce at least one output")
        self.name = name
        self.inputs: Tuple[TensorSpec, ...] = tuple(inputs)
        self.outputs: Tuple[TensorSpec, ...] = tuple(outputs)
        self.weight = weight
        self.attrs: Dict = dict(attrs or {})

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    @property
    def is_cim_mappable(self) -> bool:
        """Whether the operator runs as MVM/MMM on compute-mode arrays."""
        return False

    @property
    def has_static_weight(self) -> bool:
        """Whether the stationary operand is a pre-determined weight tensor."""
        return self.weight is not None

    @property
    def is_view(self) -> bool:
        """Whether the operator is a zero-cost metadata transformation."""
        return False

    # ------------------------------------------------------------------ #
    # size / cost metadata
    # ------------------------------------------------------------------ #
    @property
    def input_elements(self) -> int:
        """Total activation input elements."""
        return sum(t.num_elements for t in self.inputs)

    @property
    def output_elements(self) -> int:
        """Total output elements."""
        return sum(t.num_elements for t in self.outputs)

    @property
    def input_bytes(self) -> int:
        """Total activation input bytes."""
        return sum(t.num_bytes for t in self.inputs)

    @property
    def output_bytes(self) -> int:
        """Total output bytes."""
        return sum(t.num_bytes for t in self.outputs)

    @property
    def weight_elements(self) -> int:
        """Static parameter elements (0 when the operator has no weights)."""
        return self.weight.num_elements if self.weight is not None else 0

    @property
    def weight_bytes(self) -> int:
        """Static parameter bytes."""
        return self.weight.num_bytes if self.weight is not None else 0

    @property
    def macs(self) -> int:
        """Multiply-accumulate count (0 for non-MAC operators)."""
        return 0

    @property
    def flops(self) -> int:
        """Floating point / fixed point operation count (2 per MAC)."""
        return 2 * self.macs

    def matmul_dims(self) -> Optional[MatmulDims]:
        """Equivalent matrix-product dimensions, or ``None`` if not mappable."""
        return None

    # ------------------------------------------------------------------ #
    # data-movement metadata used by the cost model
    # ------------------------------------------------------------------ #
    @property
    def streamed_input_elements(self) -> int:
        """Dynamic data elements that must be supplied during execution.

        This always contains the activation inputs.  For operators whose
        stationary operand is itself dynamic (attention score/context
        products) the stationary operand is included as well, because it
        has to be written into the arrays at run time.
        """
        return self.input_elements

    @property
    def streamed_elements(self) -> int:
        """Dynamic elements moved during execution: inputs plus outputs."""
        return self.streamed_input_elements + self.output_elements

    def arithmetic_intensity(self, include_weights: bool = True) -> float:
        """Operations per data element moved (FLOPs / memory operation).

        Args:
            include_weights: When True, static weights are counted in the
                denominator as data traffic.  This matches the paper's
                model-level arithmetic-intensity numbers (Fig. 5(c)), where
                large-language-model weights must be fetched from main
                memory.  When False, only dynamic activations are counted —
                the quantity used by the per-operator latency model once
                weights have been loaded into compute arrays.
        """
        moved = self.streamed_elements
        if include_weights:
            moved += self.weight_elements
        if moved == 0:
            return 0.0
        return self.flops / moved

    # ------------------------------------------------------------------ #
    # serialisation helpers
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise to a plain dictionary (JSON friendly)."""
        return {
            "op_type": self.op_type,
            "name": self.name,
            "inputs": [t.to_dict() for t in self.inputs],
            "outputs": [t.to_dict() for t in self.outputs],
            "weight": self.weight.to_dict() if self.weight is not None else None,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        ins = ",".join(t.name for t in self.inputs)
        outs = ",".join(t.name for t in self.outputs)
        return f"<{self.op_type} {self.name} ({ins}) -> ({outs})>"


# ---------------------------------------------------------------------- #
# CIM-mappable operators
# ---------------------------------------------------------------------- #
class MatMulLike(Operator):
    """Base class for operators executable on compute-mode CIM arrays."""

    @property
    def is_cim_mappable(self) -> bool:
        return True

    @property
    def stationary_elements(self) -> int:
        """Elements of the operand held inside the compute arrays."""
        dims = self.matmul_dims()
        return dims.stationary_elements if dims is not None else 0


class Linear(MatMulLike):
    """Fully connected layer: ``[batch..., K] @ [K, N] (+ bias)``."""

    op_type = "linear"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        weight: TensorSpec,
        bias: bool = True,
        attrs: Optional[Dict] = None,
    ) -> None:
        if weight.rank != 2:
            raise ValueError(f"linear {name!r}: weight must be rank-2, got {weight.shape}")
        in_features, out_features = weight.shape
        if input.shape[-1] != in_features:
            raise ValueError(
                f"linear {name!r}: input feature dim {input.shape[-1]} does not match "
                f"weight in_features {in_features}"
            )
        if output.shape[-1] != out_features:
            raise ValueError(
                f"linear {name!r}: output feature dim {output.shape[-1]} does not match "
                f"weight out_features {out_features}"
            )
        super().__init__(name, [input], [output], weight=weight, attrs=attrs)
        self.attrs.setdefault("bias", bool(bias))

    def matmul_dims(self) -> MatmulDims:
        in_t = self.inputs[0]
        k, n = self.weight.shape
        m = in_t.num_elements // k
        return MatmulDims(m=m, k=k, n=n)

    @property
    def macs(self) -> int:
        return self.matmul_dims().macs


class MatMul(MatMulLike):
    """General matrix product of two *dynamic* operands.

    Used for the attention score (``Q @ K^T``) and context (``S @ V``)
    products.  The second operand is treated as the stationary matrix that
    would be written into compute arrays at run time; because it is dynamic
    data it is also counted as streamed traffic.  Batched products (one
    stationary matrix per attention head) process the heads sequentially on
    the same arrays, so the *simultaneous* stationary footprint is a single
    ``K x N`` matrix while every head's operand still counts as streamed
    data.
    """

    op_type = "matmul"

    def __init__(
        self,
        name: str,
        lhs: TensorSpec,
        rhs: TensorSpec,
        output: TensorSpec,
        attrs: Optional[Dict] = None,
    ) -> None:
        if lhs.shape[-1] != rhs.shape[-2]:
            raise ValueError(
                f"matmul {name!r}: inner dimensions do not agree: "
                f"{lhs.shape} @ {rhs.shape}"
            )
        super().__init__(name, [lhs, rhs], [output], weight=None, attrs=attrs)

    @property
    def has_static_weight(self) -> bool:
        return False

    def matmul_dims(self) -> MatmulDims:
        lhs, rhs = self.inputs
        k = lhs.shape[-1]
        n = rhs.shape[-1]
        m = lhs.num_elements // k
        return MatmulDims(m=m, k=k, n=n)

    @property
    def macs(self) -> int:
        lhs, rhs = self.inputs
        k = lhs.shape[-1]
        n = rhs.shape[-1]
        m = lhs.num_elements // k
        return m * k * n

    @property
    def streamed_input_elements(self) -> int:
        # Both operands are dynamic and must be supplied at run time.
        return self.input_elements


class Conv2d(MatMulLike):
    """2-D convolution in NCHW layout, described through its im2col form."""

    op_type = "conv2d"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        weight: TensorSpec,
        stride: Tuple[int, int] = (1, 1),
        padding: Tuple[int, int] = (0, 0),
        groups: int = 1,
        attrs: Optional[Dict] = None,
    ) -> None:
        if input.rank != 4 or output.rank != 4:
            raise ValueError(f"conv2d {name!r}: input/output must be rank-4 NCHW")
        if weight.rank != 4:
            raise ValueError(f"conv2d {name!r}: weight must be rank-4 OIHW")
        out_c, in_c_per_group, kh, kw = weight.shape
        n, in_c, _, _ = input.shape
        if in_c_per_group * groups != in_c:
            raise ValueError(
                f"conv2d {name!r}: weight input channels {in_c_per_group} x groups "
                f"{groups} != input channels {in_c}"
            )
        if output.shape[1] != out_c:
            raise ValueError(
                f"conv2d {name!r}: output channels {output.shape[1]} != weight "
                f"output channels {out_c}"
            )
        super().__init__(name, [input], [output], weight=weight, attrs=attrs)
        self.stride = tuple(stride)
        self.padding = tuple(padding)
        self.groups = int(groups)
        self.attrs.update(
            {"stride": list(self.stride), "padding": list(self.padding), "groups": self.groups}
        )

    @property
    def is_depthwise(self) -> bool:
        """Whether this is a depthwise convolution (groups == in channels)."""
        return self.groups == self.inputs[0].shape[1] and self.groups > 1

    def matmul_dims(self) -> MatmulDims:
        out = self.outputs[0]
        weight = self.weight
        out_c, in_c_per_group, kh, kw = weight.shape
        n, _, oh, ow = out.shape
        # im2col: every output pixel is one row of the streamed activation
        # matrix, the unrolled kernel is the stationary matrix.  Grouped and
        # depthwise convolutions keep the per-group K but replicate rows.
        m = n * oh * ow
        k = in_c_per_group * kh * kw
        n_dim = out_c // self.groups if self.groups > 1 else out_c
        if self.groups > 1:
            m = m * self.groups
        return MatmulDims(m=m, k=k, n=max(n_dim, 1))

    @property
    def macs(self) -> int:
        out = self.outputs[0]
        out_c, in_c_per_group, kh, kw = self.weight.shape
        n, _, oh, ow = out.shape
        return n * oh * ow * out_c * in_c_per_group * kh * kw


# ---------------------------------------------------------------------- #
# Auxiliary (non-MAC) operators
# ---------------------------------------------------------------------- #
class Elementwise(Operator):
    """Pointwise operator (add, mul, activation functions)."""

    op_type = "elementwise"

    def __init__(
        self,
        name: str,
        inputs: Sequence[TensorSpec],
        output: TensorSpec,
        function: str = "add",
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, inputs, [output], attrs=attrs)
        self.function = function
        self.attrs["function"] = function

    @property
    def flops(self) -> int:
        return self.output_elements


class Activation(Elementwise):
    """Unary activation function (relu / gelu / silu / sigmoid / tanh)."""

    op_type = "activation"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        function: str = "relu",
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], output, function=function, attrs=attrs)


class Softmax(Operator):
    """Softmax along the last axis (attention probabilities)."""

    op_type = "softmax"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        axis: int = -1,
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], [output], attrs=attrs)
        self.axis = axis
        self.attrs["axis"] = axis

    @property
    def flops(self) -> int:
        # exp + sum + divide per element
        return 3 * self.output_elements


class Normalization(Operator):
    """Layer / batch / RMS normalisation."""

    op_type = "normalization"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        kind: str = "layernorm",
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], [output], attrs=attrs)
        self.kind = kind
        self.attrs["kind"] = kind

    @property
    def flops(self) -> int:
        return 4 * self.output_elements


class Pool2d(Operator):
    """Spatial pooling (max or average) over NCHW tensors."""

    op_type = "pool2d"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        kernel: Tuple[int, int] = (2, 2),
        stride: Tuple[int, int] = (2, 2),
        mode: str = "max",
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], [output], attrs=attrs)
        self.kernel = tuple(kernel)
        self.stride = tuple(stride)
        self.mode = mode
        self.attrs.update({"kernel": list(self.kernel), "stride": list(self.stride), "mode": mode})

    @property
    def flops(self) -> int:
        return self.output_elements * self.kernel[0] * self.kernel[1]


class GlobalAvgPool(Operator):
    """Global average pooling reducing the spatial dimensions to 1x1."""

    op_type = "global_avg_pool"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], [output], attrs=attrs)

    @property
    def flops(self) -> int:
        return self.input_elements


class Embedding(Operator):
    """Token-embedding lookup.  The table is a static weight."""

    op_type = "embedding"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        weight: TensorSpec,
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, [input], [output], weight=weight, attrs=attrs)


class Reshape(Operator):
    """Zero-cost view change (reshape / transpose / flatten / split view)."""

    op_type = "reshape"

    def __init__(
        self,
        name: str,
        input: TensorSpec,
        output: TensorSpec,
        attrs: Optional[Dict] = None,
    ) -> None:
        if input.num_elements != output.num_elements:
            raise ValueError(
                f"reshape {name!r}: element count changes "
                f"({input.num_elements} -> {output.num_elements})"
            )
        super().__init__(name, [input], [output], attrs=attrs)

    @property
    def is_view(self) -> bool:
        return True


class Concat(Operator):
    """Concatenation along an axis (e.g. KV-cache append)."""

    op_type = "concat"

    def __init__(
        self,
        name: str,
        inputs: Sequence[TensorSpec],
        output: TensorSpec,
        axis: int = 0,
        attrs: Optional[Dict] = None,
    ) -> None:
        super().__init__(name, inputs, [output], attrs=attrs)
        self.axis = axis
        self.attrs["axis"] = axis


# ---------------------------------------------------------------------- #
# deserialisation registry
# ---------------------------------------------------------------------- #
_OPERATOR_CLASSES: Dict[str, type] = {}


def register_operator_class(cls: type) -> type:
    """Register an operator class for :func:`operator_from_dict`."""
    _OPERATOR_CLASSES[cls.op_type] = cls
    return cls


for _cls in (
    Linear,
    MatMul,
    Conv2d,
    Elementwise,
    Activation,
    Softmax,
    Normalization,
    Pool2d,
    GlobalAvgPool,
    Embedding,
    Reshape,
    Concat,
):
    register_operator_class(_cls)


def operator_from_dict(data: dict) -> Operator:
    """Reconstruct an operator from :meth:`Operator.to_dict` output.

    Reconstruction is generic: the operator is rebuilt through
    ``Operator.__new__`` and its fields restored, so subclasses with custom
    constructors round-trip without re-running validation.
    """
    op_type = data["op_type"]
    cls = _OPERATOR_CLASSES.get(op_type, Operator)
    op = cls.__new__(cls)
    op.name = data["name"]
    op.inputs = tuple(TensorSpec.from_dict(t) for t in data["inputs"])
    op.outputs = tuple(TensorSpec.from_dict(t) for t in data["outputs"])
    weight = data.get("weight")
    op.weight = TensorSpec.from_dict(weight) if weight else None
    op.attrs = dict(data.get("attrs") or {})
    # Restore commonly used attribute mirrors.
    if isinstance(op, Conv2d):
        op.stride = tuple(op.attrs.get("stride", (1, 1)))
        op.padding = tuple(op.attrs.get("padding", (0, 0)))
        op.groups = int(op.attrs.get("groups", 1))
    if isinstance(op, Pool2d):
        op.kernel = tuple(op.attrs.get("kernel", (2, 2)))
        op.stride = tuple(op.attrs.get("stride", (2, 2)))
        op.mode = op.attrs.get("mode", "max")
    if isinstance(op, Elementwise):
        op.function = op.attrs.get("function", "add")
    if isinstance(op, Softmax):
        op.axis = op.attrs.get("axis", -1)
    if isinstance(op, Normalization):
        op.kind = op.attrs.get("kind", "layernorm")
    if isinstance(op, Concat):
        op.axis = op.attrs.get("axis", 0)
    return op
