"""Tests for repro.api.Session, the deprecation shims and program parity.

The parity classes are the acceptance gate of the pipeline refactor:
every compiler configuration, the warm-cache path and the process
backend must produce programs bit-identical
(:meth:`CompiledProgram.fingerprint`) to the frozen pre-refactor
implementations in :mod:`repro.core._reference`.
"""

import warnings

import pytest

from repro.api import Session
from repro.core import AllocationCache, CMSwitchCompiler, CompilerOptions, compile_model
from repro.core._reference import reference_compile
from repro.models import Workload, build_model
from repro.service import CompileJob, compile_batch


def _options(**kwargs):
    kwargs.setdefault("generate_code", False)
    return CompilerOptions(**kwargs)


class TestSession:
    def test_compile_by_name(self, small_chip):
        session = Session(hardware=small_chip, options=_options())
        program = session.compile("tiny-mlp")
        assert program.graph_name == "tiny-mlp"
        assert program.stats["pass_seconds"]

    def test_compile_prebuilt_graph(self, small_chip, tiny_cnn_graph):
        session = Session(hardware=small_chip, options=_options())
        program = session.compile(tiny_cnn_graph)
        assert program.graph_name == tiny_cnn_graph.name

    def test_compile_accepts_preset_names(self):
        session = Session(hardware="small-test-chip", options=_options())
        program = session.compile("tiny-mlp")
        assert program.hardware.name == session.hardware.name

    def test_per_call_hardware_override(self, small_chip, dynaplasia_chip):
        session = Session(hardware=small_chip, options=_options())
        program = session.compile("tiny-mlp", hardware=dynaplasia_chip)
        assert program.hardware is dynaplasia_chip

    def test_compile_raises_for_unknown_model(self, small_chip):
        session = Session(hardware=small_chip)
        with pytest.raises(KeyError):
            session.compile("no-such-model")

    def test_compiles_share_the_session_cache(self, small_chip):
        session = Session(hardware=small_chip, options=_options())
        cold = session.compile("tiny-mlp")
        warm = session.compile("tiny-mlp")
        assert cold.stats["allocator_solves"] > 0
        assert warm.stats["allocator_solves"] == 0
        assert warm.fingerprint() == cold.fingerprint()

    def test_explicit_session_options_govern_batches_too(self, small_chip):
        # An options object pinned on the session must shape every entry
        # point, not just Session.compile.
        session = Session(
            hardware=small_chip, options=_options(max_segment_operators=2)
        )
        single = session.compile("tiny-mlp")
        batch = session.compile_batch(["tiny-mlp"])[0]
        assert batch.ok
        assert batch.program.fingerprint() == single.fingerprint()
        assert batch.job.options.max_segment_operators == 2

    def test_implicit_options_keep_batch_defaults(self, small_chip):
        # Without explicit session options, jobs carry None and the
        # service applies its historical batch default.
        session = Session(hardware=small_chip)
        assert session.job("tiny-mlp").options is None

    def test_compile_batch_coerces_model_names(self, small_chip):
        session = Session(hardware=small_chip)
        results = session.compile_batch(["tiny-mlp", "tiny-cnn"])
        assert [r.job.name for r in results] == ["tiny-mlp", "tiny-cnn"]
        assert all(r.ok for r in results)
        assert all("pass_seconds" in r.stats for r in results)

    def test_compile_batch_isolates_failures(self, small_chip):
        session = Session(hardware=small_chip)
        results = session.compile_batch(
            [session.job("tiny-mlp"), session.job("no-such-model")]
        )
        assert results[0].ok and not results[1].ok

    def test_use_cache_false_disables_sharing(self, small_chip):
        session = Session(hardware=small_chip, options=_options(), use_cache=False)
        assert session.cache is None
        first = session.compile("tiny-mlp")
        second = session.compile("tiny-mlp")
        assert second.stats["allocator_solves"] == first.stats["allocator_solves"] > 0

    def test_explore_shares_the_cache(self, small_chip):
        from repro.dse import DesignSpace

        session = Session(hardware=small_chip)
        space = DesignSpace(
            models=["tiny-mlp"],
            base_hardware=small_chip,
            workloads=[Workload(batch_size=1, seq_len=16)],
            hardware_axes={"num_arrays": [small_chip.num_arrays]},
        )
        result = session.explore(space)
        assert result.evaluated == 1
        assert result.records[0].feasible
        # The sweep's solves landed in the session cache.
        assert session.cache_stats.stores > 0

    def test_describe_mentions_hardware_and_backend(self, small_chip):
        text = Session(hardware=small_chip).describe()
        assert small_chip.name in text and "thread" in text

    def test_invalid_backend_rejected(self, small_chip):
        with pytest.raises(ValueError, match="backend"):
            Session(hardware=small_chip, backend="carrier-pigeon")


class TestDeprecationShims:
    def test_compile_model_warns_and_matches_session(self, small_chip, tiny_mlp_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = compile_model(tiny_mlp_graph, small_chip, _options())
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        fresh = Session(hardware=small_chip, options=_options()).compile(
            tiny_mlp_graph
        )
        assert legacy.fingerprint() == fresh.fingerprint()

    def test_compile_batch_function_warns_and_matches_session(self, small_chip):
        jobs = [CompileJob("tiny-mlp", hardware=small_chip)]
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            legacy = compile_batch(jobs)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        fresh = Session(hardware=small_chip).compile_batch(
            [CompileJob("tiny-mlp", hardware=small_chip)]
        )
        assert legacy[0].ok and fresh[0].ok
        assert legacy[0].program.fingerprint() == fresh[0].program.fingerprint()


OPTION_MATRIX = [
    {},
    {"allow_memory_mode": False},
    {"fixed_mode_fallback": False},
    {"refine": False},
    {"use_milp": False},
    {"pipelined": False},
    {"include_switch_cost": False},
    {"max_segment_operators": 3},
    {"generate_code": True},
]


class TestPipelineParity:
    """Pipeline output is bit-identical to the pre-refactor compiler."""

    @pytest.mark.parametrize("overrides", OPTION_MATRIX)
    def test_option_matrix_parity(self, small_chip, tiny_mlp_graph, overrides):
        kwargs = {"generate_code": False, **overrides}
        new = CMSwitchCompiler(
            small_chip, CompilerOptions(**kwargs)
        ).compile(tiny_mlp_graph)
        old = reference_compile(
            tiny_mlp_graph, small_chip, CompilerOptions(**kwargs)
        )
        assert new.fingerprint() == old.fingerprint()

    @pytest.mark.parametrize("model", ["tiny-cnn", "tiny-transformer"])
    def test_model_parity(self, small_chip, model):
        workload = Workload(batch_size=1, seq_len=16)
        graph = build_model(model, workload)
        new = CMSwitchCompiler(small_chip, _options()).compile(graph)
        old = reference_compile(graph, small_chip, _options())
        assert new.fingerprint() == old.fingerprint()
        assert new.end_to_end_cycles == old.end_to_end_cycles
        assert new.metadata["num_flattened_units"] == old.metadata["num_flattened_units"]
        assert (
            new.metadata["fixed_mode_fallback_used"]
            == old.metadata["fixed_mode_fallback_used"]
        )

    def test_shared_cache_parity(self, small_chip, tiny_cnn_graph):
        # Cold with cache, warm with cache, and the cache-free reference
        # all agree bit for bit.
        cache = AllocationCache()
        compiler = CMSwitchCompiler(small_chip, _options(), cache=cache)
        cold = compiler.compile(tiny_cnn_graph)
        warm = compiler.compile(tiny_cnn_graph)
        reference = reference_compile(tiny_cnn_graph, small_chip, _options())
        assert cold.fingerprint() == reference.fingerprint()
        assert warm.fingerprint() == reference.fingerprint()
        assert warm.stats["allocator_solves"] == 0

    def test_disk_cache_parity(self, small_chip, tiny_mlp_graph, tmp_path):
        # A fresh session warming from the disk store must reproduce the
        # cold program exactly.
        cold = Session(
            hardware=small_chip, options=_options(), cache_dir=tmp_path / "ac"
        ).compile(tiny_mlp_graph)
        warm_session = Session(
            hardware=small_chip, options=_options(), cache_dir=tmp_path / "ac"
        )
        warm = warm_session.compile(tiny_mlp_graph)
        assert warm.stats["allocator_solves"] == 0
        assert warm.stats["allocation_disk_hits"] > 0
        assert warm.fingerprint() == cold.fingerprint()
        assert cold.fingerprint() == reference_compile(
            tiny_mlp_graph, small_chip, _options()
        ).fingerprint()

    def test_process_backend_parity(self, small_chip, tmp_path):
        # The process pool ships specs through pickle and recompiles in
        # workers sharing only the disk store; programs must still be
        # bit-identical to the in-process reference.
        workload = Workload(batch_size=1, seq_len=16)
        jobs = [CompileJob("tiny-mlp", workload=workload, hardware=small_chip)]
        process = Session(
            hardware=small_chip,
            backend="process",
            cache_dir=tmp_path / "ac",
            max_workers=1,
        ).compile_batch(jobs)
        assert process[0].ok, process[0].error
        graph = build_model("tiny-mlp", workload)
        reference = reference_compile(graph, small_chip, _options())
        assert process[0].program.fingerprint() == reference.fingerprint()


class TestFingerprint:
    def test_stable_across_recompiles(self, small_chip, tiny_mlp_graph):
        a = CMSwitchCompiler(small_chip, _options()).compile(tiny_mlp_graph)
        b = CMSwitchCompiler(small_chip, _options()).compile(tiny_mlp_graph)
        assert a.fingerprint() == b.fingerprint()

    def test_differs_across_models(self, small_chip, tiny_mlp_graph, tiny_cnn_graph):
        a = CMSwitchCompiler(small_chip, _options()).compile(tiny_mlp_graph)
        b = CMSwitchCompiler(small_chip, _options()).compile(tiny_cnn_graph)
        assert a.fingerprint() != b.fingerprint()

    def test_differs_with_code_generation(self, small_chip, tiny_mlp_graph):
        without = CMSwitchCompiler(small_chip, _options()).compile(tiny_mlp_graph)
        with_code = CMSwitchCompiler(
            small_chip, _options(generate_code=True)
        ).compile(tiny_mlp_graph)
        assert without.fingerprint() != with_code.fingerprint()

    def test_insensitive_to_wall_clock_stats(self, small_chip, tiny_mlp_graph):
        program = CMSwitchCompiler(small_chip, _options()).compile(tiny_mlp_graph)
        before = program.fingerprint()
        program.stats["wall_seconds"] = 12345.0
        program.compile_seconds = 999.0
        program.metadata["dp_seconds"] = 777.0
        assert program.fingerprint() == before
