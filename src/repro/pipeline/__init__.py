"""Pass-based compile pipeline (the DACO flow as first-class values).

The paper's DACO pipeline — flatten, partition oversized operators, DP
segmentation, per-segment MIP allocation, fixed-mode fallback,
refinement, DMO code generation — used to live fused inside
``CMSwitchCompiler.compile()``.  This package decomposes it into named
:class:`Pass` objects over a typed :class:`PipelineContext`, run by a
:class:`Pipeline` that supports pass replacement/insertion and
instrumentation hooks, and surfaces per-pass wall times in
``CompiledProgram.stats["pass_seconds"]``.

Typical use goes through :class:`repro.api.Session` or
:class:`repro.core.compiler.CMSwitchCompiler` (both run this pipeline
under the hood); direct use looks like::

    from repro.pipeline import PipelineContext, build_pipeline, finalize

    ctx = PipelineContext(graph=graph, hardware=hardware, options=options)
    pipeline = build_pipeline()
    pipeline.run(ctx)
    program = finalize(ctx)

The PUMA/OCC baselines are pipeline *configurations* too — they swap the
``Segment``/``Allocate`` passes for their own strategies and keep the
rest (see :mod:`repro.baselines.passes`); CIM-MLC is this very pipeline
with memory mode pinned off.
"""

from .context import PipelineContext, TraceEvent
from .passes import (
    Allocate,
    Codegen,
    FixedModeFallback,
    Flatten,
    PartitionOversized,
    Pass,
    Refine,
    Segment,
)
from .pipeline import (
    Pipeline,
    build_pipeline,
    default_passes,
    finalize,
    instrumentation_stats,
)

__all__ = [
    "Allocate",
    "Codegen",
    "FixedModeFallback",
    "Flatten",
    "PartitionOversized",
    "Pass",
    "Pipeline",
    "PipelineContext",
    "Refine",
    "Segment",
    "TraceEvent",
    "build_pipeline",
    "default_passes",
    "finalize",
    "instrumentation_stats",
]
