"""Figure 15: compiled compute/memory allocation for VGG-16 and OPT-6.7B.

The paper visualises the per-segment allocation: VGG-16's early
convolutions share segments and are compute-dominated while later layers
receive memory arrays; an OPT-6.7B layer puts 33-67 % of the arrays used by
its projection/FFN operators into memory mode.
"""

import pytest

from conftest import record

from repro.experiments import allocation_report
from repro.experiments.allocation_report import render_report


@pytest.mark.benchmark(group="fig15")
def test_fig15a_vgg16_allocation(benchmark, chip):
    """Per-segment allocation of VGG-16 (Fig. 15(a))."""
    rows = benchmark.pedantic(
        lambda: allocation_report("vgg16", hardware=chip), rounds=1, iterations=1
    )
    record(benchmark, rows, render_report("vgg16", rows))
    # Early layers grouped into shared segments, later layers on their own.
    assert rows[0]["num_operators"] >= 2
    # Every segment respects the chip budget.
    assert all(r["compute_arrays"] + r["memory_arrays"] <= chip.num_arrays for r in rows)


@pytest.mark.benchmark(group="fig15")
def test_fig15b_opt_allocation(benchmark, chip):
    """Per-segment allocation of one OPT-6.7B layer (Fig. 15(b))."""
    rows = benchmark.pedantic(
        lambda: allocation_report("opt-6.7b", hardware=chip), rounds=1, iterations=1
    )
    record(benchmark, rows, render_report("opt-6.7b", rows))
    # The transformer layer places a meaningful share of arrays in memory mode.
    assert any(row["memory_arrays"] > 0 for row in rows)
