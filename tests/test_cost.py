"""Tests for the cost models: profiles, Eq. 10 latency, Eq. 1/2/4 overheads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import (
    OperatorAllocation,
    OperatorProfile,
    SegmentResources,
    aggregate_resources,
    best_split_latency,
    compute_rate,
    data_supply_times,
    inter_segment_breakdown,
    inter_segment_cycles,
    mean_arithmetic_intensity,
    minimum_latency_all_compute,
    mode_switch_counts,
    mode_switch_cycles,
    operator_bound,
    operator_latency_cycles,
    profile_graph,
    profile_operator,
    segment_latency_cycles,
    weight_reload_cycles,
    writeback_cycles,
)
from repro.hardware import dynaplasia, small_test_chip
from repro.ir import Linear, MatMul, TensorSpec


def linear_profile(m=64, k=256, n=256, extra=0):
    op = Linear(
        "fc",
        input=TensorSpec("x", (m, k)),
        output=TensorSpec("y", (m, n)),
        weight=TensorSpec("w", (k, n)),
    )
    return profile_operator(op, extra)


def matmul_profile(b=4, m=16, k=64, n=64):
    op = MatMul(
        "qk",
        lhs=TensorSpec("q", (b, m, k)),
        rhs=TensorSpec("kt", (b, k, n)),
        output=TensorSpec("s", (b, m, n)),
    )
    return profile_operator(op)


class TestProfiles:
    def test_macs_and_dims(self):
        profile = linear_profile(64, 256, 128)
        assert profile.macs == 64 * 256 * 128
        assert (profile.matmul_m, profile.matmul_k, profile.matmul_n) == (64, 256, 128)

    def test_min_compute_arrays(self, small_chip):
        profile = linear_profile(4, 128, 128)
        assert profile.min_compute_arrays(small_chip) == 4  # (128/64)^2

    def test_memory_arrays_for_working_set(self, small_chip):
        profile = linear_profile(64, 256, 256)
        expected = -(-profile.working_set_elements // small_chip.array_capacity_elements)
        assert profile.memory_arrays_for_working_set(small_chip) == expected

    def test_effective_ai_excludes_static_weights(self):
        profile = linear_profile(1, 1024, 1024)
        assert profile.effective_arithmetic_intensity > profile.model_arithmetic_intensity

    def test_dynamic_matmul_counts_both_operands(self):
        profile = matmul_profile()
        assert not profile.has_static_weight
        assert profile.streamed_input_elements == 4 * 16 * 64 + 4 * 64 * 64

    def test_extra_streamed_lowers_effective_ai(self):
        base = linear_profile()
        loaded = linear_profile(extra=100_000)
        assert loaded.effective_arithmetic_intensity < base.effective_arithmetic_intensity

    def test_profile_rejects_non_mappable(self, tiny_cnn_graph):
        aux = next(op for op in tiny_cnn_graph.operators if not op.is_cim_mappable)
        with pytest.raises(ValueError):
            profile_operator(aux)

    def test_profile_graph_covers_all_cim_operators(self, tiny_transformer_graph):
        profiles = profile_graph(tiny_transformer_graph)
        assert set(profiles) == {op.name for op in tiny_transformer_graph.cim_operators()}

    def test_mean_arithmetic_intensity(self, tiny_cnn_graph):
        profiles = profile_graph(tiny_cnn_graph)
        assert mean_arithmetic_intensity(profiles.values()) > 0


class TestLatencyModel:
    def test_zero_compute_arrays_infeasible(self, small_chip):
        profile = linear_profile()
        latency = operator_latency_cycles(profile, OperatorAllocation(0, 0), small_chip)
        assert latency == float("inf")

    def test_more_compute_arrays_never_slower(self, small_chip):
        profile = linear_profile(256, 256, 256)
        latencies = [
            operator_latency_cycles(profile, OperatorAllocation(c, 0), small_chip)
            for c in range(1, small_chip.num_arrays + 1)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(latencies, latencies[1:]))

    def test_more_memory_arrays_never_slower(self, small_chip):
        profile = matmul_profile(8, 64, 64, 64)
        latencies = [
            operator_latency_cycles(profile, OperatorAllocation(4, m), small_chip)
            for m in range(0, small_chip.num_arrays - 3)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(latencies, latencies[1:]))

    @given(
        compute=st.integers(min_value=1, max_value=8),
        memory=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_latency_positive_and_finite(self, compute, memory):
        hw = small_test_chip()
        profile = linear_profile(32, 128, 128)
        latency = operator_latency_cycles(profile, OperatorAllocation(compute, memory), hw)
        assert latency > 0
        assert latency != float("inf")

    def test_compute_rate_degrades_when_underprovisioned(self, small_chip):
        profile = linear_profile(4, 256, 256)  # needs 16 arrays on the small chip
        full = compute_rate(profile, 16, small_chip)
        half = compute_rate(profile, 8, small_chip)
        assert half < full / 1.5

    def test_supply_times_split_on_and_off_chip(self, small_chip):
        profile = matmul_profile(16, 64, 64, 64)
        off_none, on_none = data_supply_times(profile, 0, small_chip)
        off_many, on_many = data_supply_times(profile, small_chip.num_arrays, small_chip)
        assert off_none > off_many
        assert on_none >= 0 and on_many >= 0

    def test_operator_bound_labels(self, dynaplasia_chip):
        compute_heavy = linear_profile(1024, 320, 320)
        assert operator_bound(
            compute_heavy, OperatorAllocation(1, 32), dynaplasia_chip
        ) == "compute"
        memory_heavy = matmul_profile(32, 64, 128, 64)
        assert operator_bound(
            memory_heavy, OperatorAllocation(16, 0), dynaplasia_chip
        ) == "memory"

    def test_minimum_latency_all_compute_matches_zero_memory(self, small_chip):
        profile = linear_profile()
        direct = operator_latency_cycles(
            profile, OperatorAllocation(small_chip.num_arrays, 0), small_chip
        )
        assert minimum_latency_all_compute(profile, small_chip.num_arrays, small_chip) == direct

    def test_best_split_uses_whole_budget_or_less(self, small_chip):
        profile = matmul_profile(8, 64, 64, 64)
        latency, allocation = best_split_latency(profile, small_chip.num_arrays, small_chip)
        assert latency < float("inf")
        assert allocation.total_arrays <= small_chip.num_arrays

    def test_segment_latency_pipelined_vs_serial(self, small_chip):
        profiles = {
            "a": linear_profile(32, 64, 64),
            "b": linear_profile(32, 64, 64),
        }
        allocations = {
            "a": OperatorAllocation(2, 1),
            "b": OperatorAllocation(2, 1),
        }
        pipelined = segment_latency_cycles(profiles, allocations, small_chip, pipelined=True)
        serial = segment_latency_cycles(profiles, allocations, small_chip, pipelined=False)
        assert serial > pipelined / 2  # serial sums, pipelined takes the max

    def test_segment_latency_missing_allocation_raises(self, small_chip):
        profiles = {"a": linear_profile()}
        with pytest.raises(KeyError):
            segment_latency_cycles(profiles, {}, small_chip)

    def test_empty_segment_has_zero_latency(self, small_chip):
        assert segment_latency_cycles({}, {}, small_chip) == 0.0


class TestInterSegmentCosts:
    def make_resources(self, compute, memory, live=0, idle=0):
        return SegmentResources(
            compute_arrays=compute,
            memory_arrays=memory,
            live_output_elements=live,
            idle_arrays=idle,
        )

    def test_switch_counts_first_segment_free(self):
        counts = mode_switch_counts(None, self.make_resources(4, 4))
        assert counts == {"memory_to_compute": 0, "compute_to_memory": 0}

    def test_switch_counts_net_changes_only(self):
        prev = self.make_resources(compute=6, memory=2)
        curr = self.make_resources(compute=2, memory=6)
        counts = mode_switch_counts(prev, curr)
        assert counts["compute_to_memory"] == 4
        assert counts["memory_to_compute"] == 0

    def test_switch_cycles_use_hardware_latencies(self, small_chip):
        prev = self.make_resources(compute=2, memory=4)
        curr = self.make_resources(compute=5, memory=1)
        cycles = mode_switch_cycles(prev, curr, small_chip)
        assert cycles == 3 * small_chip.switch_latency_m2c

    def test_writeback_zero_without_live_data(self, small_chip):
        prev = self.make_resources(4, 0, live=0)
        assert writeback_cycles(prev, self.make_resources(4, 0), small_chip) == 0.0

    def test_writeback_charges_overflow_only(self, small_chip):
        live = small_chip.buffer_elements + 10_000
        prev = self.make_resources(4, 0, live=live)
        curr = self.make_resources(4, 0)
        cycles = writeback_cycles(prev, curr, small_chip, allow_boundary_buffering=False)
        assert cycles == pytest.approx(2 * 10_000 / small_chip.d_extern)

    def test_boundary_buffering_reduces_writeback(self, small_chip):
        live = small_chip.buffer_elements + 3 * small_chip.array_capacity_elements
        prev = self.make_resources(2, 0, live=live, idle=4)
        curr = self.make_resources(2, 0, idle=4)
        with_buffering = writeback_cycles(prev, curr, small_chip, allow_boundary_buffering=True)
        without = writeback_cycles(prev, curr, small_chip, allow_boundary_buffering=False)
        assert with_buffering < without

    def test_weight_reload_eq2_max_over_operators(self, small_chip):
        profiles = {"a": linear_profile(4, 128, 128), "b": linear_profile(4, 64, 64)}
        allocations = {"a": OperatorAllocation(4, 0), "b": OperatorAllocation(1, 0)}
        cycles = weight_reload_cycles(profiles, allocations, small_chip)
        assert cycles == pytest.approx(4 * small_chip.array_write_latency_cycles)

    def test_weight_reload_skips_dynamic_operands(self, small_chip):
        profiles = {"qk": matmul_profile()}
        allocations = {"qk": OperatorAllocation(2, 0)}
        assert weight_reload_cycles(profiles, allocations, small_chip) == 0.0

    def test_weight_reload_offchip_bound_optional(self, small_chip):
        profiles = {"a": linear_profile(4, 256, 256)}
        allocations = {"a": OperatorAllocation(16, 0)}
        plain = weight_reload_cycles(profiles, allocations, small_chip)
        bounded = weight_reload_cycles(
            profiles, allocations, small_chip, include_offchip_transfer=True
        )
        assert bounded >= plain

    def test_inter_segment_cycles_composition(self, small_chip):
        profiles = {"a": linear_profile(4, 128, 128)}
        allocations = {"a": OperatorAllocation(4, 0)}
        prev = self.make_resources(2, 2, live=50_000, idle=2)
        curr = aggregate_resources(profiles, allocations, num_arrays_total=small_chip.num_arrays)
        breakdown = inter_segment_breakdown(prev, curr, profiles, allocations, small_chip)
        total = inter_segment_cycles(prev, curr, profiles, allocations, small_chip)
        assert total == pytest.approx(sum(breakdown.values()))

    def test_include_switch_cost_flag(self, small_chip):
        profiles = {"a": linear_profile(4, 128, 128)}
        allocations = {"a": OperatorAllocation(4, 0)}
        prev = self.make_resources(0, 6)
        curr = aggregate_resources(profiles, allocations, num_arrays_total=small_chip.num_arrays)
        with_switch = inter_segment_cycles(prev, curr, profiles, allocations, small_chip)
        without = inter_segment_cycles(
            prev, curr, profiles, allocations, small_chip, include_switch_cost=False
        )
        assert with_switch >= without

    def test_aggregate_resources_counts(self, small_chip):
        profiles = {"a": linear_profile(4, 128, 128), "b": linear_profile(4, 64, 64)}
        allocations = {"a": OperatorAllocation(3, 1), "b": OperatorAllocation(1, 2)}
        resources = aggregate_resources(
            profiles, allocations, live_output_elements=123, num_arrays_total=8
        )
        assert resources.compute_arrays == 4
        assert resources.memory_arrays == 3
        assert resources.idle_arrays == 1
        assert resources.live_output_elements == 123
        assert resources.total_arrays == 7
        assert resources.static_weight_elements == 128 * 128 + 64 * 64
