"""Figure 6: layer-wise and sequence-length-dependent arithmetic intensity.

Fig. 6(a): the per-layer arithmetic intensity of ResNet-50 spans more than
an order of magnitude across its four stages.  Fig. 6(b): BERT-large's
intensity grows with the sequence length and differs between computation
stages (FFN projections grow fastest, QKV products stay lower).
"""

import pytest

from conftest import record

from repro.experiments import bert_intensity_vs_sequence, resnet_layer_intensity


@pytest.mark.benchmark(group="fig06")
def test_fig06a_resnet_layerwise_intensity(benchmark, chip):
    """Layer-wise arithmetic intensity of ResNet-50 (Fig. 6(a))."""
    rows = benchmark.pedantic(resnet_layer_intensity, rounds=1, iterations=1)
    conv_rows = [row for row in rows if row["op_type"] == "conv2d"]
    intensities = [row["intensity"] for row in conv_rows]
    report = (
        "Fig. 6(a): ResNet-50 layer-wise intensity "
        f"(min {min(intensities):.0f}, max {max(intensities):.0f}, layers {len(conv_rows)})"
    )
    record(benchmark, rows, report)
    # The paper reports a spread from below 100 to over 700 FLOPs/MOP.
    assert max(intensities) > 5 * min(intensities)


@pytest.mark.benchmark(group="fig06")
def test_fig06b_bert_intensity_vs_sequence_length(benchmark, chip, grids):
    """BERT-large stage intensity across sequence lengths (Fig. 6(b))."""
    lengths = (128, 512, 2048) if len(grids["sequence_lengths"]) <= 3 else (128, 512, 4096)

    def run():
        return bert_intensity_vs_sequence(lengths)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Fig. 6(b): BERT-large arithmetic intensity per stage"]
    for seq_len, stages in rows.items():
        parts = ", ".join(f"{name}={value:.0f}" for name, value in sorted(stages.items()))
        lines.append(f"  seq {seq_len:5d}: {parts}")
    record(benchmark, {str(k): v for k, v in rows.items()}, "\n".join(lines))
    short, long = min(rows), max(rows)
    assert rows[long]["model"] > rows[short]["model"]
    assert rows[long]["FFN (FC)"] > rows[long]["MHA (QKV)"]
