"""Functional simulator: array-granular execution of compiled programs.

The paper verifies its compilation results by executing the generated
meta-operator flows on a functional simulator and comparing against the
PyTorch framework.  This module does the same with numpy as the reference:

* every CIM-mappable operator of the compiled graph is executed *at array
  granularity* — its stationary operand is tiled into ``rows x cols`` CIM
  arrays exactly as the mapping prescribes, every array performs its own
  partial MVM, and partial sums are accumulated along the K dimension;
* the result is compared against the dense numpy reference
  (:mod:`repro.sim.reference`);
* chip state (array modes, ownership) is driven by the program's
  meta-operator flow, so illegal mappings (two operators on one array,
  compute on a memory-mode array) surface as simulation errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.metaop import ComputeOp, MetaProgram, ParallelBlock, SwitchOp, SwitchType, WeightLoadOp
from ..core.program import CompiledProgram
from ..hardware.chip import CIMChip
from ..hardware.deha import ArrayMode, DualModeHardwareAbstraction
from ..ir.graph import Graph
from ..ir.operators import Operator
from .reference import ReferenceExecutor, deterministic_tensor


class FunctionalSimulationError(RuntimeError):
    """Raised when the compiled program cannot be executed functionally."""


@dataclass
class OperatorCheck:
    """Comparison result for one CIM-mappable operator.

    Attributes:
        operator: Operator name.
        max_abs_error: Maximum absolute difference between the array-level
            result and the dense reference.
        arrays_used: Number of array tiles the stationary operand occupied.
        matched: Whether the result matches within tolerance.
    """

    operator: str
    max_abs_error: float
    arrays_used: int
    matched: bool


@dataclass
class FunctionalReport:
    """Aggregate result of a functional simulation run."""

    graph_name: str
    checks: List[OperatorCheck] = field(default_factory=list)
    switch_events: int = 0
    mode_switch_cycles: float = 0.0

    @property
    def all_matched(self) -> bool:
        """Whether every checked operator matched the reference."""
        return all(check.matched for check in self.checks)

    @property
    def max_abs_error(self) -> float:
        """Worst-case absolute error across all operators."""
        return max((check.max_abs_error for check in self.checks), default=0.0)

    def summary(self) -> str:
        """One-line summary for logs and examples."""
        status = "PASS" if self.all_matched else "FAIL"
        return (
            f"[{status}] {self.graph_name}: {len(self.checks)} operators checked, "
            f"max |err| = {self.max_abs_error:.3e}, "
            f"{self.switch_events} mode-switch events"
        )


def execute_tiled_matmul(
    streamed: np.ndarray,
    stationary: np.ndarray,
    array_rows: int,
    array_cols: int,
) -> Tuple[np.ndarray, int]:
    """Execute ``streamed @ stationary`` through per-array tile products.

    The stationary ``K x N`` matrix is cut into ``rows x cols`` tiles; each
    tile is a CIM array performing an MVM on its slice of the streamed
    operand; partial results accumulate over K tiles and concatenate over
    N tiles — the in-array MAC / bit-line accumulation of §2.1.2.

    Returns:
        The product and the number of array tiles used.
    """
    k, n = stationary.shape
    result = np.zeros((streamed.shape[0], n), dtype=np.float64)
    tiles = 0
    for k_lo in range(0, k, array_rows):
        k_hi = min(k, k_lo + array_rows)
        for n_lo in range(0, n, array_cols):
            n_hi = min(n, n_lo + array_cols)
            tiles += 1
            result[:, n_lo:n_hi] += streamed[:, k_lo:k_hi].astype(np.float64) @ stationary[
                k_lo:k_hi, n_lo:n_hi
            ].astype(np.float64)
    return result.astype(np.float32), tiles


class FunctionalSimulator:
    """Executes a compiled program functionally and checks it.

    Args:
        hardware: Hardware abstraction (array geometry, switch latencies).
        tolerance: Maximum absolute error accepted per operator.
        seed: Seed for deterministic synthetic inputs/weights.
    """

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        tolerance: float = 1e-3,
        seed: int = 0,
    ) -> None:
        self.hardware = hardware
        self.tolerance = tolerance
        self.reference = ReferenceExecutor(seed=seed)

    # ------------------------------------------------------------------ #
    # program-level simulation
    # ------------------------------------------------------------------ #
    def run(self, program: CompiledProgram, graph: Graph) -> FunctionalReport:
        """Execute the compiled program against its source graph.

        The dense reference execution provides every operator's input
        tensors; each CIM-mappable operator is then re-executed at array
        granularity and compared.  The meta-operator flow (when present)
        drives the chip-state model so mode switches are validated.

        Raises:
            FunctionalSimulationError: If the program references operators
                missing from the graph.
        """
        values = self.reference.run(graph)
        report = FunctionalReport(graph_name=graph.name)

        if program.meta_program is not None:
            report.switch_events, report.mode_switch_cycles = self._replay_switches(
                program.meta_program
            )

        operators = {op.name: op for op in graph.operators}
        for segment in program.segments:
            for name in segment.operator_names:
                source_name = self._source_operator_name(name)
                if source_name not in operators:
                    raise FunctionalSimulationError(
                        f"compiled operator {name!r} has no source operator in graph"
                    )
                op = operators[source_name]
                check = self._check_operator(op, values)
                if check is not None:
                    # Partitioned shards re-check the same parent once.
                    if not any(c.operator == check.operator for c in report.checks):
                        report.checks.append(check)
        return report

    def _replay_switches(self, meta_program: MetaProgram) -> Tuple[int, float]:
        """Drive the chip-state model through the program's mode switches."""
        chip = CIMChip(self.hardware)
        events = 0
        for op in meta_program.operators():
            if isinstance(op, SwitchOp):
                mode = (
                    ArrayMode.MEMORY
                    if op.switch_type is SwitchType.TO_MEMORY
                    else ArrayMode.COMPUTE
                )
                chip.switch_mode(op.array_addresses, mode)
                events += len(op.array_addresses)
        return events, chip.switch_cycles

    @staticmethod
    def _source_operator_name(name: str) -> str:
        """Map a partitioned shard name back to its parent operator."""
        return name.split("::", 1)[0]

    # ------------------------------------------------------------------ #
    # operator-level check
    # ------------------------------------------------------------------ #
    def _check_operator(
        self, op: Operator, values: Dict[str, np.ndarray]
    ) -> Optional[OperatorCheck]:
        if not op.is_cim_mappable:
            return None
        dims = op.matmul_dims()
        reference = values[op.outputs[0].name]
        if op.has_static_weight:
            stationary = self.reference.weight_of(op)
            if op.op_type == "conv2d":
                # The convolution's array-level form is its im2col matmul;
                # reuse the reference output as ground truth and rebuild the
                # streamed matrix from the reference input.
                streamed, stationary, reference2d = self._conv_as_matmul(op, values)
                reference = reference2d
            else:
                streamed = values[op.inputs[0].name].reshape(-1, dims.k)
                stationary = stationary.reshape(dims.k, dims.n)
                reference = reference.reshape(-1, dims.n)
        else:
            lhs = values[op.inputs[0].name]
            rhs = values[op.inputs[1].name]
            if lhs.ndim > 2:
                # Batched attention product: check each batch element through
                # the tiled path and stack.
                flat_l = lhs.reshape(-1, lhs.shape[-2], lhs.shape[-1])
                flat_r = rhs.reshape(-1, rhs.shape[-2], rhs.shape[-1])
                outputs = []
                tiles = 0
                for left, right in zip(flat_l, flat_r):
                    out, t = execute_tiled_matmul(
                        left, right, self.hardware.array_rows, self.hardware.array_cols
                    )
                    outputs.append(out)
                    tiles += t
                result = np.stack(outputs).reshape(reference.shape)
                error = float(np.max(np.abs(result - reference))) if result.size else 0.0
                return OperatorCheck(op.name, error, tiles, error <= self.tolerance)
            streamed = lhs.reshape(-1, dims.k)
            stationary = rhs.reshape(dims.k, dims.n)
            reference = reference.reshape(-1, dims.n)

        result, tiles = execute_tiled_matmul(
            streamed, stationary, self.hardware.array_rows, self.hardware.array_cols
        )
        error = float(np.max(np.abs(result - reference))) if result.size else 0.0
        return OperatorCheck(op.name, error, tiles, error <= self.tolerance)

    def _conv_as_matmul(self, op, values):
        """Express a convolution as its im2col matmul for the tiled check."""
        from .reference import _im2col

        x = values[op.inputs[0].name]
        weight = self.reference.weight_of(op)
        out_c, in_c_per_group, kh, kw = weight.shape
        if op.groups == 1:
            cols, oh, ow = _im2col(x, kh, kw, op.stride, op.padding)
            wmat = weight.reshape(out_c, -1).T
            n = x.shape[0]
            reference = (
                values[op.outputs[0].name].transpose(0, 2, 3, 1).reshape(n * oh * ow, out_c)
            )
            return cols, wmat, reference
        # Grouped/depthwise convolution: check the first group only (all
        # groups share the same mapping structure).
        in_per_group = x.shape[1] // op.groups
        out_per_group = out_c // op.groups
        xg = x[:, :in_per_group]
        wg = weight[:out_per_group]
        cols, oh, ow = _im2col(xg, kh, kw, op.stride, op.padding)
        wmat = wg.reshape(out_per_group, -1).T
        n = x.shape[0]
        reference = (
            values[op.outputs[0].name][:, :out_per_group]
            .transpose(0, 2, 3, 1)
            .reshape(n * oh * ow, out_per_group)
        )
        return cols, wmat, reference
