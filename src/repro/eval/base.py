"""The Evaluator protocol and its typed :class:`Evaluation` result.

Before this layer existed, "evaluate a design candidate" *was* "fully
compile it": the DSE runner could only hand jobs to the
:class:`~repro.service.CompileService` and then pick latency/energy off
the compiled program itself.  The evaluator layer separates the
question ("how good is this candidate, and is it feasible?") from the
machinery that answers it, so answers of different cost and fidelity
become interchangeable:

* :class:`~repro.eval.analytical.AnalyticalEvaluator` — closed-form
  lower bounds, zero allocator solves (rung 0 of multi-fidelity
  search);
* :class:`~repro.eval.greedy.GreedyEvaluator` — the full pipeline with
  the greedy allocator instead of the MILP: a real plan's metrics (not
  a bound) at zero MILP solves, the middle rung of multi-fidelity
  search;
* :class:`~repro.eval.compiled.CachedEvaluator` — a persistent-store
  ``contains`` probe followed by a warm compile; cold candidates are
  reported as such instead of being solved;
* :class:`~repro.eval.compiled.CompileEvaluator` — today's full
  pipeline, unchanged (the parity suite ratchets that its programs are
  bit-identical to direct compilation).

Every implementation answers with the same typed :class:`Evaluation`:
the metrics, a fidelity tag, whether the metrics are lower bounds, and
the cost of producing the answer (wall time and allocator solves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.program import CompiledProgram
from ..service import CompileJob

__all__ = [
    "Evaluation",
    "Evaluator",
    "FIDELITIES",
    "FIDELITY_RANK",
    "fidelity_rank",
]

#: Fidelity tags, cheapest first.  ``"greedy"`` runs the full pipeline
#: with the heuristic allocator (a real plan, zero MILP solves);
#: ``"cached"`` counts as full fidelity (its metrics come from a real
#: compile) but can only answer for warm candidates.
FIDELITIES = ("analytical", "greedy", "cached", "compile")

#: Ordering used to decide whether an existing record satisfies a
#: requested fidelity (higher rank answers for lower requests).
FIDELITY_RANK = {"analytical": 0, "greedy": 1, "cached": 2, "compile": 3}


def fidelity_rank(fidelity: Optional[str]) -> int:
    """Rank of a fidelity tag; unknown/legacy tags count as full fidelity.

    Records written before fidelity existed were all full compiles, so
    an absent tag must rank as ``"compile"`` for resume compatibility.
    """
    return FIDELITY_RANK.get(fidelity or "compile", FIDELITY_RANK["compile"])


@dataclass
class Evaluation:
    """Typed outcome of evaluating one candidate at one fidelity.

    Attributes:
        fidelity: Which tier produced the answer (``"analytical"`` /
            ``"greedy"`` / ``"cached"`` / ``"compile"``).
        feasible: Whether the candidate can execute on the chip.  At
            analytical fidelity this verdict is exact (the shared
            :class:`~repro.core.feasibility.FeasibilityModel` predicates
            agree with the allocators by construction).
        latency_ms / cycles / energy_mj: The candidate's metrics
            (end-to-end).  Lower bounds when ``lower_bound`` is set.
        num_segments: Segments of the compiled plan (0 when unknown —
            the analytical tier never segments).
        peak_arrays: Peak array occupancy (at analytical fidelity, the
            provable minimum any plan must occupy).
        allocator_solves / cache_hits / disk_hits: Solver-side cost of
            producing this answer (all zero for the analytical tier).
        eval_seconds: Wall-clock cost of producing this answer.
        lower_bound: True when the metrics are optimistic lower bounds
            rather than a concrete plan's cost.
        program: The compiled program, when a full compile ran.
        error: One-line description of an infeasibility or failure.
        failed: True for genuine errors (unknown model, a crash) —
            distinct from a proven-infeasible candidate.
        skipped: True when the tier declined to answer (a cached-tier
            probe found the candidate cold); no metrics were produced
            and nothing durable should be recorded.
    """

    fidelity: str
    feasible: bool = False
    latency_ms: float = math.inf
    cycles: float = math.inf
    energy_mj: float = math.inf
    num_segments: int = 0
    peak_arrays: int = 0
    allocator_solves: int = 0
    cache_hits: int = 0
    disk_hits: int = 0
    eval_seconds: float = 0.0
    lower_bound: bool = False
    program: Optional[CompiledProgram] = None
    error: Optional[str] = None
    failed: bool = False
    skipped: bool = False

    def describe(self) -> str:
        """One-line summary for logs."""
        if self.skipped:
            return f"[{self.fidelity}] skipped ({self.error})"
        if self.failed:
            return f"[{self.fidelity}] FAILED ({self.error})"
        if not self.feasible:
            return f"[{self.fidelity}] infeasible"
        bound = " (lower bound)" if self.lower_bound else ""
        return (
            f"[{self.fidelity}] {self.latency_ms:.3f} ms, "
            f"{self.energy_mj:.3f} mJ{bound}, "
            f"{self.allocator_solves} solves, {self.eval_seconds:.3f} s"
        )


class Evaluator:
    """Protocol of one evaluation tier.

    Implementations set :attr:`fidelity` and provide :meth:`evaluate`;
    the default :meth:`evaluate_batch` maps it over the jobs (tiers
    backed by a worker pool override it).  Candidates are
    :class:`~repro.service.CompileJob` specs — the one
    (model, workload, hardware, options) carrier every layer of this
    codebase already speaks.
    """

    fidelity: str = "compile"

    def evaluate(self, job: CompileJob) -> Evaluation:
        """Evaluate one candidate; failures are captured, never raised."""
        raise NotImplementedError

    def evaluate_batch(
        self,
        jobs: Sequence[CompileJob],
        warm_hints: Optional[Sequence[bool]] = None,
    ) -> List[Evaluation]:
        """Evaluate many candidates; results keep the input order.

        ``warm_hints`` optionally carries a caller's already-computed
        per-job store-probe verdicts (the DSE planner probes every
        candidate while scheduling).  Tiers that probe themselves may
        trust a ``True`` hint to skip their own probe; the default
        implementation ignores the hints.
        """
        del warm_hints
        return [self.evaluate(job) for job in jobs]
