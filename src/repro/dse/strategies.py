"""Search strategies driving iterative design-space exploration.

Strategies speak a small ask/tell protocol the runner drives:

* :meth:`Strategy.bind` attaches the strategy to a
  :class:`~repro.dse.space.DesignSpace`;
* :meth:`Strategy.ask` proposes up to ``n`` not-yet-proposed points;
* :meth:`Strategy.tell` feeds back evaluation records (objects exposing
  ``coords``, ``feasible`` and ``objective_value``) so adaptive
  strategies can steer;
* :attr:`Strategy.exhausted` reports when the whole space was proposed.

Three built-ins cover the common sweep shapes:

* ``grid`` — the full factorial grid in deterministic lexicographic
  order; the right default for small spaces and for reproducible runs.
* ``random`` — a seeded uniform shuffle of the grid, proposed without
  replacement; the standard budget-limited baseline for spaces too big
  to enumerate.
* ``greedy`` — successive-halving-flavoured local refinement: an initial
  seeded sample, then each round keeps the best-scoring half of what has
  been evaluated and proposes the unvisited grid *neighbours* of those
  survivors (falling back to random exploration when the neighbourhoods
  are exhausted).  Converges on a good region of a smooth objective with
  a fraction of the grid budget.

All randomness flows from an explicit seed — two runs with the same seed
propose the same points in the same order, which the resumable run state
relies on for clean restarts.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence, Tuple

from .space import DesignPoint, DesignSpace

__all__ = [
    "GreedyStrategy",
    "GridStrategy",
    "RandomStrategy",
    "STRATEGIES",
    "Strategy",
    "make_strategy",
]


class Strategy:
    """Base class: proposal bookkeeping shared by every strategy."""

    name = "base"

    def __init__(self) -> None:
        self.space: DesignSpace = None  # type: ignore[assignment]
        self._proposed: set = set()
        self._total = 0

    def bind(self, space: DesignSpace) -> None:
        """Attach to a space; resets all proposal state."""
        self.space = space
        self._proposed = set()
        self._total = space.size

    @property
    def exhausted(self) -> bool:
        """Whether every point of the space has been proposed."""
        return len(self._proposed) >= self._total

    def ask(self, n: int) -> List[DesignPoint]:
        """Propose up to ``n`` new design points."""
        raise NotImplementedError

    def tell(self, records: Sequence) -> None:
        """Feed evaluation results back (default: ignored)."""

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _propose(self, coords: Tuple[int, ...]) -> DesignPoint:
        self._proposed.add(coords)
        return self.space.point_at(coords)


class GridStrategy(Strategy):
    """Deterministic lexicographic sweep of the whole grid."""

    name = "grid"

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class RandomStrategy(Strategy):
    """Seeded uniform sampling of the grid without replacement."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())
        random.Random(self.seed).shuffle(self._pending)

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class GreedyStrategy(Strategy):
    """Successive-halving-style neighbourhood refinement.

    Round 0 proposes a seeded random sample.  Every later round ranks all
    evaluated points by objective (infeasible points score ``inf``),
    keeps the top ``keep_fraction`` — the "halving" — and proposes the
    unvisited grid neighbours of those survivors, best survivor first.
    When the survivors' neighbourhoods are exhausted the strategy falls
    back to seeded random exploration so a budget is never stranded.

    Args:
        seed: RNG seed for the initial sample and the exploration order.
        keep_fraction: Fraction of evaluated points whose neighbourhoods
            are explored each round (default 0.5).
    """

    name = "greedy"

    def __init__(self, seed: int = 0, keep_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.seed = seed
        self.keep_fraction = keep_fraction

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._explore = list(space.coordinates())
        random.Random(self.seed).shuffle(self._explore)
        # coords -> best objective seen (records may repeat on resume).
        self._scores: Dict[Tuple[int, ...], float] = {}

    def ask(self, n: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        # Exploit: neighbours of the best-scoring survivors.
        if self._scores:
            ranked = sorted(self._scores.items(), key=lambda item: item[1])
            keep = max(1, math.ceil(len(ranked) * self.keep_fraction))
            for coords, _ in ranked[:keep]:
                for neighbor in self.space.neighbors(coords):
                    if neighbor in self._proposed:
                        continue
                    batch.append(self._propose(neighbor))
                    if len(batch) >= n:
                        return batch
        # Explore: seeded random fill.
        while self._explore and len(batch) < n:
            coords = self._explore.pop(0)
            if coords in self._proposed:
                continue
            batch.append(self._propose(coords))
        return batch

    def tell(self, records: Sequence) -> None:
        for record in records:
            value = getattr(record, "objective_value", None)
            if value is None or not getattr(record, "feasible", False):
                value = math.inf
            coords = tuple(getattr(record, "coords", ()))
            if not coords:
                continue
            previous = self._scores.get(coords, math.inf)
            self._scores[coords] = min(previous, float(value))


STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "greedy": GreedyStrategy,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Instantiate a strategy by name (``grid`` / ``random`` / ``greedy``)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(STRATEGIES))}"
        ) from None
    if cls is GridStrategy:
        return cls()
    return cls(seed=seed)
