"""Full-fidelity evaluation tiers: warm-only (cached) and full compile.

Both tiers answer with metrics taken from a real
:class:`~repro.core.program.CompiledProgram`; they differ only in when
they are willing to pay for one:

* :class:`CompileEvaluator` always runs the full pass pipeline through
  a :class:`~repro.service.CompileService` (thread or process pool,
  shared allocation cache) — today's evaluation path, unchanged.  The
  parity suite ratchets that its programs are bit-identical to direct
  :meth:`repro.api.Session.compile` output.
* :class:`CachedEvaluator` first probes the persistent
  :class:`~repro.core.store.DiskCacheStore` with the exact cache key of
  the first allocation window the DP would request
  (:func:`repro.core.segmentation.first_window_cache_key`).  Warm
  candidates are compiled — which then costs milliseconds, served from
  the store; cold candidates are *declined* (``Evaluation.skipped``)
  instead of solved, so a cached-fidelity sweep never pays for a single
  cold solve.  A declined candidate is not an error and is not recorded
  durably; re-running after the store warms up evaluates it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from ..core.compiler import CompilerOptions
from ..core.segmentation import first_window_cache_key, flatten_graph
from ..cost.energy import estimate_energy
from ..service import CompileJob, CompileJobResult, CompileService
from .base import Evaluation, Evaluator

__all__ = ["CachedEvaluator", "CompileEvaluator", "evaluation_from_outcome"]


def evaluation_from_outcome(
    outcome: CompileJobResult, fidelity: str = "compile"
) -> Evaluation:
    """Convert a compile-service outcome into a typed :class:`Evaluation`.

    This is the single place compiled metrics are extracted for
    evaluation purposes (latency, first-order energy, peak arrays,
    solver counters) — the DSE runner used to do this inline.  A
    :class:`~repro.core.segmentation.NoFeasiblePlanError` is a
    legitimate *infeasible* verdict, not a failure; its pre-failure
    solver statistics are preserved either way.
    """
    evaluation = Evaluation(
        fidelity=fidelity,
        eval_seconds=outcome.wall_seconds,
        allocator_solves=int(outcome.stats.get("allocator_solves", 0)),
        cache_hits=int(outcome.stats.get("allocation_cache_hits", 0)),
        disk_hits=int(outcome.stats.get("allocation_disk_hits", 0)),
    )
    if not outcome.ok:
        evaluation.error = outcome.error
        evaluation.failed = not (outcome.error or "").startswith(
            "NoFeasiblePlanError"
        )
        return evaluation
    program = outcome.program
    evaluation.feasible = True
    evaluation.program = program
    evaluation.latency_ms = program.end_to_end_ms
    evaluation.cycles = program.end_to_end_cycles
    evaluation.energy_mj = estimate_energy(program).end_to_end_mj
    evaluation.num_segments = program.num_segments
    evaluation.peak_arrays = max(
        (
            segment.compute_arrays + segment.memory_arrays
            for segment in program.segments
        ),
        default=0,
    )
    return evaluation


class CompileEvaluator(Evaluator):
    """Evaluates by running the full compile pipeline (the paper's flow).

    Args:
        service: The compile service jobs run through; its cache,
            backend and pool width govern every evaluation.
    """

    fidelity = "compile"

    def __init__(self, service: Optional[CompileService] = None) -> None:
        self.service = service if service is not None else CompileService()

    def evaluate(self, job: CompileJob) -> Evaluation:
        return evaluation_from_outcome(self.service.compile(job), self.fidelity)

    def evaluate_batch(
        self,
        jobs: Sequence[CompileJob],
        warm_hints: Optional[Sequence[bool]] = None,
    ) -> List[Evaluation]:
        """Run the batch through the service's worker pool."""
        del warm_hints  # the full pipeline compiles warm or cold alike
        outcomes = self.service.compile_batch(jobs)
        return [
            evaluation_from_outcome(outcome, self.fidelity) for outcome in outcomes
        ]


class CachedEvaluator(Evaluator):
    """Evaluates warm candidates only; cold ones are declined, not solved.

    Requires a service whose allocation cache carries a persistent
    :class:`~repro.core.store.DiskCacheStore` — without one every probe
    is cold and every candidate is declined (with a telling error).
    The probe is the same first-window key the DSE planner schedules by;
    it is a heuristic for *whole-candidate* warmth, so a warm probe may
    still imply a few solves for windows no earlier run requested — the
    declared contract is "never start from scratch", not "never solve".

    Args:
        service: The compile service warm candidates run through.
    """

    fidelity = "cached"

    def __init__(self, service: Optional[CompileService] = None) -> None:
        self.service = service if service is not None else CompileService()

    @property
    def store(self):
        """The persistent store probed for warmth (None when absent)."""
        cache = self.service.cache
        return cache.store if cache is not None else None

    def evaluate(self, job: CompileJob) -> Evaluation:
        start = time.perf_counter()
        declined = self._probe(job)
        if declined is not None:
            return declined
        evaluation = evaluation_from_outcome(self.service.compile(job), self.fidelity)
        evaluation.eval_seconds = time.perf_counter() - start
        return evaluation

    def evaluate_batch(
        self,
        jobs: Sequence[CompileJob],
        warm_hints: Optional[Sequence[bool]] = None,
    ) -> List[Evaluation]:
        """Probe every candidate, then pool-compile the warm subset.

        Cold candidates are declined up front; the warm ones go through
        the service's worker pool together (like
        :meth:`CompileEvaluator.evaluate_batch`) instead of compiling
        one-by-one in the caller.  Each answered candidate carries its
        own service-side wall time; declines carry their probe cost.

        A ``True`` warm hint (the planner probed this job moments ago
        with the same key against the same store) is trusted and the
        tier's own probe is skipped — the probe-twice cost would double
        the per-point price of a tier whose point is being nearly free.
        A ``False``/absent hint is never trusted to *decline*: the
        tier's own probe still runs so unplannable jobs surface as
        failures, not as "cold".
        """
        if warm_hints is not None and len(warm_hints) == len(jobs):
            probed = [
                None if hint else self._probe(job)
                for job, hint in zip(jobs, warm_hints)
            ]
        else:
            probed = [self._probe(job) for job in jobs]
        warm_jobs = [job for job, declined in zip(jobs, probed) if declined is None]
        outcomes = iter(self.service.compile_batch(warm_jobs))
        return [
            declined
            if declined is not None
            else evaluation_from_outcome(next(outcomes), self.fidelity)
            for declined in probed
        ]

    def _probe(self, job: CompileJob) -> Optional[Evaluation]:
        """The declined evaluation for a cold/unprobeable job, else None."""
        start = time.perf_counter()
        store = self.store
        if store is None:
            return Evaluation(
                fidelity=self.fidelity,
                skipped=True,
                error="cached fidelity needs a persistent store (cache_dir)",
                eval_seconds=time.perf_counter() - start,
            )
        try:
            graph = job.resolve_graph()
            hardware = job.resolve_hardware()
            options = job.options or CompilerOptions(generate_code=False)
            units = flatten_graph(graph, hardware)
            key = first_window_cache_key(units, hardware, options)
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            return Evaluation(
                fidelity=self.fidelity,
                error=f"{type(exc).__name__}: {exc}",
                failed=True,
                eval_seconds=time.perf_counter() - start,
            )
        if key is not None and not store.contains(key):
            return Evaluation(
                fidelity=self.fidelity,
                skipped=True,
                error="candidate not in the allocation store (cold)",
                eval_seconds=time.perf_counter() - start,
            )
        return None
