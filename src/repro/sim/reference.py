"""Numpy reference executor for computation graphs.

The functional simulator needs a ground-truth result to compare the
array-level CIM execution against (the paper verifies its compiled
meta-operator flows against PyTorch).  This module plays PyTorch's role:
it executes a :class:`~repro.ir.graph.Graph` operator by operator with
dense numpy kernels, using deterministic synthetic weights and inputs.

Numerics are carried in float32 regardless of the declared tensor dtypes —
the goal is functional equivalence of the mapping/tiling, not bit-exact
integer quantisation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..ir.graph import Graph
from ..ir.operators import (
    Activation,
    Concat,
    Conv2d,
    Elementwise,
    Embedding,
    GlobalAvgPool,
    Linear,
    MatMul,
    Normalization,
    Operator,
    Pool2d,
    Reshape,
    Softmax,
)
from ..ir.tensor import TensorSpec


class ReferenceExecutionError(RuntimeError):
    """Raised when the reference executor cannot handle an operator."""


def deterministic_tensor(spec: TensorSpec, seed: int = 0, scale: float = 0.1) -> np.ndarray:
    """Deterministic pseudo-random float32 tensor for a spec.

    The same (name, shape, seed) always yields the same data, so compiled
    programs and reference runs see identical inputs without storing any
    dataset on disk.
    """
    rng = np.random.default_rng(abs(hash((spec.name, spec.shape, seed))) % (2**32))
    return (rng.standard_normal(spec.shape) * scale).astype(np.float32)


def _im2col(x: np.ndarray, kh: int, kw: int, stride, padding) -> np.ndarray:
    """im2col for NCHW inputs -> (N * OH * OW, C * KH * KW)."""
    n, c, h, w = x.shape
    sh, sw = stride
    ph, pw = padding
    oh = (h + 2 * ph - kh) // sh + 1
    ow = (w + 2 * pw - kw) // sw + 1
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j, :, :] = padded[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(n * oh * ow, c * kh * kw), oh, ow


class ReferenceExecutor:
    """Executes graphs with dense numpy kernels.

    Args:
        seed: Seed for the deterministic synthetic inputs and weights.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, graph: Graph, inputs: Optional[Dict[str, np.ndarray]] = None) -> Dict[str, np.ndarray]:
        """Execute ``graph``; returns every produced tensor by name."""
        values: Dict[str, np.ndarray] = {}
        for spec in graph.graph_inputs:
            if inputs and spec.name in inputs:
                values[spec.name] = np.asarray(inputs[spec.name], dtype=np.float32)
            else:
                values[spec.name] = deterministic_tensor(spec, self.seed)
        for op in graph.topological_order():
            values[op.outputs[0].name] = self.run_operator(op, values)
        return values

    def weight_of(self, op: Operator) -> np.ndarray:
        """Deterministic weight tensor of an operator."""
        if op.weight is None:
            raise ReferenceExecutionError(f"operator {op.name!r} has no weights")
        return deterministic_tensor(op.weight, self.seed)

    # ------------------------------------------------------------------ #
    # per-operator kernels
    # ------------------------------------------------------------------ #
    def run_operator(self, op: Operator, values: Dict[str, np.ndarray]) -> np.ndarray:
        """Execute one operator given the tensors produced so far."""
        args = [values[t.name] for t in op.inputs]
        if isinstance(op, Linear):
            return self._linear(op, args[0])
        if isinstance(op, MatMul):
            return np.matmul(args[0], args[1])
        if isinstance(op, Conv2d):
            return self._conv2d(op, args[0])
        if isinstance(op, Activation):
            return self._activation(op.function, args[0])
        if isinstance(op, Elementwise):
            return self._elementwise(op.function, args)
        if isinstance(op, Softmax):
            return self._softmax(args[0], op.axis)
        if isinstance(op, Normalization):
            return self._normalize(op.kind, args[0])
        if isinstance(op, Pool2d):
            return self._pool2d(op, args[0])
        if isinstance(op, GlobalAvgPool):
            return args[0].mean(axis=(2, 3))
        if isinstance(op, Embedding):
            table = self.weight_of(op)
            indices = np.mod(np.abs(args[0]).astype(np.int64), table.shape[0])
            return table[indices]
        if isinstance(op, Reshape):
            return args[0].reshape(op.outputs[0].shape)
        if isinstance(op, Concat):
            return np.concatenate(args, axis=op.axis)
        raise ReferenceExecutionError(f"unsupported operator type {op.op_type!r} ({op.name})")

    def _linear(self, op: Linear, x: np.ndarray) -> np.ndarray:
        weight = self.weight_of(op)
        k, n = weight.shape
        flat = x.reshape(-1, k)
        out = flat @ weight
        return out.reshape(op.outputs[0].shape)

    def _conv2d(self, op: Conv2d, x: np.ndarray) -> np.ndarray:
        weight = self.weight_of(op)  # (out_c, in_c_per_group, kh, kw)
        out_c, in_c_per_group, kh, kw = weight.shape
        groups = op.groups
        n, in_c, _, _ = x.shape
        outputs = []
        in_per_group = in_c // groups
        out_per_group = out_c // groups
        for g in range(groups):
            xg = x[:, g * in_per_group : (g + 1) * in_per_group]
            wg = weight[g * out_per_group : (g + 1) * out_per_group]
            cols, oh, ow = _im2col(xg, kh, kw, op.stride, op.padding)
            wmat = wg.reshape(out_per_group, -1).T  # (in*kh*kw, out_per_group)
            out = cols @ wmat  # (n*oh*ow, out_per_group)
            outputs.append(out.reshape(n, oh, ow, out_per_group).transpose(0, 3, 1, 2))
        return np.concatenate(outputs, axis=1)

    @staticmethod
    def _activation(function: str, x: np.ndarray) -> np.ndarray:
        if function == "relu":
            return np.maximum(x, 0.0)
        if function == "gelu":
            return 0.5 * x * (1.0 + np.tanh(np.sqrt(2.0 / np.pi) * (x + 0.044715 * x**3)))
        if function in ("silu", "swish"):
            return x / (1.0 + np.exp(-x))
        if function == "sigmoid":
            return 1.0 / (1.0 + np.exp(-x))
        if function == "tanh":
            return np.tanh(x)
        raise ReferenceExecutionError(f"unknown activation {function!r}")

    @staticmethod
    def _elementwise(function: str, args) -> np.ndarray:
        if function == "add":
            result = args[0]
            for other in args[1:]:
                result = result + other
            return result
        if function == "mul":
            result = args[0]
            for other in args[1:]:
                result = result * other
            return result
        raise ReferenceExecutionError(f"unknown elementwise function {function!r}")

    @staticmethod
    def _softmax(x: np.ndarray, axis: int) -> np.ndarray:
        shifted = x - x.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=axis, keepdims=True)

    @staticmethod
    def _normalize(kind: str, x: np.ndarray) -> np.ndarray:
        if kind == "rmsnorm":
            scale = np.sqrt(np.mean(x**2, axis=-1, keepdims=True) + 1e-6)
            return x / scale
        if kind == "batchnorm":
            mean = x.mean(axis=(0, 2, 3), keepdims=True) if x.ndim == 4 else x.mean(0, keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True) if x.ndim == 4 else x.var(0, keepdims=True)
            return (x - mean) / np.sqrt(var + 1e-6)
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        return (x - mean) / np.sqrt(var + 1e-6)

    @staticmethod
    def _pool2d(op: Pool2d, x: np.ndarray) -> np.ndarray:
        kh, kw = op.kernel
        sh, sw = op.stride
        n, c, h, w = x.shape
        oh = op.outputs[0].shape[2]
        ow = op.outputs[0].shape[3]
        # Pad (with -inf for max, 0 for avg) so strided windows always exist.
        pad_h = max(0, (oh - 1) * sh + kh - h)
        pad_w = max(0, (ow - 1) * sw + kw - w)
        fill = -np.inf if op.mode == "max" else 0.0
        padded = np.pad(x, ((0, 0), (0, 0), (0, pad_h), (0, pad_w)), constant_values=fill)
        windows = np.empty((n, c, oh, ow, kh, kw), dtype=x.dtype)
        for i in range(kh):
            for j in range(kw):
                windows[:, :, :, :, i, j] = padded[
                    :, :, i : i + sh * oh : sh, j : j + sw * ow : sw
                ]
        if op.mode == "max":
            return windows.max(axis=(4, 5))
        return windows.mean(axis=(4, 5))
