"""Figure 17: generative models with fixed input or fixed output length.

The paper fixes the prompt at 128 tokens and varies the number of
generated tokens (and vice versa) for LLaMA2-7B and OPT-13B: with the
input fixed, the speedup over CIM-MLC stays nearly constant as the output
grows; with the output fixed, the speedup shrinks as the prompt grows
because prefill becomes compute-bound.
"""

import pytest

from conftest import record

from repro.experiments import run_generative
from repro.experiments.generative import render_report


@pytest.mark.benchmark(group="fig17")
def test_fig17_generative_sweeps(benchmark, chip, grids):
    """Fixed-input and fixed-output sweeps for the decoder models (Fig. 17)."""

    def run():
        return run_generative(
            hardware=chip,
            models=("llama2-7b", "opt-13b"),
            lengths=grids["fig17_lengths"],
            fixed_length=128,
            batch_size=1,
        )

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))

    assert all(row["speedup_vs_cim-mlc"] >= 0.99 for row in rows)
    for model in ("llama2-7b", "opt-13b"):
        vary_output = [
            row["speedup_vs_cim-mlc"]
            for row in rows
            if row["model"] == model and row["sweep"] == "vary_output"
        ]
        # Fixed input, growing output: the speedup stays nearly constant
        # (decode arithmetic intensity does not change with output length).
        assert max(vary_output) - min(vary_output) <= 0.5
