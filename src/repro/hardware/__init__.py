"""Dual-mode CIM hardware abstraction, chip state model and presets."""

from .chip import ChipStateError, CIMArray, CIMChip
from .deha import ArrayMode, DualModeHardwareAbstraction
from .presets import PRESETS, dynaplasia, get_preset, prime, small_test_chip

__all__ = [
    "ArrayMode",
    "CIMArray",
    "CIMChip",
    "ChipStateError",
    "DualModeHardwareAbstraction",
    "PRESETS",
    "dynaplasia",
    "get_preset",
    "prime",
    "small_test_chip",
]
