"""Per-segment dual-mode resource allocation (§4.3.2 of the paper).

Given the operators of one network segment, the allocator decides how many
arrays each operator receives in compute mode and how many in memory mode
so that the pipelined segment latency (Eq. 9 with the Eq. 10 latency
model) is minimised under the chip's array budget (Eq. 8).

Two interchangeable engines are provided:

* :class:`MIPAllocator` — the paper's approach: a mixed-integer program.
  For every operator a small Pareto set of candidate ``(compute, memory)``
  allocations is enumerated; binary selection variables pick one candidate
  per operator, a continuous makespan variable ``T`` upper-bounds every
  selected latency, and the array budget couples the operators.  The MILP
  is solved with ``scipy.optimize.milp`` (HiGHS) — the offline stand-in
  for the Gurobi solver used in the paper.
* :class:`GreedyAllocator` — a fast marginal-gain heuristic used as a
  fallback, as a cross-check in tests and for the allocation ablation.

Both return an :class:`AllocationResult`; leftover arrays are always
redistributed by :func:`refine_with_spare_arrays` (weight duplication and
extra buffering, the paper's post-allocation optimisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import (
    INFEASIBLE_LATENCY,
    OperatorAllocation,
    operator_latency_cycles,
    segment_latency_cycles,
)
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.transforms import ceil_div
from .feasibility import FeasibilityModel


@dataclass
class AllocationResult:
    """Outcome of allocating one segment.

    Attributes:
        allocations: Per-operator allocation.
        latency_cycles: Pipelined segment latency under the allocation.
        feasible: Whether the segment fits the chip at all.
        solver: Which engine produced the result ("milp", "greedy",
            "single", "infeasible").
        from_cache: Whether the result was served from a shared
            :class:`~repro.core.cache.AllocationCache` instead of a fresh
            solve (used by compile statistics).
        from_disk: Whether the serving cache tier was the persistent
            :class:`~repro.core.store.DiskCacheStore` (implies
            ``from_cache``; lets compile statistics show warm-start
            behaviour per job).
    """

    allocations: Dict[str, OperatorAllocation]
    latency_cycles: float
    feasible: bool
    solver: str
    from_cache: bool = False
    from_disk: bool = False

    @property
    def total_arrays(self) -> int:
        """Total arrays used."""
        return sum(a.total_arrays for a in self.allocations.values())

    @property
    def compute_arrays(self) -> int:
        """Total compute-mode arrays used."""
        return sum(a.compute_arrays for a in self.allocations.values())

    @property
    def memory_arrays(self) -> int:
        """Total memory-mode arrays used."""
        return sum(a.memory_arrays for a in self.allocations.values())


def infeasible_result() -> AllocationResult:
    """Result representing a segment that cannot be mapped onto the chip."""
    return AllocationResult(
        allocations={}, latency_cycles=INFEASIBLE_LATENCY, feasible=False, solver="infeasible"
    )


def minimum_compute_arrays(
    profiles: Mapping[str, OperatorProfile], hardware: DualModeHardwareAbstraction
) -> int:
    """Fewest compute arrays the segment needs just to hold its operands.

    Delegates to the shared :class:`~repro.core.feasibility
    .FeasibilityModel`, which the analytical evaluation tier consults
    through the same predicates — the two tiers can never disagree about
    what fits.
    """
    return FeasibilityModel(hardware).minimum_compute_arrays(profiles)


def segment_fits(
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    allow_memory_mode: bool = True,
) -> bool:
    """Whether the segment's minimum footprint fits the array budget."""
    del allow_memory_mode  # the minimum footprint uses no memory arrays
    return FeasibilityModel(hardware).segment_fits(profiles)


# ---------------------------------------------------------------------- #
# candidate enumeration
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AllocationCandidate:
    """One candidate allocation for a single operator."""

    compute_arrays: int
    memory_arrays: int
    latency_cycles: float

    @property
    def total_arrays(self) -> int:
        """Arrays the candidate consumes."""
        return self.compute_arrays + self.memory_arrays

    def to_allocation(self) -> OperatorAllocation:
        """Convert to an :class:`OperatorAllocation`."""
        return OperatorAllocation(self.compute_arrays, self.memory_arrays)


def candidate_allocations(
    profile: OperatorProfile,
    hardware: DualModeHardwareAbstraction,
    max_arrays: int,
    allow_memory_mode: bool = True,
    max_candidates: int = 24,
) -> List[AllocationCandidate]:
    """Pareto-optimal (arrays, latency) candidates for one operator.

    Compute counts are swept geometrically from the operator's minimum
    footprint up to the budget; memory counts from zero up to the number
    of arrays that fully buffer the working set.  Dominated candidates
    (more arrays and no lower latency) are discarded, keeping the MILP
    small without losing the optimum at the granularity of the sweep.
    """
    min_compute = max(1, profile.min_compute_arrays(hardware))
    if min_compute > max_arrays:
        return []
    mem_cap = profile.memory_arrays_for_working_set(hardware) if allow_memory_mode else 0
    mem_cap = min(mem_cap, max_arrays - min_compute)

    compute_options = _geometric_range(min_compute, max_arrays)
    memory_options = [0] + _geometric_range(1, mem_cap) if mem_cap > 0 else [0]

    raw: List[AllocationCandidate] = []
    for compute in compute_options:
        for memory in memory_options:
            if compute + memory > max_arrays:
                continue
            latency = operator_latency_cycles(
                profile, OperatorAllocation(compute, memory), hardware
            )
            raw.append(AllocationCandidate(compute, memory, latency))

    # Pareto filter on (total arrays, latency).
    raw.sort(key=lambda c: (c.total_arrays, c.latency_cycles))
    pareto: List[AllocationCandidate] = []
    best_latency = INFEASIBLE_LATENCY
    for candidate in raw:
        if candidate.latency_cycles < best_latency - 1e-9:
            pareto.append(candidate)
            best_latency = candidate.latency_cycles
    if not pareto and raw:
        pareto = [raw[0]]
    if len(pareto) > max_candidates:
        # Keep the extremes and thin the middle uniformly.
        indices = np.linspace(0, len(pareto) - 1, max_candidates).round().astype(int)
        pareto = [pareto[i] for i in sorted(set(indices.tolist()))]
    return pareto


def _geometric_range(lo: int, hi: int) -> List[int]:
    """Integers from ``lo`` to ``hi`` with geometric spacing (both included)."""
    if hi < lo:
        return []
    values = {lo, hi}
    value = lo
    while value < hi:
        value = max(value + 1, int(value * 1.5))
        values.add(min(value, hi))
    return sorted(values)


# ---------------------------------------------------------------------- #
# greedy allocator
# ---------------------------------------------------------------------- #
class GreedyAllocator:
    """Marginal-gain heuristic allocator.

    Every operator starts at its minimum compute footprint; remaining
    arrays are handed out one at a time to the operator currently bounding
    the segment (the one with the highest latency), in whichever mode
    (compute duplication or memory buffering) reduces that latency most.
    """

    name = "greedy"

    def __init__(self, allow_memory_mode: bool = True) -> None:
        self.allow_memory_mode = allow_memory_mode

    def allocate(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        pipelined: bool = True,
    ) -> AllocationResult:
        """Allocate the segment; see class docstring for the policy."""
        if not profiles:
            return AllocationResult({}, 0.0, True, self.name)
        allocations: Dict[str, OperatorAllocation] = {}
        for name, profile in profiles.items():
            allocations[name] = OperatorAllocation(
                compute_arrays=max(1, profile.min_compute_arrays(hardware)), memory_arrays=0
            )
        used = sum(a.total_arrays for a in allocations.values())
        if used > hardware.num_arrays:
            return infeasible_result()

        def latency_of(name: str, allocation: OperatorAllocation) -> float:
            return operator_latency_cycles(profiles[name], allocation, hardware)

        remaining = hardware.num_arrays - used
        while remaining > 0:
            bottleneck = max(allocations, key=lambda n: latency_of(n, allocations[n]))
            current = allocations[bottleneck]
            current_latency = latency_of(bottleneck, current)
            grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
            options = [(latency_of(bottleneck, grow_compute), grow_compute)]
            if self.allow_memory_mode:
                grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
                options.append((latency_of(bottleneck, grow_memory), grow_memory))
            best_latency, best_allocation = min(options, key=lambda item: item[0])
            if best_latency >= current_latency - 1e-9:
                break  # the bottleneck cannot be improved further
            allocations[bottleneck] = best_allocation
            remaining -= 1

        latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
        return AllocationResult(allocations, latency, True, self.name)


# ---------------------------------------------------------------------- #
# MILP allocator
# ---------------------------------------------------------------------- #
class MIPAllocator:
    """Mixed-integer-programming allocator (the paper's §4.3.2 solver).

    One binary variable per (operator, candidate allocation) pair selects
    exactly one candidate per operator; a continuous makespan variable is
    lower-bounded by every selected candidate's latency; the total array
    consumption is bounded by the chip budget (Eq. 8).  Minimising the
    makespan yields the Eq. 9 objective.
    """

    name = "milp"

    def __init__(
        self,
        allow_memory_mode: bool = True,
        max_candidates_per_operator: int = 24,
        time_limit_seconds: float = 10.0,
    ) -> None:
        self.allow_memory_mode = allow_memory_mode
        self.max_candidates_per_operator = max_candidates_per_operator
        self.time_limit_seconds = time_limit_seconds

    def allocate(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        pipelined: bool = True,
    ) -> AllocationResult:
        """Solve the per-segment allocation MILP."""
        if not profiles:
            return AllocationResult({}, 0.0, True, self.name)
        names = list(profiles)
        candidates: Dict[str, List[AllocationCandidate]] = {}
        for name in names:
            options = candidate_allocations(
                profiles[name],
                hardware,
                hardware.num_arrays,
                allow_memory_mode=self.allow_memory_mode,
                max_candidates=self.max_candidates_per_operator,
            )
            if not options:
                return infeasible_result()
            candidates[name] = options

        solution = self._solve_milp(names, candidates, hardware)
        if solution is None:
            # Fall back to the greedy heuristic (also used when HiGHS
            # declares the model infeasible due to candidate pruning).
            return GreedyAllocator(self.allow_memory_mode).allocate(
                profiles, hardware, pipelined=pipelined
            )
        allocations = {name: candidates[name][k].to_allocation() for name, k in solution.items()}
        latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
        return AllocationResult(allocations, latency, True, self.name)

    def _solve_milp(
        self,
        names: Sequence[str],
        candidates: Mapping[str, List[AllocationCandidate]],
        hardware: DualModeHardwareAbstraction,
    ) -> Optional[Dict[str, int]]:
        """Build and solve the MILP; returns chosen candidate index per op."""
        try:
            from scipy.optimize import Bounds, LinearConstraint, milp
        except ImportError:  # pragma: no cover - scipy is a hard dependency
            return None

        offsets: Dict[str, int] = {}
        num_binaries = 0
        for name in names:
            offsets[name] = num_binaries
            num_binaries += len(candidates[name])
        t_index = num_binaries
        num_vars = num_binaries + 1

        # Normalise latencies so the makespan variable is well-scaled.  An
        # operator whose every candidate is infeasible (infinite latency)
        # cannot be modelled; bail out to the greedy fallback instead of
        # tripping on max() over an empty sequence.
        finite_maxima = []
        for name in names:
            finite = [
                c.latency_cycles for c in candidates[name] if math.isfinite(c.latency_cycles)
            ]
            if not finite:
                return None
            finite_maxima.append(max(finite))
        scale = max(max(finite_maxima), 1.0)

        objective = np.zeros(num_vars)
        objective[t_index] = 1.0

        constraints = []
        # Exactly one candidate per operator.
        for name in names:
            row = np.zeros(num_vars)
            for k in range(len(candidates[name])):
                row[offsets[name] + k] = 1.0
            constraints.append(LinearConstraint(row, lb=1.0, ub=1.0))
        # Makespan dominates every selected latency.
        for name in names:
            row = np.zeros(num_vars)
            for k, candidate in enumerate(candidates[name]):
                latency = candidate.latency_cycles
                row[offsets[name] + k] = (
                    latency / scale if math.isfinite(latency) else 1e6
                )
            row[t_index] = -1.0
            constraints.append(LinearConstraint(row, lb=-np.inf, ub=0.0))
        # Array budget.
        row = np.zeros(num_vars)
        for name in names:
            for k, candidate in enumerate(candidates[name]):
                row[offsets[name] + k] = candidate.total_arrays
        constraints.append(LinearConstraint(row, lb=-np.inf, ub=float(hardware.num_arrays)))

        integrality = np.ones(num_vars)
        integrality[t_index] = 0.0
        lower = np.zeros(num_vars)
        upper = np.ones(num_vars)
        upper[t_index] = np.inf
        bounds = Bounds(lb=lower, ub=upper)

        result = milp(
            c=objective,
            constraints=constraints,
            integrality=integrality,
            bounds=bounds,
            options={"time_limit": self.time_limit_seconds, "presolve": True},
        )
        if not result.success or result.x is None:
            return None
        chosen: Dict[str, int] = {}
        for name in names:
            block = result.x[offsets[name] : offsets[name] + len(candidates[name])]
            chosen[name] = int(np.argmax(block))
        return chosen


# ---------------------------------------------------------------------- #
# post-allocation refinement (weight duplication)
# ---------------------------------------------------------------------- #
def refine_with_spare_arrays(
    result: AllocationResult,
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    pipelined: bool = True,
    allow_memory_mode: bool = True,
    reserve_arrays: int = 0,
) -> AllocationResult:
    """Hand leftover arrays to the bottleneck operator (weight duplication).

    The paper applies weight duplication as a post-allocation optimisation
    "commonly used in CIM compilation" — spare arrays replicate the
    bottleneck operator's weights (or extend its buffers) so the pipelined
    segment latency drops further.  The refinement never worsens latency.

    Args:
        allow_memory_mode: Whether spare arrays may also grow an operator's
            memory-mode buffer (False for fixed-mode baselines).
        reserve_arrays: Arrays to leave untouched — the segmentation pass
            reserves them as boundary buffers for live inter-segment data.
    """
    if not result.feasible or not result.allocations:
        return result
    allocations = dict(result.allocations)
    used = sum(a.total_arrays for a in allocations.values())
    remaining = hardware.num_arrays - used - max(0, reserve_arrays)
    if remaining <= 0:
        return result

    def latency_of(name: str) -> float:
        return operator_latency_cycles(profiles[name], allocations[name], hardware)

    improved = False
    while remaining > 0:
        bottleneck = max(allocations, key=latency_of)
        current = allocations[bottleneck]
        current_latency = latency_of(bottleneck)
        grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
        options = [
            (operator_latency_cycles(profiles[bottleneck], grow_compute, hardware), grow_compute),
        ]
        if allow_memory_mode:
            grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
            options.append(
                (operator_latency_cycles(profiles[bottleneck], grow_memory, hardware), grow_memory)
            )
        best_latency, best_allocation = min(options, key=lambda item: item[0])
        if best_latency >= current_latency - 1e-9:
            break
        allocations[bottleneck] = best_allocation
        remaining -= 1
        improved = True
    if not improved:
        return result
    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, result.solver)


def allocate_segment(
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    allocator: Optional[object] = None,
    pipelined: bool = True,
    refine: bool = True,
    reserve_arrays: int = 0,
    cache: Optional[object] = None,
) -> AllocationResult:
    """Allocate one segment end to end (solver + duplication refinement).

    Args:
        reserve_arrays: Arrays withheld from duplication so the
            segmentation pass can dedicate them to boundary buffering.
            Feasibility is always checked against the full chip.
        cache: Optional shared :class:`~repro.core.cache.AllocationCache`.
            When given, the solve is first looked up (structurally — the
            result is identical to a cold solve) and fresh solves are
            stored back; hits are flagged via ``result.from_cache``.
    """
    engine = allocator if allocator is not None else MIPAllocator()
    if not segment_fits(profiles, hardware):
        return infeasible_result()
    allow_memory_mode = getattr(engine, "allow_memory_mode", True)
    cache_key = None
    if cache is not None:
        # Build the (hardware fingerprint x segment signature x options)
        # key once and share it between lookup and store.
        cache_key = cache.make_key(
            profiles,
            hardware,
            engine=getattr(engine, "name", type(engine).__name__),
            pipelined=pipelined,
            refine=refine,
            allow_memory_mode=allow_memory_mode,
            reserve_arrays=reserve_arrays,
        )
        cached = cache.lookup(cache_key, list(profiles))
        if cached is not None:
            return cached
    result = engine.allocate(profiles, hardware, pipelined=pipelined)
    if refine and result.feasible:
        result = refine_with_spare_arrays(
            result,
            profiles,
            hardware,
            pipelined=pipelined,
            allow_memory_mode=allow_memory_mode,
            reserve_arrays=reserve_arrays,
        )
    if cache is not None:
        cache.put(cache_key, profiles, result)
    return result
