"""Per-operator cost profiles (MACs, data volumes, arithmetic intensity).

The dual-mode allocation problem (Table 1 of the paper) is driven by a
small number of per-operator constants: the computation amount ``OP_Oi``,
the arithmetic intensity ``AI_Oi``, the input/output data volumes and the
footprint of the stationary operand in compute-mode arrays.  This module
extracts those constants from IR operators into
:class:`OperatorProfile` objects consumed by the latency model, the MIP
allocator and the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from ..ir.operators import Operator
from ..ir.transforms import arrays_for_stationary, ceil_div, fuse_auxiliary_traffic


@dataclass(frozen=True)
class OperatorProfile:
    """Cost-model view of one CIM-mappable operator.

    Attributes:
        name: Operator name.
        op_type: Operator type string (``"linear"``, ``"conv2d"``, ...).
        macs: ``OP_Oi`` — multiply-accumulate count.
        flops: 2x the MAC count.
        input_elements: Activation input elements.
        output_elements: Output elements.
        weight_elements: Static weight elements (0 for dynamic products).
        stationary_elements: Elements of the operand mapped onto compute
            arrays (weights for Linear/Conv, the dynamic right-hand side
            for attention products).
        streamed_input_elements: Dynamic elements that must be supplied at
            run time (activations, plus the dynamic stationary operand).
        extra_streamed_elements: Traffic of neighbouring auxiliary
            operators (softmax, norms, elementwise) folded into this
            operator by :func:`profile_graph`.
        has_static_weight: Whether the stationary operand is pre-trained
            weights (affecting the weight-reload cost, Eq. 2).
        matmul_m: Streamed rows of the equivalent matrix product.
        matmul_k: Reduction dimension.
        matmul_n: Output columns.
    """

    name: str
    op_type: str
    macs: int
    flops: int
    input_elements: int
    output_elements: int
    weight_elements: int
    stationary_elements: int
    streamed_input_elements: int
    extra_streamed_elements: int
    has_static_weight: bool
    matmul_m: int
    matmul_k: int
    matmul_n: int

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    @property
    def streamed_elements(self) -> int:
        """All dynamic data moved while the operator executes."""
        return self.streamed_input_elements + self.output_elements + self.extra_streamed_elements

    @property
    def working_set_elements(self) -> int:
        """Dynamic data that benefits from residing in memory-mode arrays."""
        return self.streamed_elements

    @property
    def effective_arithmetic_intensity(self) -> float:
        """``AI_Oi`` used by Eq. 10: MACs per dynamic element moved."""
        if self.streamed_elements == 0:
            return float(self.macs) if self.macs else 0.0
        return self.macs / self.streamed_elements

    @property
    def model_arithmetic_intensity(self) -> float:
        """FLOPs per element moved counting weights (Fig. 5(c) metric)."""
        moved = self.streamed_elements + self.weight_elements
        if moved == 0:
            return 0.0
        return self.flops / moved

    def min_compute_arrays(self, hardware: DualModeHardwareAbstraction) -> int:
        """Fewest compute-mode arrays that hold the stationary operand."""
        if self.stationary_elements == 0:
            return 0
        capacity = hardware.array_capacity_elements
        return ceil_div(self.stationary_elements, capacity)

    def memory_arrays_for_working_set(self, hardware: DualModeHardwareAbstraction) -> int:
        """Memory-mode arrays that fully buffer the dynamic working set."""
        if self.working_set_elements == 0:
            return 0
        return ceil_div(self.working_set_elements, hardware.array_capacity_elements)


def profile_operator(op: Operator, extra_streamed_elements: int = 0) -> OperatorProfile:
    """Build the cost profile of a single CIM-mappable operator.

    Args:
        op: A CIM-mappable operator.
        extra_streamed_elements: Auxiliary traffic attributed to this
            operator (see :func:`repro.ir.transforms.fuse_auxiliary_traffic`).

    Raises:
        ValueError: If the operator is not CIM-mappable.
    """
    if not op.is_cim_mappable:
        raise ValueError(f"operator {op.name!r} ({op.op_type}) is not CIM-mappable")
    dims = op.matmul_dims()
    stationary = getattr(op, "stationary_elements", dims.stationary_elements)
    return OperatorProfile(
        name=op.name,
        op_type=op.op_type,
        macs=op.macs,
        flops=op.flops,
        input_elements=op.input_elements,
        output_elements=op.output_elements,
        weight_elements=op.weight_elements,
        stationary_elements=stationary,
        streamed_input_elements=op.streamed_input_elements,
        extra_streamed_elements=int(extra_streamed_elements),
        has_static_weight=op.has_static_weight,
        matmul_m=dims.m,
        matmul_k=dims.k,
        matmul_n=dims.n,
    )


def profile_graph(graph: Graph) -> Dict[str, OperatorProfile]:
    """Profile every CIM-mappable operator of a graph.

    Auxiliary-operator traffic (softmax, normalisation, elementwise) is
    folded into the nearest mappable operator so that no data movement the
    chip must perform is lost even though only mappable operators are
    scheduled onto arrays.

    Returns:
        Mapping of operator name to profile, in topological order.
    """
    extra = fuse_auxiliary_traffic(graph)
    profiles: Dict[str, OperatorProfile] = {}
    for op in graph.cim_operators():
        profiles[op.name] = profile_operator(op, extra.get(op.name, 0))
    return profiles


class ProfileVectors:
    """Struct-of-arrays view of an ordered operator-profile sequence.

    The segmentation DP and the vectorised allocator kernels repeatedly
    ask for aggregates over contiguous operator windows (static-weight
    footprints for inter-segment costs, minimum compute floors for
    feasibility).  This view extracts the per-operator constants into
    int64 arrays once and answers every window query from prefix sums in
    O(1), instead of re-walking profile objects per DP cell.

    All aggregates are integer arithmetic, so they equal the scalar
    object-walking results exactly.

    Args:
        profiles: Operator profiles in schedule order.
        hardware: Optional target; when given, per-operator compute
            floors (``max(1, min_compute_arrays)``) and their prefix sums
            are precomputed for O(1) window feasibility.
    """

    def __init__(
        self,
        profiles: Sequence[OperatorProfile],
        hardware: Optional[DualModeHardwareAbstraction] = None,
    ) -> None:
        profiles = list(profiles)
        self.profiles: Tuple[OperatorProfile, ...] = tuple(profiles)
        self.names: Tuple[str, ...] = tuple(p.name for p in profiles)
        as_array = lambda field: np.array(  # noqa: E731 - local shorthand
            [getattr(p, field) for p in profiles], dtype=np.int64
        )
        self.macs = as_array("macs")
        self.output_elements = as_array("output_elements")
        self.weight_elements = as_array("weight_elements")
        self.stationary_elements = as_array("stationary_elements")
        self.has_static_weight = np.array(
            [p.has_static_weight for p in profiles], dtype=bool
        )
        static_weights = np.where(self.has_static_weight, self.weight_elements, 0)
        self._static_weight_prefix = np.concatenate(
            ([0], np.cumsum(static_weights))
        )
        self.floors: Optional[np.ndarray] = None
        self._floor_prefix: Optional[np.ndarray] = None
        if hardware is not None:
            capacity = hardware.array_capacity_elements
            # ceil_div in int64; stationary==0 yields 0, floored to 1.
            self.floors = np.maximum(
                1, -(-self.stationary_elements // capacity)
            )
            self._floor_prefix = np.concatenate(([0], np.cumsum(self.floors)))

    def __len__(self) -> int:
        return len(self.profiles)

    def window_static_weight_elements(self, start: int, end: int) -> int:
        """Static weight elements of operators ``start..end`` inclusive."""
        return int(
            self._static_weight_prefix[end + 1] - self._static_weight_prefix[start]
        )

    def window_minimum_compute_arrays(self, start: int, end: int) -> int:
        """Fewest compute arrays the window ``start..end`` (inclusive) needs.

        Equals ``FeasibilityModel.minimum_compute_arrays`` over the same
        profiles (requires construction with ``hardware``).
        """
        if self._floor_prefix is None:
            raise ValueError("ProfileVectors built without hardware has no floors")
        return int(self._floor_prefix[end + 1] - self._floor_prefix[start])


def total_macs(profiles: Iterable[OperatorProfile]) -> int:
    """Sum of MAC counts over profiles."""
    return sum(profile.macs for profile in profiles)


def total_weight_elements(profiles: Iterable[OperatorProfile]) -> int:
    """Sum of static weight elements over profiles."""
    return sum(profile.weight_elements for profile in profiles)


def mean_arithmetic_intensity(profiles: Iterable[OperatorProfile]) -> float:
    """MAC-weighted mean of the model-level arithmetic intensity."""
    profiles = list(profiles)
    flops = sum(p.flops for p in profiles)
    moved = sum(p.streamed_elements + p.weight_elements for p in profiles)
    if moved == 0:
        return 0.0
    return flops / moved
