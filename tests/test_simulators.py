"""Tests for the reference executor and the functional / timing simulators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.models import Phase, Workload, build_model
from repro.sim import (
    FunctionalSimulator,
    ReferenceExecutor,
    TimingSimulator,
    deterministic_tensor,
    execute_tiled_matmul,
)
from repro.sim.reference import ReferenceExecutionError
from repro.ir import GraphBuilder, TensorSpec


class TestDeterministicTensors:
    def test_same_spec_same_data(self):
        spec = TensorSpec("x", (4, 5))
        a = deterministic_tensor(spec, seed=1)
        b = deterministic_tensor(spec, seed=1)
        np.testing.assert_array_equal(a, b)

    def test_different_seed_different_data(self):
        spec = TensorSpec("x", (4, 5))
        assert not np.array_equal(deterministic_tensor(spec, 1), deterministic_tensor(spec, 2))

    def test_shape_matches_spec(self):
        spec = TensorSpec("x", (2, 3, 4))
        assert deterministic_tensor(spec).shape == (2, 3, 4)


class TestReferenceExecutor:
    def run_single(self, build):
        builder = GraphBuilder("t")
        build(builder)
        graph = builder.finish()
        return ReferenceExecutor().run(graph), graph

    def test_linear_matches_numpy(self):
        executor = ReferenceExecutor()
        builder = GraphBuilder("t")
        x = builder.input("x", (3, 8))
        y = builder.linear(x, 16, name="fc")
        builder.output(y)
        graph = builder.finish()
        values = executor.run(graph)
        weight = executor.weight_of(graph.operator("fc"))
        expected = values["x"] @ weight
        np.testing.assert_allclose(values[y.name], expected, rtol=1e-5)

    def test_relu_and_softmax_properties(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (2, 6))
        r = builder.relu(x)
        s = builder.softmax(r)
        builder.output(s)
        values = ReferenceExecutor().run(builder.finish())
        assert (values[r.name] >= 0).all()
        np.testing.assert_allclose(values[s.name].sum(axis=-1), 1.0, rtol=1e-5)

    def test_conv_identity_kernel(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (1, 1, 5, 5))
        y = builder.conv2d(x, 1, kernel=1, name="conv")
        builder.output(y)
        graph = builder.finish()
        executor = ReferenceExecutor()
        values = executor.run(graph)
        weight = executor.weight_of(graph.operator("conv"))
        np.testing.assert_allclose(
            values[y.name], values["x"] * weight[0, 0, 0, 0], rtol=1e-5
        )

    def test_conv_matches_im2col_matmul(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (1, 3, 6, 6))
        y = builder.conv2d(x, 4, kernel=3, stride=1, padding=1, name="conv")
        builder.output(y)
        graph = builder.finish()
        executor = ReferenceExecutor()
        values = executor.run(graph)
        assert values[y.name].shape == (1, 4, 6, 6)
        # Spot-check one output pixel against the direct sum.
        conv = graph.operator("conv")
        weight = executor.weight_of(conv)
        x_np = np.pad(values["x"], ((0, 0), (0, 0), (1, 1), (1, 1)))
        manual = np.sum(x_np[0, :, 2:5, 2:5] * weight[1])
        np.testing.assert_allclose(values[y.name][0, 1, 2, 2], manual, rtol=1e-4)

    def test_depthwise_conv_channels_independent(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (1, 4, 6, 6))
        y = builder.conv2d(x, 4, kernel=3, stride=1, padding=1, groups=4, name="dw")
        builder.output(y)
        values = ReferenceExecutor().run(builder.finish())
        assert values[y.name].shape == (1, 4, 6, 6)

    def test_pooling_max_and_avg(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (1, 2, 4, 4))
        mx = builder.pool2d(x, kernel=2, stride=2, mode="max")
        av = builder.pool2d(x, kernel=2, stride=2, mode="avg")
        builder.output(mx)
        builder.output(av)
        values = ReferenceExecutor().run(builder.finish())
        assert (values[mx.name] >= values[av.name] - 1e-6).all()

    def test_matmul_batched(self):
        builder = GraphBuilder("t")
        a = builder.input("a", (2, 3, 4))
        b = builder.input("b", (2, 4, 5))
        c = builder.matmul(a, b)
        builder.output(c)
        values = ReferenceExecutor().run(builder.finish())
        np.testing.assert_allclose(
            values[c.name], np.matmul(values["a"], values["b"]), rtol=1e-5
        )

    def test_layernorm_zero_mean(self):
        builder = GraphBuilder("t")
        x = builder.input("x", (2, 16))
        y = builder.layernorm(x)
        builder.output(y)
        values = ReferenceExecutor().run(builder.finish())
        np.testing.assert_allclose(values[y.name].mean(axis=-1), 0.0, atol=1e-5)

    def test_full_model_runs(self, tiny_transformer_graph):
        values = ReferenceExecutor().run(tiny_transformer_graph)
        out_name = tiny_transformer_graph.graph_outputs[0].name
        assert np.isfinite(values[out_name]).all()

    def test_custom_inputs_respected(self, tiny_mlp_graph):
        x = np.ones((1, 256), dtype=np.float32)
        values = ReferenceExecutor().run(tiny_mlp_graph, inputs={"x": x})
        np.testing.assert_array_equal(values["x"], x)


class TestTiledMatmul:
    @given(
        m=st.integers(1, 12),
        k=st.integers(1, 100),
        n=st.integers(1, 100),
        rows=st.integers(4, 40),
        cols=st.integers(4, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_product(self, m, k, n, rows, cols):
        rng = np.random.default_rng(42)
        a = rng.standard_normal((m, k)).astype(np.float32)
        b = rng.standard_normal((k, n)).astype(np.float32)
        tiled, tiles = execute_tiled_matmul(a, b, rows, cols)
        np.testing.assert_allclose(tiled, a @ b, rtol=1e-4, atol=1e-4)
        assert tiles == -(-k // rows) * -(-n // cols)

    def test_single_tile_case(self):
        a = np.eye(4, dtype=np.float32)
        b = np.arange(16, dtype=np.float32).reshape(4, 4)
        tiled, tiles = execute_tiled_matmul(a, b, 8, 8)
        np.testing.assert_allclose(tiled, b)
        assert tiles == 1


class TestFunctionalSimulator:
    @pytest.mark.parametrize("model", ["tiny-mlp", "tiny-cnn", "tiny-transformer"])
    def test_compiled_programs_match_reference(self, small_chip, model):
        graph = build_model(model, Workload(batch_size=1, seq_len=16))
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(graph)
        report = FunctionalSimulator(small_chip).run(program, graph)
        assert report.all_matched, report.summary()
        assert report.checks

    def test_decode_phase_program_matches(self, small_chip):
        graph = build_model(
            "tiny-transformer", Workload(batch_size=1, seq_len=16, phase=Phase.DECODE)
        )
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=True)).compile(graph)
        report = FunctionalSimulator(small_chip).run(program, graph)
        assert report.all_matched, report.summary()

    def test_switch_events_counted(self, small_chip, compiled_tiny_transformer, tiny_transformer_graph):
        report = FunctionalSimulator(small_chip).run(
            compiled_tiny_transformer, tiny_transformer_graph
        )
        assert report.switch_events == compiled_tiny_transformer.meta_program.switched_array_count()

    def test_summary_mentions_status(self, small_chip, compiled_tiny_cnn, tiny_cnn_graph):
        report = FunctionalSimulator(small_chip).run(compiled_tiny_cnn, tiny_cnn_graph)
        assert "PASS" in report.summary()


class TestTimingSimulator:
    def test_report_totals_positive(self, small_chip, compiled_tiny_cnn):
        report = TimingSimulator(small_chip).run(compiled_tiny_cnn)
        assert report.total_cycles > 0
        assert report.breakdown.compute > 0
        assert len(report.block_cycles) == compiled_tiny_cnn.num_segments

    def test_total_equals_blocks_plus_top_level(self, small_chip, compiled_tiny_transformer):
        report = TimingSimulator(small_chip).run(compiled_tiny_transformer)
        assert report.total_cycles == pytest.approx(
            sum(report.block_cycles) + report.top_level_cycles
        )

    def test_tracks_compiler_prediction(self, small_chip, compiled_tiny_transformer):
        report = TimingSimulator(small_chip).run(compiled_tiny_transformer)
        predicted = compiled_tiny_transformer.graph_cycles
        assert report.total_cycles == pytest.approx(predicted, rel=2.0)

    def test_requires_meta_program(self, small_chip, tiny_mlp_graph):
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(
            tiny_mlp_graph
        )
        with pytest.raises(ValueError):
            TimingSimulator(small_chip).run(program)

    def test_rejects_unknown_objects(self, small_chip):
        with pytest.raises(TypeError):
            TimingSimulator(small_chip).run(42)

    def test_summary_text(self, small_chip, compiled_tiny_cnn):
        text = TimingSimulator(small_chip).run(compiled_tiny_cnn).summary()
        assert "cycles" in text and "compute" in text
