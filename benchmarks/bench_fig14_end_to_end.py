"""Figure 14: end-to-end speedup of CMSwitch over PUMA, OCC and CIM-MLC.

The paper's headline result: across BERT, LLaMA2-7B, OPT-13B, MobileNet,
ResNet-18 and VGG-16 at batch sizes 1-8, CMSwitch achieves a 1.31x
geometric-mean speedup over CIM-MLC (up to 2.03x), with the largest gains
on the big decoder-only models.  The reduced default grid runs batch sizes
1 and 8; set ``REPRO_BENCH_FULL=1`` for the full 1/2/4/8 grid.
"""

import pytest

from conftest import record

from repro.experiments import run_end_to_end, summarize
from repro.experiments.end_to_end import render_report


@pytest.mark.benchmark(group="fig14")
def test_fig14_end_to_end_speedup(benchmark, chip, grids):
    """End-to-end comparison against all three baselines (Fig. 14)."""

    def run():
        return run_end_to_end(hardware=chip, batch_sizes=grids["batch_sizes_fig14"])

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, render_report(rows))
    summary = summarize(rows)

    # Shape checks against the paper's findings.
    # 1. CMSwitch never loses to CIM-MLC (it subsumes its optimisation space).
    assert all(row["speedup_vs_cim-mlc"] >= 0.99 for row in rows)
    # 2. It beats the weaker baselines everywhere.
    assert all(row["speedup_vs_occ"] >= 1.0 for row in rows)
    assert summary["speedup_vs_puma"] >= 1.0
    # 3. The geometric-mean gain over CIM-MLC is substantial (paper: 1.31x).
    assert summary["speedup_vs_cim-mlc"] >= 1.1
    # 4. Decoder-only LLMs gain more than the CNNs on average.
    llm_rows = [r for r in rows if r["model"] in ("llama2-7b", "opt-13b")]
    cnn_rows = [r for r in rows if r["model"] in ("resnet18", "vgg16")]
    llm_mean = sum(r["speedup_vs_cim-mlc"] for r in llm_rows) / len(llm_rows)
    cnn_mean = sum(r["speedup_vs_cim-mlc"] for r in cnn_rows) / len(cnn_rows)
    assert llm_mean >= cnn_mean
