"""Serving metrics computed from a replayed request trace.

The replay simulator (:mod:`repro.sim.replay`) turns a trace into a list
of per-request :class:`RequestOutcome`-shaped records; this module turns
those into the aggregate numbers a serving evaluation reports —
throughput, latency percentiles, queueing delay, utilisation and the
share of busy time spent re-provisioning arrays between dual modes.

Percentiles use the *nearest-rank* definition (no interpolation): the
reported p99 is an actually-observed latency, the definition is monotone
in the percentile (so ``p50 <= p99`` holds by construction), and the
result is bit-reproducible across platforms — which the determinism
tests and the CI ``replay-smoke`` job rely on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["ReplayMetrics", "compute_metrics", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (q in [0, 100]).

    Returns ``nan`` for an empty sequence.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        return math.nan
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class ReplayMetrics:
    """Aggregate serving metrics for one replayed trace.

    Attributes:
        requests: Total requests in the trace.
        served: Requests that compiled and ran to completion.
        failed: Requests dropped because their program failed to compile.
        makespan_ms: Virtual time from the first arrival to the last
            completion (0 when nothing was served).
        throughput_rps: Served requests per second of makespan.
        latency_*: Arrival-to-completion latency statistics over served
            requests (queueing + re-provisioning + service).
        queue_ms_*: Time spent waiting for the chip to free up.
        service_ms_total: Total time the chip spent executing programs.
        switch_ms_total: Total time spent re-provisioning arrays between
            consecutive programs that disagree on array modes.
        switch_share: Fraction of busy time that was re-provisioning.
        utilisation: Busy time (service + switching) over makespan;
            in [0, 1] because the single chip serves one request at a
            time inside the same span.
        per_model: Served-request count per model name.
    """

    requests: int = 0
    served: int = 0
    failed: int = 0
    makespan_ms: float = 0.0
    throughput_rps: float = 0.0
    latency_p50_ms: float = math.nan
    latency_p99_ms: float = math.nan
    latency_mean_ms: float = math.nan
    latency_max_ms: float = math.nan
    queue_ms_mean: float = math.nan
    queue_ms_max: float = math.nan
    service_ms_total: float = 0.0
    switch_ms_total: float = 0.0
    switch_share: float = 0.0
    utilisation: float = 0.0
    per_model: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-ready rendering; non-finite floats become ``None``."""

        def _clean(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        return {
            "requests": self.requests,
            "served": self.served,
            "failed": self.failed,
            "makespan_ms": _clean(self.makespan_ms),
            "throughput_rps": _clean(self.throughput_rps),
            "latency_p50_ms": _clean(self.latency_p50_ms),
            "latency_p99_ms": _clean(self.latency_p99_ms),
            "latency_mean_ms": _clean(self.latency_mean_ms),
            "latency_max_ms": _clean(self.latency_max_ms),
            "queue_ms_mean": _clean(self.queue_ms_mean),
            "queue_ms_max": _clean(self.queue_ms_max),
            "service_ms_total": _clean(self.service_ms_total),
            "switch_ms_total": _clean(self.switch_ms_total),
            "switch_share": _clean(self.switch_share),
            "utilisation": _clean(self.utilisation),
            "per_model": dict(sorted(self.per_model.items())),
        }


def compute_metrics(outcomes: Sequence) -> ReplayMetrics:
    """Aggregate per-request outcomes into :class:`ReplayMetrics`.

    ``outcomes`` are :class:`repro.sim.replay.RequestOutcome` records (or
    anything with the same attributes).  Unserved requests count toward
    ``failed`` and the totals but contribute no latency samples.
    """
    metrics = ReplayMetrics(requests=len(outcomes))
    served = [outcome for outcome in outcomes if outcome.served]
    metrics.served = len(served)
    metrics.failed = metrics.requests - metrics.served
    if not served:
        return metrics

    latencies: List[float] = [outcome.latency_ms for outcome in served]
    queues: List[float] = [outcome.queue_ms for outcome in served]
    first_arrival = min(outcome.arrival_ms for outcome in served)
    last_finish = max(outcome.finish_ms for outcome in served)
    metrics.makespan_ms = last_finish - first_arrival
    if metrics.makespan_ms > 0:
        metrics.throughput_rps = metrics.served / (metrics.makespan_ms / 1000.0)
    metrics.latency_p50_ms = percentile(latencies, 50.0)
    metrics.latency_p99_ms = percentile(latencies, 99.0)
    metrics.latency_mean_ms = sum(latencies) / len(latencies)
    metrics.latency_max_ms = max(latencies)
    metrics.queue_ms_mean = sum(queues) / len(queues)
    metrics.queue_ms_max = max(queues)
    metrics.service_ms_total = sum(outcome.service_ms for outcome in served)
    metrics.switch_ms_total = sum(outcome.switch_ms for outcome in served)
    busy = metrics.service_ms_total + metrics.switch_ms_total
    if busy > 0:
        metrics.switch_share = metrics.switch_ms_total / busy
    if metrics.makespan_ms > 0:
        metrics.utilisation = min(1.0, busy / metrics.makespan_ms)
    elif busy > 0:
        # Degenerate single-instant trace: the chip was busy the whole
        # (zero-length) span.
        metrics.utilisation = 1.0
    for outcome in served:
        metrics.per_model[outcome.model] = metrics.per_model.get(outcome.model, 0) + 1
    return metrics
