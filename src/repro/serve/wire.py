"""Versioned JSON wire format of the compile service.

The process backend already ships :class:`~repro.service.CompileJob`
between processes as a picklable spec (:meth:`CompileJob.to_spec`).
HTTP clients need the same information as *JSON*: this module is the
JSON-safe rendering of that spec — model graphs travel as their exact
JSON serialisation, workloads as :func:`workload_to_payload` payloads,
hardware as a preset name or a full DEHA dictionary, options as a plain
field mapping — plus the reverse direction for compiled programs, so a
daemon can hand a *complete* :class:`~repro.core.program.CompiledProgram`
back to a remote caller.

Rules (mirroring :class:`~repro.core.store.DiskCacheStore`'s discipline):

* Every document carries ``wire_version`` (:data:`WIRE_VERSION`).
  Readers refuse documents written by a **newer** version with a clear
  :class:`WireFormatError` — a rolling upgrade must fail loudly at the
  protocol boundary, not corrupt results silently.
* Malformed documents raise :class:`WireFormatError` naming the
  offending field; transport layers turn that into a structured 400.
* ``program_from_wire(program_to_wire(p))`` reproduces ``p`` exactly
  as far as :meth:`CompiledProgram.fingerprint` can see — the wire
  round-trip is *fingerprint-bit-identical* (floats are carried as
  IEEE-754 hex strings, never decimal roundings), so a client can prove
  the daemon compiled what a local session would have.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, fields
from typing import Dict, List, Mapping, Optional

from ..core.compiler import RUNTIME_OPTION_FIELDS, CompilerOptions
from ..core.program import CompiledProgram, SegmentPlan
from ..cost.arithmetic import OperatorProfile
from ..cost.latency import OperatorAllocation
from ..cost.switching import SegmentResources
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import get_preset
from ..ir.graph import Graph
from ..ir.serialization import SerializationError, graph_from_json, graph_to_json
from ..models.workload import Workload, workload_from_payload, workload_to_payload
from ..service import CompileJob

__all__ = [
    "WIRE_VERSION",
    "WireFormatError",
    "error_payload",
    "job_from_wire",
    "job_to_wire",
    "program_from_wire",
    "program_to_wire",
    "request_fingerprint",
]

#: Version of the HTTP request/response schema.  Bump on any change to
#: the payload shapes below; readers reject newer documents.
WIRE_VERSION = 1


class WireFormatError(ValueError):
    """A wire document is malformed, incomplete or from a newer writer."""


def error_payload(code: str, message: str, **detail) -> Dict:
    """The one structured error shape every endpoint speaks.

    ``code`` is a stable machine-readable token (``"unknown_model"``,
    ``"queue_full"``, ``"compile_failed"``, ...); ``message`` is for
    humans; extra keyword detail rides along verbatim.
    """
    body = {"code": code, "message": message}
    if detail:
        body["detail"] = detail
    return {"wire_version": WIRE_VERSION, "error": body}


def check_version(payload: Mapping, what: str = "document") -> None:
    """Reject payloads without a version or from a newer writer."""
    if not isinstance(payload, Mapping):
        raise WireFormatError(f"{what} must be a JSON object")
    version = payload.get("wire_version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireFormatError(f"{what} is missing an integer 'wire_version'")
    if version > WIRE_VERSION:
        raise WireFormatError(
            f"{what} has wire_version {version}, newer than this reader's "
            f"{WIRE_VERSION}; upgrade the client/server pair together"
        )


# ---------------------------------------------------------------------- #
# floats: exact bits on the wire
# ---------------------------------------------------------------------- #
def _float_out(value: float) -> str:
    """IEEE-754 hex rendering — survives JSON with its exact bits."""
    return float(value).hex()


def _float_in(value, field: str) -> float:
    if isinstance(value, str):
        try:
            return float.fromhex(value)
        except ValueError as exc:
            raise WireFormatError(f"{field!r} is not a hex float: {value!r}") from exc
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireFormatError(f"{field!r} must be a number, got {type(value).__name__}")
    return float(value)


def _require(payload: Mapping, field: str, what: str):
    if field not in payload:
        raise WireFormatError(f"{what} is missing required field {field!r}")
    return payload[field]


# ---------------------------------------------------------------------- #
# jobs
# ---------------------------------------------------------------------- #
def _program_options(options: CompilerOptions) -> Dict:
    """``asdict`` minus the runtime fields (``solve_jobs`` and friends).

    Runtime options steer the *executing* process's worker budget, never
    the produced program — they must not travel on the wire (a client
    does not get to size the daemon's thread pool) and must not split
    request fingerprints (two requests differing only here coalesce).
    """
    payload = asdict(options)
    for name in RUNTIME_OPTION_FIELDS:
        payload.pop(name, None)
    return payload


def _options_to_wire(options: Optional[CompilerOptions]) -> Optional[Dict]:
    return None if options is None else _program_options(options)


def _options_from_wire(payload) -> Optional[CompilerOptions]:
    if payload is None:
        return None
    if not isinstance(payload, Mapping):
        raise WireFormatError("'options' must be an object or null")
    known = {field.name for field in fields(CompilerOptions)}
    known -= set(RUNTIME_OPTION_FIELDS)  # server-side knobs, not wire fields
    unknown = sorted(set(payload) - known)
    if unknown:
        raise WireFormatError(f"unknown compiler option(s): {', '.join(unknown)}")
    try:
        return CompilerOptions(**payload)
    except (TypeError, ValueError) as exc:
        raise WireFormatError(f"invalid compiler options: {exc}") from exc


def _hardware_to_wire(hardware) -> object:
    if isinstance(hardware, DualModeHardwareAbstraction):
        return hardware.to_dict()
    return hardware


def _hardware_from_wire(payload):
    if isinstance(payload, str):
        return payload  # preset name; resolved (and validated) job-side
    if isinstance(payload, Mapping):
        try:
            return DualModeHardwareAbstraction.from_dict(dict(payload))
        except (TypeError, ValueError, KeyError) as exc:
            raise WireFormatError(f"invalid hardware description: {exc}") from exc
    raise WireFormatError("'hardware' must be a preset name or a DEHA object")


def job_to_wire(job: CompileJob) -> Dict:
    """JSON-safe rendering of one compile request.

    The JSON sibling of :meth:`CompileJob.to_spec`: same field split
    (named model *or* serialised graph), but every value is a plain JSON
    type instead of a picklable Python object.
    """
    return {
        "wire_version": WIRE_VERSION,
        "model": job.model if isinstance(job.model, str) else None,
        "graph_json": (
            graph_to_json(job.model) if isinstance(job.model, Graph) else None
        ),
        "workload": (
            workload_to_payload(job.workload) if job.workload is not None else None
        ),
        "hardware": _hardware_to_wire(job.hardware),
        "options": _options_to_wire(job.options),
        "label": job.label,
    }


def job_from_wire(payload: Mapping) -> CompileJob:
    """Rebuild a :class:`CompileJob` from :func:`job_to_wire` output.

    Raises:
        WireFormatError: Missing/malformed fields or a newer writer.
    """
    check_version(payload, "compile job")
    model = payload.get("model")
    graph_json = payload.get("graph_json")
    if (model is None) == (graph_json is None):
        raise WireFormatError(
            "a compile job needs exactly one of 'model' (registered name) "
            "or 'graph_json' (serialised graph)"
        )
    if model is not None and not isinstance(model, str):
        raise WireFormatError("'model' must be a string")
    if graph_json is not None:
        if not isinstance(graph_json, str):
            raise WireFormatError("'graph_json' must be a string")
        try:
            model = graph_from_json(graph_json)
        except SerializationError as exc:
            raise WireFormatError(f"invalid 'graph_json': {exc}") from exc
    workload = payload.get("workload")
    if workload is not None:
        try:
            workload = workload_from_payload(workload)
        except (TypeError, ValueError, KeyError) as exc:
            raise WireFormatError(f"invalid 'workload': {exc}") from exc
    label = payload.get("label")
    if label is not None and not isinstance(label, str):
        raise WireFormatError("'label' must be a string or null")
    return CompileJob(
        model,
        workload=workload,
        hardware=_hardware_from_wire(payload.get("hardware", "dynaplasia")),
        options=_options_from_wire(payload.get("options")),
        label=label,
    )


# ---------------------------------------------------------------------- #
# request identity (the coalescing key)
# ---------------------------------------------------------------------- #
def request_fingerprint(job: CompileJob, default_options: Optional[CompilerOptions] = None) -> str:
    """Digest of everything that determines a job's compiled program.

    Two requests with equal fingerprints would produce bit-identical
    :meth:`CompiledProgram.fingerprint` results, so the daemon may run
    one compile and fan the answer out (:class:`~repro.serve.SingleFlight`).
    Covered: the graph identity (registered name + workload, or the
    exact serialised graph), the hardware fingerprint, and every
    program-relevant option — including ``generate_code``, which changes
    the artifact even though it never changes a solve, but *excluding*
    the runtime fields (:data:`~repro.core.compiler.RUNTIME_OPTION_FIELDS`),
    which change neither.  ``default_options`` is what the
    executing service will substitute for ``options=None`` (the daemon
    passes its batch default so explicit-default and omitted options
    coalesce together).
    """
    if isinstance(job.model, Graph):
        graph_id = [
            "graph",
            hashlib.sha256(graph_to_json(job.model).encode("utf-8")).hexdigest(),
        ]
    else:
        graph_id = [
            "model",
            job.model,
            workload_to_payload(job.workload or Workload()),
        ]
    options = job.options or default_options or CompilerOptions()
    payload = {
        "graph": graph_id,
        "hardware": job.resolve_hardware().fingerprint(),
        "options": _program_options(options),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------- #
# compiled programs
# ---------------------------------------------------------------------- #
class RenderedMetaProgram:
    """A meta-operator flow reconstructed from its rendered text.

    The wire format ships the flow as the exact string
    ``meta_program.render()`` produced — which is also precisely what
    :meth:`CompiledProgram.fingerprint` hashes — so a round-tripped
    program keeps its fingerprint without shipping the object graph.
    """

    def __init__(self, text: str) -> None:
        self._text = text

    def render(self) -> str:
        """The original rendering, verbatim."""
        return self._text


def _profile_to_wire(profile: OperatorProfile) -> Dict:
    return asdict(profile)


def _profile_from_wire(payload: Mapping) -> OperatorProfile:
    if not isinstance(payload, Mapping):
        raise WireFormatError("operator profile must be an object")
    known = {field.name for field in fields(OperatorProfile)}
    unknown = sorted(set(payload) - known)
    if unknown:
        raise WireFormatError(f"unknown profile field(s): {', '.join(unknown)}")
    try:
        return OperatorProfile(**payload)
    except TypeError as exc:
        raise WireFormatError(f"invalid operator profile: {exc}") from exc


def _segment_to_wire(segment: SegmentPlan) -> Dict:
    return {
        "index": segment.index,
        "operator_names": list(segment.operator_names),
        "allocations": {
            name: [alloc.compute_arrays, alloc.memory_arrays]
            for name, alloc in segment.allocations.items()
        },
        "profiles": {
            name: _profile_to_wire(profile)
            for name, profile in segment.profiles.items()
        },
        "intra_cycles": _float_out(segment.intra_cycles),
        "inter_cycles": _float_out(segment.inter_cycles),
        "inter_breakdown": {
            key: _float_out(value) for key, value in segment.inter_breakdown.items()
        },
        "resources": (
            None
            if segment.resources is None
            else {
                "compute_arrays": segment.resources.compute_arrays,
                "memory_arrays": segment.resources.memory_arrays,
                "live_output_elements": segment.resources.live_output_elements,
                "static_weight_elements": segment.resources.static_weight_elements,
                "idle_arrays": segment.resources.idle_arrays,
            }
        ),
        "boundary_memory_arrays": segment.boundary_memory_arrays,
    }


def _segment_from_wire(payload: Mapping) -> SegmentPlan:
    if not isinstance(payload, Mapping):
        raise WireFormatError("segment must be an object")
    allocations_payload = _require(payload, "allocations", "segment")
    if not isinstance(allocations_payload, Mapping):
        raise WireFormatError("'allocations' must be an object")
    allocations = {}
    for name, pair in allocations_payload.items():
        try:
            compute, memory = pair
        except (TypeError, ValueError) as exc:
            raise WireFormatError(
                f"allocation for {name!r} must be a [compute, memory] pair"
            ) from exc
        allocations[name] = OperatorAllocation(
            compute_arrays=int(compute), memory_arrays=int(memory)
        )
    resources_payload = payload.get("resources")
    resources = None
    if resources_payload is not None:
        if not isinstance(resources_payload, Mapping):
            raise WireFormatError("'resources' must be an object or null")
        try:
            resources = SegmentResources(**resources_payload)
        except TypeError as exc:
            raise WireFormatError(f"invalid segment resources: {exc}") from exc
    return SegmentPlan(
        index=int(_require(payload, "index", "segment")),
        operator_names=list(_require(payload, "operator_names", "segment")),
        allocations=allocations,
        profiles={
            name: _profile_from_wire(profile)
            for name, profile in payload.get("profiles", {}).items()
        },
        intra_cycles=_float_in(_require(payload, "intra_cycles", "segment"), "intra_cycles"),
        inter_cycles=_float_in(_require(payload, "inter_cycles", "segment"), "inter_cycles"),
        inter_breakdown={
            key: _float_in(value, f"inter_breakdown[{key}]")
            for key, value in payload.get("inter_breakdown", {}).items()
        },
        resources=resources,
        boundary_memory_arrays=int(payload.get("boundary_memory_arrays", 0)),
    )


def program_to_wire(program: CompiledProgram) -> Dict:
    """JSON-safe rendering of a complete compiled program.

    Ships everything :meth:`CompiledProgram.fingerprint` covers (so the
    round-trip is fingerprint-bit-identical) *plus* the reporting
    payload — per-operator profiles, compile stats, metadata — so a
    remote caller can use the program exactly like a local compile's.
    Only JSON-safe metadata/stats entries survive the trip; the daemon
    strips anything else before calling this.
    """
    return {
        "wire_version": WIRE_VERSION,
        "graph_name": program.graph_name,
        "compiler_name": program.compiler_name,
        "hardware": program.hardware.to_dict(),
        "segments": [_segment_to_wire(segment) for segment in program.segments],
        "block_repeat": _float_out(program.block_repeat),
        "compile_seconds": _float_out(program.compile_seconds),
        "metadata": _json_safe(program.metadata),
        "stats": _json_safe(program.stats),
        "meta_program": (
            program.meta_program.render() if program.meta_program is not None else None
        ),
    }


def program_from_wire(payload: Mapping) -> CompiledProgram:
    """Rebuild a :class:`CompiledProgram` from :func:`program_to_wire`.

    Raises:
        WireFormatError: Malformed document or a newer writer.
    """
    check_version(payload, "compiled program")
    hardware_payload = _require(payload, "hardware", "compiled program")
    if not isinstance(hardware_payload, Mapping):
        raise WireFormatError("'hardware' must be an object")
    try:
        hardware = DualModeHardwareAbstraction.from_dict(dict(hardware_payload))
    except (TypeError, ValueError, KeyError) as exc:
        raise WireFormatError(f"invalid hardware description: {exc}") from exc
    segments_payload = _require(payload, "segments", "compiled program")
    if not isinstance(segments_payload, List):
        raise WireFormatError("'segments' must be an array")
    meta_text = payload.get("meta_program")
    if meta_text is not None and not isinstance(meta_text, str):
        raise WireFormatError("'meta_program' must be a string or null")
    return CompiledProgram(
        graph_name=str(_require(payload, "graph_name", "compiled program")),
        compiler_name=str(_require(payload, "compiler_name", "compiled program")),
        hardware=hardware,
        segments=[_segment_from_wire(segment) for segment in segments_payload],
        block_repeat=_float_in(payload.get("block_repeat", 1.0), "block_repeat"),
        compile_seconds=_float_in(payload.get("compile_seconds", 0.0), "compile_seconds"),
        metadata=dict(payload.get("metadata") or {}),
        stats=dict(payload.get("stats") or {}),
        meta_program=RenderedMetaProgram(meta_text) if meta_text is not None else None,
    )


def _json_safe(value, _depth: int = 0):
    """Best-effort projection onto JSON types (drops what cannot travel).

    Stats and metadata are open dictionaries — passes, experiments and
    callers may stash arbitrary objects in them.  The wire keeps every
    JSON-representable entry (including numpy scalars, via their
    ``item()``) and silently drops the rest rather than failing the
    response; the fingerprint never covers these fields, so dropping is
    lossless for identity.
    """
    if _depth > 8:
        return None
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value if value == value and value not in (float("inf"), float("-inf")) else str(value)
    if hasattr(value, "item") and not isinstance(value, Mapping):
        try:
            return _json_safe(value.item(), _depth + 1)
        except (TypeError, ValueError):
            return None
    if isinstance(value, Mapping):
        return {
            str(key): _json_safe(entry, _depth + 1)
            for key, entry in value.items()
            if _is_wireable(entry, _depth + 1)
        }
    if isinstance(value, (list, tuple)):
        return [_json_safe(entry, _depth + 1) for entry in value if _is_wireable(entry, _depth + 1)]
    return None


def _is_wireable(value, depth: int) -> bool:
    if depth > 8:
        return False
    if value is None or isinstance(value, (bool, int, float, str)):
        return True
    if hasattr(value, "item") and not isinstance(value, Mapping):
        return True
    if isinstance(value, Mapping):
        return all(_is_wireable(entry, depth + 1) for entry in value.values())
    if isinstance(value, (list, tuple)):
        return all(_is_wireable(entry, depth + 1) for entry in value)
    return False
