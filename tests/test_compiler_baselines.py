"""Tests for the CMSwitch compiler facade and the baseline compilers."""

import pytest

from repro.baselines import CIMMLCCompiler, OCCCompiler, PUMACompiler, get_compiler
from repro.core import CMSwitchCompiler, CompilerOptions, compile_model
from repro.models import Phase, Workload, build_model


class TestCMSwitchCompiler:
    def test_compile_returns_program(self, small_chip, tiny_cnn_graph):
        program = CMSwitchCompiler(small_chip).compile(tiny_cnn_graph)
        assert program.compiler_name == "cmswitch"
        assert program.num_segments >= 1
        assert program.graph_cycles > 0
        assert program.end_to_end_cycles == pytest.approx(
            program.graph_cycles * program.block_repeat
        )

    def test_compile_model_helper(self, small_chip, tiny_mlp_graph):
        # Kept as a deprecation shim over repro.api.Session.
        with pytest.warns(DeprecationWarning, match="Session"):
            program = compile_model(tiny_mlp_graph, small_chip)
        assert program.graph_name == "tiny-mlp"

    def test_block_repeat_from_metadata(self, small_chip):
        graph = build_model("tiny-transformer", Workload(batch_size=1, seq_len=16))
        graph.metadata["block_repeat"] = 7.0
        program = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False)).compile(graph)
        assert program.block_repeat == 7.0
        assert program.end_to_end_cycles == pytest.approx(7.0 * program.graph_cycles)

    def test_summary_mentions_key_quantities(self, compiled_tiny_cnn):
        text = compiled_tiny_cnn.summary()
        assert "segments" in text and "cycles" in text and "memory-array ratio" in text

    def test_allocation_table_rows(self, compiled_tiny_transformer):
        rows = compiled_tiny_transformer.allocation_table()
        names = {row["operator"] for row in rows}
        listed = {
            name
            for segment in compiled_tiny_transformer.segments
            for name in segment.operator_names
        }
        assert names == listed

    def test_memory_ratio_between_zero_and_one(self, compiled_tiny_transformer):
        assert 0.0 <= compiled_tiny_transformer.mean_memory_array_ratio <= 1.0

    def test_switch_overhead_fraction_small(self, compiled_tiny_transformer):
        assert 0.0 <= compiled_tiny_transformer.switch_overhead_fraction < 0.5

    def test_disallowing_memory_mode_removes_memory_arrays(self, small_chip, tiny_transformer_graph):
        options = CompilerOptions(allow_memory_mode=False, generate_code=False)
        program = CMSwitchCompiler(small_chip, options).compile(tiny_transformer_graph)
        assert all(segment.memory_arrays == 0 for segment in program.segments)

    def test_metadata_records_options_and_units(self, compiled_tiny_cnn):
        metadata = compiled_tiny_cnn.metadata
        assert metadata["options"]["use_milp"] is True
        assert metadata["num_flattened_units"] >= 1
        assert "fixed_mode_fallback_used" in metadata

    def test_compile_seconds_positive(self, compiled_tiny_cnn):
        assert compiled_tiny_cnn.compile_seconds > 0.0

    def test_greedy_option_still_compiles(self, small_chip, tiny_cnn_graph):
        options = CompilerOptions(use_milp=False, generate_code=False)
        program = CMSwitchCompiler(small_chip, options).compile(tiny_cnn_graph)
        assert program.graph_cycles > 0


class TestBaselineCompilers:
    @pytest.mark.parametrize("compiler_cls", [PUMACompiler, OCCCompiler])
    def test_all_compute_invariant(self, compiler_cls, small_chip, tiny_transformer_graph):
        program = compiler_cls(small_chip).compile(tiny_transformer_graph)
        assert all(segment.memory_arrays == 0 for segment in program.segments)

    def test_cim_mlc_all_compute_invariant(self, small_chip, tiny_transformer_graph):
        program = CIMMLCCompiler(small_chip).compile(tiny_transformer_graph)
        assert all(segment.memory_arrays == 0 for segment in program.segments)
        assert program.compiler_name == "cim-mlc"

    def test_occ_is_one_operator_per_segment(self, small_chip, tiny_cnn_graph):
        program = OCCCompiler(small_chip).compile(tiny_cnn_graph)
        assert all(len(segment.operator_names) == 1 for segment in program.segments)

    def test_puma_packs_multiple_operators(self, small_chip, tiny_cnn_graph):
        program = PUMACompiler(small_chip).compile(tiny_cnn_graph)
        assert any(len(segment.operator_names) > 1 for segment in program.segments)

    def test_baselines_respect_chip_budget(self, small_chip, tiny_transformer_graph):
        for compiler in (PUMACompiler(small_chip), OCCCompiler(small_chip), CIMMLCCompiler(small_chip)):
            program = compiler.compile(tiny_transformer_graph)
            for segment in program.segments:
                assert segment.compute_arrays <= small_chip.num_arrays

    @pytest.mark.parametrize("compiler_cls", [PUMACompiler, OCCCompiler])
    @pytest.mark.parametrize("generate_code", [False, True])
    def test_pipeline_config_parity_with_prerefactor_loop(
        self, compiler_cls, generate_code, small_chip, tiny_transformer_graph
    ):
        # Each baseline is now a pipeline configuration; its programs
        # must be bit-identical to the frozen pre-refactor fused loop.
        from repro.core._reference import reference_baseline_compile

        new = compiler_cls(small_chip, generate_code=generate_code).compile(
            tiny_transformer_graph
        )
        old = reference_baseline_compile(
            compiler_cls(small_chip, generate_code=generate_code),
            tiny_transformer_graph,
        )
        assert new.fingerprint() == old.fingerprint()
        assert new.end_to_end_cycles == old.end_to_end_cycles
        # The pipeline adds per-pass timings the fused loop never had.
        assert set(new.stats["pass_seconds"]) >= {"flatten", "segment", "allocate"}

    def test_cim_mlc_parity_with_prerefactor_wrapper(
        self, small_chip, tiny_transformer_graph
    ):
        # CIM-MLC was (and remains) the CMSwitch path with memory mode
        # off; the reference is the frozen fused compile re-labelled the
        # way the old wrapper re-labelled it.
        from repro.core._reference import reference_compile

        compiler = CIMMLCCompiler(small_chip)
        new = compiler.compile(tiny_transformer_graph)
        old = reference_compile(tiny_transformer_graph, small_chip, compiler.options)
        old.compiler_name = compiler.name
        assert new.fingerprint() == old.fingerprint()

    def test_baseline_uses_shared_flatten_passes(self, small_chip):
        pipeline = PUMACompiler(small_chip).build_pipeline()
        assert pipeline.names == [
            "flatten",
            "partition",
            "segment",
            "allocate",
            "codegen",
        ]
        from repro.pipeline import Flatten, PartitionOversized

        assert isinstance(pipeline.get("flatten"), Flatten)
        assert isinstance(pipeline.get("partition"), PartitionOversized)

    def test_get_compiler_registry(self, small_chip):
        assert isinstance(get_compiler("cmswitch", small_chip), CMSwitchCompiler)
        assert isinstance(get_compiler("cim-mlc", small_chip), CIMMLCCompiler)
        assert isinstance(get_compiler("puma", small_chip), PUMACompiler)
        assert isinstance(get_compiler("occ", small_chip), OCCCompiler)
        with pytest.raises(KeyError):
            get_compiler("tvm", small_chip)


class TestCompilerOrdering:
    """Cross-compiler invariants the paper's comparison relies on."""

    @pytest.fixture(scope="class")
    def programs(self, small_chip, tiny_transformer_graph):
        graph = tiny_transformer_graph
        return {
            "cmswitch": CMSwitchCompiler(
                small_chip, CompilerOptions(generate_code=False)
            ).compile(graph),
            "cim-mlc": CIMMLCCompiler(small_chip).compile(graph),
            "puma": PUMACompiler(small_chip).compile(graph),
            "occ": OCCCompiler(small_chip).compile(graph),
        }

    def test_cmswitch_not_slower_than_cim_mlc(self, programs):
        assert programs["cmswitch"].end_to_end_cycles <= programs["cim-mlc"].end_to_end_cycles * 1.001

    def test_cmswitch_not_slower_than_occ(self, programs):
        assert programs["cmswitch"].end_to_end_cycles <= programs["occ"].end_to_end_cycles * 1.001

    def test_occ_slowest_of_pipelining_baselines(self, programs):
        assert programs["occ"].end_to_end_cycles >= programs["cim-mlc"].end_to_end_cycles

    def test_all_programs_positive_latency(self, programs):
        for program in programs.values():
            assert program.end_to_end_cycles > 0
