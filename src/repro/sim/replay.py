"""Trace-driven serving simulator with online CIM<->memory re-provisioning.

The paper's compiler answers "how fast is one inference of one model on
this chip"; this module answers the serving question the ROADMAP
north-star needs: *what happens to tail latency when the chip serves a
multi-model request stream and arrays must flip between compute and
memory mode from one request to the next?*

The simulator is a discrete-event replay of a :class:`~repro.sim.traces.
Trace` against one chip:

1. **Compile pool** — each distinct (model, workload) pair in the trace
   is compiled exactly once through a :class:`~repro.service.
   CompileService` (so the allocation cache makes repeated buckets
   nearly free, and a warm replay performs zero allocator solves).
2. **Event loop** — requests are served FIFO in arrival order on a
   single-chip server whose clock is a
   :class:`~repro.core.clock.ManualClock` advanced in *virtual
   milliseconds*.  A request's service time is its program's predicted
   ``end_to_end_ms``.
3. **Re-provisioning** — when consecutive requests run *different*
   programs, the chip must re-provision its arrays from the layout the
   previous program ended in to the layout the next one starts with.
   That cost is the paper's own mode-switch model (Eq. 1,
   :func:`repro.cost.switching.mode_switch_cycles`) applied across the
   request boundary.  Weight reloading for the incoming program is *not*
   charged here — it is already part of the program's first-segment
   inter-cost (and hence of ``end_to_end_ms``); charging it again would
   double-count.

The pure scheduling core (:func:`replay_schedule`) is separated from
compilation so property/metamorphic tests can drive thousands of
randomized schedules without ever invoking the compiler.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from dataclasses import dataclass, field, replace as dataclasses_replace
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..core.clock import ManualClock
from ..core.compiler import CompilerOptions
from ..core.program import CompiledProgram
from ..cost.switching import mode_switch_cycles
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import get_preset
from ..models.workload import workload_to_payload
from ..obs import NULL_OBS, NULL_TRACER
from ..service import CompileJob, CompileJobResult, CompileService
from .metrics import ReplayMetrics, compute_metrics
from .traces import Trace

__all__ = [
    "ReplayResult",
    "ReplaySimulator",
    "RequestOutcome",
    "ScheduledRequest",
    "replay_schedule",
]

#: Schema tag of :meth:`ReplayResult.to_json_dict` output.
REPORT_SCHEMA = "repro-replay-report/1"


@dataclass(frozen=True)
class ScheduledRequest:
    """The scheduler-facing view of one request (no compiler objects).

    Attributes:
        request_id: Trace request id.
        model: Model name (metrics are grouped by it).
        arrival_ms: Arrival time on the virtual clock.
        service_ms: Predicted execution time of the request's program, or
            ``None`` when the program failed to compile (the request is
            then dropped without occupying the server).
        program_key: Identity of the program the request runs; the
            switch-cost callable decides the re-provisioning charge from
            consecutive keys.
    """

    request_id: str
    model: str
    arrival_ms: float
    service_ms: Optional[float]
    program_key: str


@dataclass(frozen=True)
class RequestOutcome:
    """What happened to one request during replay."""

    request_id: str
    model: str
    arrival_ms: float
    start_ms: float
    switch_ms: float
    service_ms: float
    finish_ms: float
    served: bool
    error: Optional[str] = None

    @property
    def queue_ms(self) -> float:
        """Time spent waiting for the server (excludes re-provisioning)."""
        return self.start_ms - self.arrival_ms

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion latency."""
        return self.finish_ms - self.arrival_ms

    def to_dict(self) -> Dict:
        return {
            "id": self.request_id,
            "model": self.model,
            "arrival_ms": self.arrival_ms,
            "start_ms": self.start_ms,
            "queue_ms": self.queue_ms,
            "switch_ms": self.switch_ms,
            "service_ms": self.service_ms,
            "finish_ms": self.finish_ms,
            "latency_ms": self.latency_ms,
            "served": self.served,
            "error": self.error,
        }


def replay_schedule(
    items: Sequence[ScheduledRequest],
    switch_ms_between: Callable[[Optional[str], str], float],
    clock: Optional[ManualClock] = None,
    tracer=None,
) -> List[RequestOutcome]:
    """Run the FIFO single-server event loop over pre-costed requests.

    Requests are served in the given order (callers pass them
    arrival-sorted, as :class:`~repro.sim.traces.Trace` guarantees).
    For each served request the server waits until both the request has
    arrived and the previous one has finished, pays the re-provisioning
    cost ``switch_ms_between(previous_key, key)``, then executes for
    ``service_ms``.  Failed requests (``service_ms is None``) are
    recorded as unserved and neither occupy the server nor change the
    array layout.

    The loop advances ``clock`` (a fresh :class:`ManualClock` by
    default) in virtual milliseconds; the clock only ever moves forward,
    which is exactly the invariant ``ManualClock.advance`` enforces.

    ``tracer`` (an optional :class:`~repro.obs.Tracer`) records a span
    per request — wall-clock time of the event-loop step, with the
    *virtual* arrival/start/finish times as attributes — and a
    ``replay.switch`` instant event whenever a request pays a non-zero
    re-provisioning cost.  The schedule itself is byte-identical with
    and without a tracer.
    """
    clock = clock if clock is not None else ManualClock()
    tracer = tracer if tracer is not None else NULL_TRACER
    outcomes: List[RequestOutcome] = []
    previous_key: Optional[str] = None
    for item in items:
        with tracer.span(
            "replay.request", request=item.request_id, model=item.model
        ) as span:
            if item.service_ms is None:
                outcomes.append(
                    RequestOutcome(
                        request_id=item.request_id,
                        model=item.model,
                        arrival_ms=item.arrival_ms,
                        start_ms=item.arrival_ms,
                        switch_ms=0.0,
                        service_ms=0.0,
                        finish_ms=item.arrival_ms,
                        served=False,
                        error=f"program {item.program_key!r} failed to compile",
                    )
                )
                span.set(served=False, arrival_ms=item.arrival_ms)
                continue
            if item.arrival_ms > clock.now():
                clock.advance(item.arrival_ms - clock.now())  # server idles
            start_ms = clock.now()
            switch_ms = float(switch_ms_between(previous_key, item.program_key))
            if switch_ms > 0.0:
                tracer.event(
                    "replay.switch",
                    switch_ms=switch_ms,
                    previous=previous_key,
                    program=item.program_key,
                )
            clock.advance(switch_ms + item.service_ms)
            outcome = RequestOutcome(
                request_id=item.request_id,
                model=item.model,
                arrival_ms=item.arrival_ms,
                start_ms=start_ms,
                switch_ms=switch_ms,
                service_ms=item.service_ms,
                finish_ms=clock.now(),
                served=True,
            )
            outcomes.append(outcome)
            span.set(
                served=True,
                arrival_ms=item.arrival_ms,
                start_ms=start_ms,
                finish_ms=outcome.finish_ms,
                switch_ms=switch_ms,
                latency_ms=outcome.latency_ms,
            )
            previous_key = item.program_key
    return outcomes


@dataclass
class ReplayResult:
    """Everything a replay produced: outcomes, metrics, compile stats."""

    trace: Trace
    hardware: DualModeHardwareAbstraction
    outcomes: List[RequestOutcome]
    metrics: ReplayMetrics
    distinct_programs: int = 0
    allocator_solves: int = 0
    allocation_disk_hits: int = 0
    compile_wall_seconds: float = 0.0
    compile_errors: Dict[str, str] = field(default_factory=dict)

    def to_json_dict(self) -> Dict:
        """JSON report: deterministic metrics plus compile accounting.

        The ``metrics`` sub-dict depends only on the trace, hardware and
        options — it is bit-identical across repeated runs with the same
        seed (the determinism CI job compares exactly this block).  Wall
        time and cache hits live under ``compile``, which legitimately
        varies between cold and warm runs.
        """
        return {
            "schema": REPORT_SCHEMA,
            "hardware": {
                "preset": self.hardware.name,
                "fingerprint": self.hardware.fingerprint(),
            },
            "trace": {
                "requests": len(self.trace),
                "models": self.trace.models,
                "metadata": self.trace.metadata,
            },
            "metrics": self.metrics.to_dict(),
            "compile": {
                "distinct_programs": self.distinct_programs,
                "allocator_solves": self.allocator_solves,
                "allocation_disk_hits": self.allocation_disk_hits,
                "wall_seconds": self.compile_wall_seconds,
                "errors": dict(sorted(self.compile_errors.items())),
            },
        }

    def render_report(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        m = self.metrics
        lines = [
            f"replay: {self.trace.describe()} on {self.hardware.name}",
            (
                f"  programs: {self.distinct_programs} distinct, "
                f"{self.allocator_solves} allocator solve(s), "
                f"{self.allocation_disk_hits} disk hit(s)"
            ),
            (
                f"  served {m.served}/{m.requests} request(s) in "
                f"{m.makespan_ms:.3f} ms -> {m.throughput_rps:.2f} req/s"
            ),
            (
                f"  latency p50={m.latency_p50_ms:.3f} ms "
                f"p99={m.latency_p99_ms:.3f} ms max={m.latency_max_ms:.3f} ms"
            ),
            (
                f"  utilisation={m.utilisation:.3f} "
                f"switch_share={m.switch_share:.4f} "
                f"(switching {m.switch_ms_total:.3f} ms of "
                f"{m.service_ms_total + m.switch_ms_total:.3f} ms busy)"
            ),
        ]
        for key, error in sorted(self.compile_errors.items()):
            lines.append(f"  FAILED {key}: {error}")
        return "\n".join(lines)


def _program_key(model: str, workload) -> str:
    """Stable identity of a (model, workload) pair within one replay."""
    payload = json.dumps(workload_to_payload(workload), sort_keys=True)
    return f"{model}|{payload}"


class ReplaySimulator:
    """Replays request traces against one chip.

    Args:
        hardware: Preset name or hardware abstraction the trace runs on.
        service: Compile service to build programs through (shares its
            allocation cache with everything else using it).  A private
            in-memory service is created when omitted.
        options: Compiler options for the trace's programs.  Code
            generation is forced off — replay only consumes predicted
            timings, and generating code for every distinct workload
            would slow the pool down for nothing.
        obs: Optional :class:`~repro.obs.Observability` bundle; replay
            records a span per served request, ``replay.switch`` instant
            events, a ``replay.queue_depth`` histogram and drop/switch
            counters.  A private service created here inherits the
            bundle (a caller-supplied ``service`` keeps its own).
    """

    def __init__(
        self,
        hardware: Union[str, DualModeHardwareAbstraction] = "dynaplasia",
        service: Optional[CompileService] = None,
        options: Optional[CompilerOptions] = None,
        obs=None,
    ) -> None:
        self.hardware = (
            get_preset(hardware) if isinstance(hardware, str) else hardware
        )
        self.obs = NULL_OBS if obs is None else obs
        self.service = (
            service if service is not None else CompileService(obs=self.obs)
        )
        base = options if options is not None else CompilerOptions()
        if base.generate_code:
            base = dataclasses_replace(base, generate_code=False)
        self.options = base

    # ------------------------------------------------------------------ #
    # compile pool
    # ------------------------------------------------------------------ #
    def compile_pool(self, trace: Trace) -> Dict[str, CompileJobResult]:
        """Compile each distinct (model, workload) of the trace once."""
        jobs: Dict[str, CompileJob] = {}
        for request in trace.requests:
            key = _program_key(request.model, request.workload)
            if key not in jobs:
                jobs[key] = CompileJob(
                    request.model,
                    workload=request.workload,
                    hardware=self.hardware,
                    options=self.options,
                    label=key,
                )
        keys = list(jobs)
        results = self.service.compile_batch([jobs[key] for key in keys])
        return dict(zip(keys, results))

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def run(self, trace: Trace) -> ReplayResult:
        """Compile the trace's program pool and replay it over virtual time."""
        with self.obs.tracer.span("replay.compile_pool", requests=len(trace)):
            pool = self.compile_pool(trace)
        programs: Dict[str, CompiledProgram] = {
            key: result.program for key, result in pool.items() if result.ok
        }
        items = [
            ScheduledRequest(
                request_id=request.request_id,
                model=request.model,
                arrival_ms=request.arrival_ms,
                service_ms=(
                    programs[key].end_to_end_ms if key in programs else None
                ),
                program_key=key,
            )
            for request in trace.requests
            for key in [_program_key(request.model, request.workload)]
        ]
        with self.obs.tracer.span("replay.schedule", requests=len(items)):
            outcomes = replay_schedule(
                items,
                self._switch_ms_between(programs),
                tracer=self.obs.tracer,
            )
        self._observe(items, outcomes)

        def stats_sum(name: str) -> int:
            return sum(int(result.stats.get(name, 0)) for result in pool.values())

        return ReplayResult(
            trace=trace,
            hardware=self.hardware,
            outcomes=outcomes,
            metrics=compute_metrics(outcomes),
            distinct_programs=len(pool),
            allocator_solves=stats_sum("allocator_solves"),
            allocation_disk_hits=stats_sum("allocation_disk_hits"),
            compile_wall_seconds=sum(r.wall_seconds for r in pool.values()),
            compile_errors={
                key: result.error
                for key, result in sorted(pool.items())
                if not result.ok
            },
        )

    def _observe(
        self,
        items: Sequence[ScheduledRequest],
        outcomes: Sequence[RequestOutcome],
    ) -> None:
        """Mirror one replay's outcomes into the metrics registry.

        Queue depth is measured at each served request's start: the
        number of later requests already arrived but still waiting
        (``arrival_ms <= start_ms``).  Arrivals are sorted (a
        :class:`~repro.sim.traces.Trace` invariant), so a single
        ``bisect`` per request suffices.
        """
        metrics = self.obs.metrics
        if not getattr(metrics, "enabled", False):
            return
        arrivals = [item.arrival_ms for item in items]
        for index, outcome in enumerate(outcomes):
            metrics.inc("replay.requests")
            if not outcome.served:
                metrics.inc("replay.dropped")
                continue
            if outcome.switch_ms > 0.0:
                metrics.inc("replay.switches")
            depth = bisect_right(arrivals, outcome.start_ms) - (index + 1)
            metrics.observe("replay.queue_depth", max(0, depth))
            metrics.observe("replay.latency_ms", outcome.latency_ms)

    def _switch_ms_between(
        self, programs: Dict[str, CompiledProgram]
    ) -> Callable[[Optional[str], str], float]:
        """Re-provisioning cost between consecutive programs, in ms.

        The chip leaves the previous program in its *last* segment's
        array layout and must enter the next program's *first* segment
        layout; Eq. 1 prices the arrays that flip mode.  Identical
        consecutive programs (the common bucket-repeat case) cost 0, as
        does the very first request (initial configuration is free in
        the paper's model, and the program's own first-segment
        inter-cost already covers its weight loading).
        """

        def switch_ms(previous_key: Optional[str], key: str) -> float:
            if previous_key is None or previous_key == key:
                return 0.0
            previous = programs[previous_key]
            current = programs[key]
            cycles = mode_switch_cycles(
                previous.segments[-1].resources,
                current.segments[0].resources,
                self.hardware,
            )
            return self.hardware.cycles_to_ms(cycles)

        return switch_ms
