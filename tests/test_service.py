"""Tests for the batch compilation service and its CLI subcommand."""

import pytest

from repro.cli import build_parser, main
from repro.core import AllocationCache, CMSwitchCompiler, CompilerOptions
from repro.models import Workload, build_model
from repro.service import CompileJob, CompileJobResult, CompileService, compile_batch


class TestCompileJob:
    def test_name_from_model_string(self):
        assert CompileJob("tiny-cnn").name == "tiny-cnn"

    def test_name_from_graph_and_label(self, tiny_cnn_graph):
        assert CompileJob(tiny_cnn_graph).name == tiny_cnn_graph.name
        assert CompileJob("tiny-cnn", label="warm").name == "warm"

    def test_resolves_preset_and_graph(self, small_chip):
        job = CompileJob("tiny-mlp", hardware="small-test-chip")
        assert job.resolve_hardware() == small_chip
        assert job.resolve_graph().name

    def test_graph_passthrough(self, tiny_cnn_graph, small_chip):
        job = CompileJob(tiny_cnn_graph, hardware=small_chip)
        assert job.resolve_graph() is tiny_cnn_graph
        assert job.resolve_hardware() is small_chip


class TestCompileService:
    def _jobs(self, small_chip):
        workload = Workload(batch_size=1)
        return [
            CompileJob("tiny-cnn", workload=workload, hardware=small_chip),
            CompileJob("tiny-mlp", workload=workload, hardware=small_chip),
        ]

    def test_batch_matches_sequential_compiles(self, small_chip):
        results = CompileService().compile_batch(self._jobs(small_chip), max_workers=2)
        assert all(result.ok for result in results)
        for result in results:
            graph = result.job.resolve_graph()
            reference = CMSwitchCompiler(
                small_chip, CompilerOptions(generate_code=False)
            ).compile(graph)
            assert result.program.end_to_end_cycles == reference.end_to_end_cycles
            assert [s.allocations for s in result.program.segments] == [
                s.allocations for s in reference.segments
            ]

    def test_results_keep_input_order(self, small_chip):
        jobs = self._jobs(small_chip)
        results = CompileService().compile_batch(jobs, max_workers=2)
        assert [result.job.name for result in results] == [job.name for job in jobs]

    def test_error_does_not_kill_batch(self, small_chip):
        jobs = [
            CompileJob("tiny-cnn", hardware=small_chip),
            CompileJob("no-such-model", hardware=small_chip),
            CompileJob("tiny-mlp", hardware=small_chip),
        ]
        results = CompileService().compile_batch(jobs, max_workers=2)
        assert [result.ok for result in results] == [True, False, True]
        failed = results[1]
        assert failed.program is None
        assert "no-such-model" in failed.error or "KeyError" in failed.error
        assert failed.error_traceback
        assert "FAILED" in failed.describe()

    def test_repeated_jobs_reuse_cached_solves(self, small_chip):
        """Acceptance: same model twice -> strictly fewer solves than 2x cold."""
        cold = CMSwitchCompiler(
            small_chip, CompilerOptions(generate_code=False)
        ).compile(build_model("tiny-cnn", Workload(batch_size=1)))
        cold_solves = cold.stats["allocator_solves"]
        assert cold_solves > 0

        service = CompileService()
        jobs = [CompileJob("tiny-cnn", hardware=small_chip) for _ in range(2)]
        # Sequential workers make the second job's hit count deterministic.
        results = service.compile_batch(jobs, max_workers=1)
        total_solves = sum(result.stats["allocator_solves"] for result in results)
        assert total_solves < 2 * cold_solves
        assert results[1].stats["allocator_solves"] == 0
        assert results[1].stats["allocation_cache_hit_rate"] == 1.0
        assert service.cache_stats.hits > 0

    def test_per_job_stats_surfaced(self, small_chip):
        result = CompileService().compile(CompileJob("tiny-mlp", hardware=small_chip))
        assert result.ok
        for key in ("allocator_solves", "allocation_cache_hits",
                    "allocation_cache_hit_rate", "wall_seconds"):
            assert key in result.stats
        assert result.stats == result.program.stats
        assert result.wall_seconds > 0
        assert "cache hit rate" in result.describe()

    def test_use_cache_false_disables_sharing(self, small_chip):
        service = CompileService(use_cache=False)
        assert service.cache is None
        results = service.compile_batch(
            [CompileJob("tiny-mlp", hardware=small_chip)] * 2, max_workers=1
        )
        assert all(result.ok for result in results)
        assert all(result.stats["allocation_cache_hits"] == 0 for result in results)
        assert service.cache_stats.lookups == 0

    def test_external_cache_is_shared(self, small_chip):
        cache = AllocationCache()
        # compile_batch is kept as a deprecation shim over Session.
        with pytest.warns(DeprecationWarning, match="Session"):
            compile_batch([CompileJob("tiny-mlp", hardware=small_chip)], cache=cache)
        assert cache.stats.stores > 0

    def test_empty_batch(self):
        assert CompileService().compile_batch([]) == []


class TestCompileBatchCLI:
    def test_parser_accepts_batch_arguments(self):
        args = build_parser().parse_args(
            ["compile-batch", "tiny-cnn", "tiny-mlp", "--hardware", "small-test-chip",
             "--jobs", "2", "--repeat", "2"]
        )
        assert args.models == ["tiny-cnn", "tiny-mlp"]
        assert args.jobs == 2 and args.repeat == 2 and not args.no_cache

    def test_cli_compile_batch_runs(self, capsys):
        code = main(
            ["compile-batch", "tiny-cnn", "tiny-mlp",
             "--hardware", "small-test-chip", "--repeat", "2", "--jobs", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert "tiny-cnn#2" in out
        assert "cache:" in out

    def test_cli_rejects_unknown_models_before_compiling(self, capsys):
        # Unified unknown-name handling across compile/compile-batch/
        # compare/dse: exit code 2 plus the registered model list.
        code = main(["compile-batch", "definitely-not-a-model",
                     "--hardware", "small-test-chip"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown model name(s): definitely-not-a-model" in err
        assert "available models:" in err

    def test_cli_prints_per_pass_wall_time(self, capsys):
        # Acceptance gate of the pipeline refactor: per-pass timings show
        # up in the compile-batch table, aggregated over the jobs.
        code = main(["compile-batch", "tiny-mlp", "--hardware", "small-test-chip"])
        assert code == 0
        out = capsys.readouterr().out
        assert "pass wall time:" in out
        for pass_name in ("flatten", "partition", "segment", "allocate"):
            assert pass_name in out

    def test_cli_no_cache_flag(self, capsys):
        code = main(["compile-batch", "tiny-mlp", "--hardware", "small-test-chip",
                     "--no-cache"])
        assert code == 0
        assert "0 hits / 0 lookups" in capsys.readouterr().out

    def test_cli_zero_models_is_a_usage_error(self, capsys):
        """Regression: no models must fail loudly, not silently succeed."""
        code = main(["compile-batch"])
        assert code == 2
        captured = capsys.readouterr()
        assert "at least one model" in captured.err
        assert "usage:" in captured.err

    def test_parser_accepts_cache_dir_and_backend(self):
        args = build_parser().parse_args(
            ["compile-batch", "tiny-cnn", "--cache-dir", "/tmp/x",
             "--backend", "process"]
        )
        assert args.cache_dir == "/tmp/x" and args.backend == "process"

    def test_cli_cache_dir_warm_start(self, tmp_path, capsys):
        """Two invocations on one --cache-dir: the second solves nothing."""
        argv = ["compile-batch", "tiny-mlp", "--hardware", "small-test-chip",
                "--cache-dir", str(tmp_path)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "disk store:" in first
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "total allocator solves: 0" in second
