"""Unit tests for tensor metadata (repro.ir.tensor)."""

import pytest

from repro.ir.tensor import DataType, TensorSpec, elements, total_bytes


class TestDataType:
    @pytest.mark.parametrize(
        "dtype,size",
        [
            (DataType.INT8, 1),
            (DataType.INT16, 2),
            (DataType.INT32, 4),
            (DataType.FP16, 2),
            (DataType.FP32, 4),
        ],
    )
    def test_size_bytes(self, dtype, size):
        assert dtype.size_bytes == size

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_size_bits_is_eight_times_bytes(self, dtype):
        assert dtype.size_bits == dtype.size_bytes * 8

    @pytest.mark.parametrize("dtype", list(DataType))
    def test_numpy_dtype_is_valid(self, dtype):
        import numpy as np

        assert np.dtype(dtype.numpy_dtype).itemsize == dtype.size_bytes

    def test_roundtrip_from_value(self):
        assert DataType("int8") is DataType.INT8


class TestTensorSpec:
    def test_basic_properties(self):
        spec = TensorSpec("x", (2, 3, 4))
        assert spec.rank == 3
        assert spec.num_elements == 24
        assert spec.num_bytes == 24  # int8 default

    def test_fp32_bytes(self):
        spec = TensorSpec("x", (10,), dtype=DataType.FP32)
        assert spec.num_bytes == 40

    def test_scalar_shape(self):
        spec = TensorSpec("s", ())
        assert spec.rank == 0
        assert spec.num_elements == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            TensorSpec("", (1,))

    @pytest.mark.parametrize("shape", [(0,), (-1, 2), (2, 0, 3)])
    def test_non_positive_dims_rejected(self, shape):
        with pytest.raises(ValueError):
            TensorSpec("x", shape)

    def test_shape_coerced_to_int_tuple(self):
        spec = TensorSpec("x", [2.0, 3.0])
        assert spec.shape == (2, 3)
        assert all(isinstance(d, int) for d in spec.shape)

    def test_with_name(self):
        spec = TensorSpec("x", (2, 2))
        renamed = spec.with_name("y")
        assert renamed.name == "y"
        assert renamed.shape == spec.shape
        assert spec.name == "x"  # original untouched

    def test_with_shape(self):
        spec = TensorSpec("x", (2, 2))
        reshaped = spec.with_shape((4,))
        assert reshaped.shape == (4,)
        assert reshaped.name == "x"

    def test_frozen(self):
        spec = TensorSpec("x", (1,))
        with pytest.raises(AttributeError):
            spec.name = "y"

    def test_to_from_dict_roundtrip(self):
        spec = TensorSpec("act", (1, 16, 8, 8), dtype=DataType.FP16)
        restored = TensorSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_str_contains_name_and_dims(self):
        text = str(TensorSpec("act", (2, 4)))
        assert "act" in text and "2x4" in text

    def test_equality_and_hash(self):
        a = TensorSpec("x", (2, 2))
        b = TensorSpec("x", (2, 2))
        assert a == b
        assert hash(a) == hash(b)


class TestAggregates:
    def test_elements_sum(self):
        specs = [TensorSpec("a", (2, 2)), TensorSpec("b", (3,))]
        assert elements(specs) == 7

    def test_total_bytes_sum(self):
        specs = [TensorSpec("a", (2, 2), DataType.FP32), TensorSpec("b", (3,))]
        assert total_bytes(specs) == 16 + 3

    def test_empty_iterables(self):
        assert elements([]) == 0
        assert total_bytes([]) == 0
