"""Benchmark: cache-aware design-space exploration (repro.dse).

The DSE engine's value proposition is that exploring a design space a
*second* time — after a restart, a widened sweep, or on another machine
sharing the cache directory — costs almost nothing: the planner probes
the persistent allocation store, schedules warm points first, and every
solve the first run performed is a disk hit in the second.

The module doubles as a CI smoke script::

    PYTHONPATH=src python benchmarks/bench_dse.py --quick

which runs a small (model x array count x mode split) space twice
against one cache directory — a cold pass and a fresh-runner warm pass —
asserts the warm pass performs **zero** allocator solves with every
canonical job planned warm, and writes the measured numbers to
``BENCH_dse.json`` for the performance-trajectory archive.

A second smoke covers the multi-fidelity evaluator tiering::

    PYTHONPATH=src python benchmarks/bench_dse.py --quick --fidelity auto

which explores the same 12-point space with the successive-halving
ladder (analytical rung 0, survivors climb the greedy-allocator rung,
then compile fidelity), asserts rung 0 performs **zero** allocator
solves and that the schedule compiles at least 5x fewer candidates than
the all-compile grid baseline, and writes ``BENCH_dse_fidelity.json``.
"""

import pytest

from conftest import record

from repro.dse import DesignSpace, DSERunner, SuccessiveHalvingStrategy
from repro.hardware import small_test_chip
from repro.models import Workload


def _quick_space() -> DesignSpace:
    """A tiny but non-trivial space: 2 models x 3 array counts x 2 modes."""
    return DesignSpace(
        models=["tiny-cnn", "tiny-mlp"],
        base_hardware=small_test_chip(),
        workloads=[Workload(batch_size=1, seq_len=16)],
        hardware_axes={"num_arrays": [4, 6, 8]},
        option_axes={"allow_memory_mode": [True, False]},
    )


def _run_twice(cache_dir):
    """Cold run + fresh-runner warm run against one cache directory."""
    cold = DSERunner(_quick_space(), strategy="grid", cache_dir=cache_dir).run()
    warm = DSERunner(_quick_space(), strategy="grid", cache_dir=cache_dir).run()
    return cold, warm


@pytest.mark.benchmark(group="dse")
def test_dse_warm_planning_speedup(benchmark, tmp_path_factory):
    """Second exploration of an overlapping space performs ~0 solves."""
    cache_dir = tmp_path_factory.mktemp("dse-cache")

    def run():
        return _run_twice(cache_dir)

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {"pass": "cold", "solves": cold.allocator_solves, "wall": cold.wall_seconds},
        {"pass": "warm", "solves": warm.allocator_solves, "wall": warm.wall_seconds},
    ]
    record(benchmark, rows, "")
    assert cold.allocator_solves > 0
    assert warm.allocator_solves == 0
    assert warm.cold_planned == 0


def _quick_smoke(cache_dir=None, json_out="BENCH_dse.json") -> int:
    """CI smoke: warm-planning speedup of a second overlapping exploration."""
    import tempfile

    from conftest import write_bench_record

    with tempfile.TemporaryDirectory(prefix="bench-dse-") as tmp:
        cold, warm = _run_twice(cache_dir or f"{tmp}/cache")
        speedup = cold.wall_seconds / warm.wall_seconds if warm.wall_seconds else float("inf")
        print(
            "dse smoke (cache-aware planning, second run of an overlapping space):\n"
            f"  cold run : {cold.wall_seconds:.3f} s ({cold.allocator_solves} solves, "
            f"{cold.evaluated} evaluated, {cold.replicated} replicated, "
            f"{cold.warm_planned} planned warm)\n"
            f"  warm run : {warm.wall_seconds:.3f} s ({warm.allocator_solves} solves, "
            f"{warm.disk_hits} disk hits, {warm.warm_planned} planned warm)\n"
            f"  speedup  : {speedup:.1f}x"
        )
        write_bench_record(
            "dse_warm_planning_quick",
            json_out,
            cold_seconds=cold.wall_seconds,
            warm_seconds=warm.wall_seconds,
            speedup=speedup,
            allocator_solves_cold=cold.allocator_solves,
            allocator_solves_warm=warm.allocator_solves,
            disk_hits_warm=warm.disk_hits,
            points_evaluated=cold.evaluated,
            points_replicated=cold.replicated,
            warm_planned_warm_run=warm.warm_planned,
            cold_planned_warm_run=warm.cold_planned,
        )
        if warm.allocator_solves != 0 or cold.allocator_solves == 0:
            print("FAIL: warm exploration did not reuse the cold run's solves")
            return 1
        if warm.cold_planned != 0:
            print("FAIL: planner did not recognise the warm candidates")
            return 1
    return 0


@pytest.mark.benchmark(group="dse")
def test_dse_multifidelity_prunes_compiles(benchmark):
    """Auto fidelity compiles a fraction of the space, rung 0 solves nothing."""

    def run():
        auto = DSERunner(
            _quick_space(),
            strategy=SuccessiveHalvingStrategy(seed=0, keep_fraction=1 / 6),
            fidelity="auto",
        ).run()
        baseline = DSERunner(_quick_space(), strategy="grid", fidelity="compile").run()
        return auto, baseline

    auto, baseline = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, _fidelity_rows(auto, baseline), "")
    rung0 = [r for r in auto.new_records if r.fidelity == "analytical"]
    assert len(rung0) == 12
    assert sum(r.allocator_solves for r in rung0) == 0
    compiles_auto = auto.evaluated_by_fidelity.get("compile", 0)
    compiles_baseline = baseline.evaluated_by_fidelity.get("compile", 0)
    assert compiles_auto * 5 <= compiles_baseline


def _fidelity_rows(auto, baseline):
    return [
        {
            "schedule": "auto",
            "compiles": auto.evaluated_by_fidelity.get("compile", 0),
            "analytical": auto.evaluated_by_fidelity.get("analytical", 0),
            "solves": auto.allocator_solves,
            "wall": auto.wall_seconds,
        },
        {
            "schedule": "all-compile",
            "compiles": baseline.evaluated_by_fidelity.get("compile", 0),
            "analytical": 0,
            "solves": baseline.allocator_solves,
            "wall": baseline.wall_seconds,
        },
    ]


def _fidelity_smoke(cache_dir=None, json_out="BENCH_dse_fidelity.json") -> int:
    """CI smoke: the auto schedule prunes >=5x of the compile work."""
    from conftest import write_bench_record

    space = _quick_space()
    auto = DSERunner(
        space,
        strategy=SuccessiveHalvingStrategy(seed=0, keep_fraction=1 / 6),
        fidelity="auto",
        cache_dir=cache_dir,
    ).run()
    baseline = DSERunner(
        _quick_space(), strategy="grid", fidelity="compile", cache_dir=cache_dir
    ).run()

    rung0 = [r for r in auto.new_records if r.fidelity == "analytical"]
    rung0_solves = sum(r.allocator_solves for r in rung0)
    greedy_auto = auto.evaluated_by_fidelity.get("greedy", 0)
    compiles_auto = auto.evaluated_by_fidelity.get("compile", 0)
    compiles_baseline = baseline.evaluated_by_fidelity.get("compile", 0)
    speedup = (
        baseline.wall_seconds / auto.wall_seconds if auto.wall_seconds else float("inf")
    )
    print(
        "dse multi-fidelity smoke (successive halving over the evaluator tiers):\n"
        f"  auto        : {auto.wall_seconds:.3f} s — {len(rung0)} analytical "
        f"({rung0_solves} solves), {greedy_auto} greedy, {compiles_auto} "
        f"compiled, {auto.allocator_solves} solves total\n"
        f"  all-compile : {baseline.wall_seconds:.3f} s — "
        f"{compiles_baseline} compiled, {baseline.allocator_solves} solves\n"
        f"  compile reduction: {compiles_baseline}/{compiles_auto} "
        f"(wall {speedup:.1f}x)"
    )
    write_bench_record(
        "dse_multifidelity_quick",
        json_out,
        analytical_evaluations=len(rung0),
        rung0_allocator_solves=rung0_solves,
        greedy_evaluations=greedy_auto,
        compiles_auto=compiles_auto,
        compiles_baseline=compiles_baseline,
        allocator_solves_auto=auto.allocator_solves,
        allocator_solves_baseline=baseline.allocator_solves,
        wall_seconds_auto=auto.wall_seconds,
        wall_seconds_baseline=baseline.wall_seconds,
    )
    if rung0_solves != 0 or len(rung0) != space.size:
        print("FAIL: rung 0 did not score the whole space analytically for free")
        return 1
    if compiles_auto == 0 or compiles_auto * 5 > compiles_baseline:
        print("FAIL: the auto schedule did not prune >=5x of the compile work")
        return 1
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="run the CI smoke")
    parser.add_argument(
        "--fidelity",
        choices=["compile", "auto"],
        default="compile",
        help="compile: warm-planning smoke; auto: multi-fidelity smoke",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent allocation-cache directory"
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="machine-readable result record ('' disables; default depends on mode)",
    )
    cli_args, _ = parser.parse_known_args()
    if not cli_args.quick:
        parser.error("bench_dse.py currently only supports --quick (or run via pytest)")
    if cli_args.fidelity == "auto":
        json_out = (
            cli_args.json_out
            if cli_args.json_out is not None
            else "BENCH_dse_fidelity.json"
        )
        sys.exit(_fidelity_smoke(cache_dir=cli_args.cache_dir, json_out=json_out))
    json_out = cli_args.json_out if cli_args.json_out is not None else "BENCH_dse.json"
    sys.exit(_quick_smoke(cache_dir=cli_args.cache_dir, json_out=json_out))
