"""MobileNetV2 (Sandler et al., 2018).

MobileNetV2 is the smallest CNN benchmark in the paper (Fig. 14,
"MobileNet").  Its inverted-residual blocks mix 1x1 pointwise convolutions
with depthwise 3x3 convolutions, giving it much lower arithmetic intensity
per layer than VGG/ResNet and therefore smaller but non-trivial gains from
dual-mode switching.
"""

from __future__ import annotations

from typing import List, Tuple

from ...ir.builder import GraphBuilder
from ...ir.graph import Graph
from ...ir.tensor import DataType, TensorSpec
from ..workload import Workload

# (expansion factor, output channels, number of blocks, first-block stride)
MOBILENET_V2_LAYOUT: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)


def _inverted_residual(
    builder: GraphBuilder,
    x: TensorSpec,
    expansion: int,
    out_channels: int,
    stride: int,
    name: str,
) -> TensorSpec:
    """MobileNetV2 inverted-residual block (expand -> depthwise -> project)."""
    in_channels = x.shape[1]
    hidden = in_channels * expansion
    identity = x
    y = x
    if expansion != 1:
        y = builder.conv2d(y, hidden, kernel=1, stride=1, padding=0, name=f"{name}_expand")
        y = builder.batchnorm(y, name=f"{name}_expand_bn")
        y = builder.activation(y, "relu", name=f"{name}_expand_relu")
    y = builder.conv2d(
        y, hidden, kernel=3, stride=stride, padding=1, groups=hidden, name=f"{name}_depthwise"
    )
    y = builder.batchnorm(y, name=f"{name}_dw_bn")
    y = builder.activation(y, "relu", name=f"{name}_dw_relu")
    y = builder.conv2d(y, out_channels, kernel=1, stride=1, padding=0, name=f"{name}_project")
    y = builder.batchnorm(y, name=f"{name}_project_bn")
    if stride == 1 and in_channels == out_channels:
        y = builder.add(y, identity, name=f"{name}_residual")
    return y


def build_mobilenet_v2(workload: Workload, dtype: DataType = DataType.INT8) -> Graph:
    """Build MobileNetV2 at ImageNet resolution."""
    builder = GraphBuilder("mobilenet-v2", dtype=dtype)
    x = builder.input("image", (workload.batch_size, 3, workload.image_size, workload.image_size))
    x = builder.conv2d(x, 32, kernel=3, stride=2, padding=1, name="stem_conv")
    x = builder.batchnorm(x, name="stem_bn")
    x = builder.relu(x, name="stem_relu")
    block_index = 0
    for expansion, channels, repeats, first_stride in MOBILENET_V2_LAYOUT:
        for i in range(repeats):
            block_index += 1
            stride = first_stride if i == 0 else 1
            x = _inverted_residual(
                builder, x, expansion, channels, stride, name=f"block{block_index}"
            )
    x = builder.conv2d(x, 1280, kernel=1, stride=1, padding=0, name="head_conv")
    x = builder.batchnorm(x, name="head_bn")
    x = builder.relu(x, name="head_relu")
    x = builder.global_avg_pool(x, name="gap")
    x = builder.linear(x, 1000, name="classifier")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update(
        {
            "family": "cnn",
            "model": "mobilenet-v2",
            "batch_size": workload.batch_size,
            "image_size": workload.image_size,
            "block_repeat": 1.0,
        }
    )
    return graph
