"""Cache-aware planning of design-point evaluations.

A naive DSE loop hands every candidate straight to the compiler.  The
planner inserts the step the two-tier allocation cache makes worthwhile:

* **Structural dedup** — two candidates whose (hardware fingerprint,
  solve-relevant options, flattened operator-profile sequence) coincide
  compile to bit-identical programs, so only one of them is evaluated and
  the result is replicated onto the rest.  This catches duplicated axis
  values, aliased model/workload combinations, and points whose differing
  knobs don't reach the cost model.
* **Warm-first ordering** — each unique candidate is probed against the
  persistent :class:`~repro.core.store.DiskCacheStore` (the key of the
  first allocation window the DP will request, built exactly the way
  :func:`~repro.core.allocation.allocate_segment` builds it).  Candidates
  whose probe hits are scheduled *before* cold ones: warm jobs finish in
  milliseconds and their results reach the strategy sooner, so an
  iterative strategy spends its budget on genuinely new ground first, and
  a batch's thread pool is not blocked on cold solves while warm results
  wait.

The probe is a scheduling heuristic, never a correctness input: a stale
or wrong warmth guess only changes evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.cache import AllocationCacheKey, profile_signature
from ..core.segmentation import (
    FlattenedUnit,
    first_window_cache_key,
    flatten_graph,
)
from ..core.store import DiskCacheStore
from ..ir.graph import Graph
from ..models.registry import build_model
from .space import DesignPoint, options_signature

__all__ = ["PlannedJob", "Plan", "Planner"]


@dataclass
class PlannedJob:
    """One canonical compile the batch will actually run.

    Attributes:
        point: The canonical design point.
        graph: Its materialised computation graph (reused by the runner
            so the compile service does not rebuild the model).
        structural_key: Dedup identity of the candidate.
        warm: Whether the disk-store probe found the first allocation
            window already cached.
        duplicates: Points collapsed onto this job; they receive a
            replicated copy of its result.
    """

    point: DesignPoint
    graph: Optional[Graph]
    structural_key: str
    warm: bool = False
    duplicates: List[DesignPoint] = field(default_factory=list)


@dataclass
class Plan:
    """Ordered evaluation plan for one batch of candidates.

    Attributes:
        jobs: Canonical jobs, warm jobs first (stable within groups).
        n_points: Candidates planned (canonical + collapsed).
        n_warm / n_cold: Canonical jobs by probe outcome.
        n_collapsed: Candidates served by another job's result.
    """

    jobs: List[PlannedJob]
    n_points: int = 0
    n_warm: int = 0
    n_cold: int = 0
    n_collapsed: int = 0


class Planner:
    """Plans candidate batches against a persistent allocation store.

    Args:
        store: The disk tier candidates are probed against; None disables
            warmth probing (everything schedules as cold, dedup still
            applies).

    The planner memoises built graphs per (model, workload) and flattened
    units per (graph, hardware fingerprint), so planning a wide sweep
    over one model costs one model build, not one per point.
    """

    def __init__(self, store: Optional[DiskCacheStore] = None) -> None:
        self.store = store
        self._graphs: Dict[Tuple, Graph] = {}
        self._units: Dict[Tuple[int, str], List[FlattenedUnit]] = {}

    # ------------------------------------------------------------------ #
    # candidate materialisation
    # ------------------------------------------------------------------ #
    def graph_for(self, point: DesignPoint) -> Graph:
        """The (memoised) computation graph of a design point."""
        if isinstance(point.model, Graph):
            return point.model
        key = (point.model, point.workload)
        graph = self._graphs.get(key)
        if graph is None:
            graph = build_model(point.model, point.workload)
            self._graphs[key] = graph
        return graph

    def _units_for(self, graph: Graph, point: DesignPoint) -> List[FlattenedUnit]:
        """Flattened schedulable units of ``graph`` on the point's chip."""
        key = (id(graph), point.hardware.fingerprint())
        units = self._units.get(key)
        if units is None:
            units = flatten_graph(graph, point.hardware)
            self._units[key] = units
        return units

    def structural_key(self, point: DesignPoint) -> str:
        """Dedup identity: hardware x options x flattened profile sequence.

        Two points with equal structural keys see identical inputs at
        every stage of the pipeline (the flattening already folded the
        hardware's partitioning budget in), so their compiled programs
        are bit-identical and one evaluation serves both.
        """
        graph = self.graph_for(point)
        units = self._units_for(graph, point)
        signature = tuple(profile_signature(unit.profile) for unit in units)
        return repr(
            (point.hardware.fingerprint(), options_signature(point.options), signature)
        )

    # ------------------------------------------------------------------ #
    # warmth probing
    # ------------------------------------------------------------------ #
    def first_window_key(self, point: DesignPoint) -> Optional[AllocationCacheKey]:
        """The cache key of the first allocation the DP will request.

        Delegates to :func:`repro.core.segmentation
        .first_window_cache_key` — the same helper the cached evaluation
        tier probes with, so the planner's warmth signal and the
        evaluator's warm/cold verdict can never disagree.
        """
        graph = self.graph_for(point)
        units = self._units_for(graph, point)
        return first_window_cache_key(units, point.hardware, point.options)

    def is_warm(self, point: DesignPoint) -> bool:
        """Whether the persistent store already holds the point's first solve."""
        if self.store is None:
            return False
        key = self.first_window_key(point)
        if key is None:
            return False
        return self.store.contains(key)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, points: Sequence[DesignPoint], fidelity: str = "compile") -> Plan:
        """Collapse structural duplicates and order warm jobs first.

        A point whose graph cannot even be built (unknown model name, a
        workload its builder rejects) is planned as its own cold job
        with ``graph=None`` — the compile service rebuilds it, fails,
        and the failure lands in that point's record instead of killing
        the batch.

        ``fidelity`` is the tier the batch will be evaluated at.
        Structural dedup applies at every fidelity (structurally
        identical candidates score identically at any tier), but the
        disk-store warmth probe only runs for the tiers that would
        actually touch the MILP solver (``cached`` / ``compile``) — an
        analytical batch performs no solves and a greedy batch solves
        with the heuristic engine (whose per-window cost does not
        justify scheduling around), so probing either would be pure I/O.
        """
        jobs_by_key: Dict[str, PlannedJob] = {}
        order: List[str] = []
        for point in points:
            try:
                key = self.structural_key(point)
                graph = self.graph_for(point)
            except Exception:  # noqa: BLE001 - per-point isolation
                key = f"unplannable:{len(order)}:{point.key}"
                graph = None
            job = jobs_by_key.get(key)
            if job is not None:
                job.duplicates.append(point)
                continue
            jobs_by_key[key] = PlannedJob(point=point, graph=graph, structural_key=key)
            order.append(key)
        jobs = [jobs_by_key[key] for key in order]
        probe = fidelity not in ("analytical", "greedy")
        for job in jobs:
            job.warm = probe and job.graph is not None and self.is_warm(job.point)
        # Stable warm-first ordering (sort is stable, False < True).
        jobs.sort(key=lambda job: not job.warm)
        n_warm = sum(1 for job in jobs if job.warm)
        n_collapsed = sum(len(job.duplicates) for job in jobs)
        return Plan(
            jobs=jobs,
            n_points=len(points),
            n_warm=n_warm,
            n_cold=len(jobs) - n_warm,
            n_collapsed=n_collapsed,
        )
