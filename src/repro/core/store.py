"""Persistent on-disk allocation-cache store.

PR 1's in-memory :class:`~repro.core.cache.AllocationCache` makes warm
recompiles ~44x faster, but it dies with the process: every new CLI
invocation, CI run or DSE sweep re-pays the full cold cost.  The cached
solves are ideal for cross-process persistence — they are keyed purely
structurally (hardware fingerprint x operator-profile sequence x solve
options) and the MILP/greedy engines are deterministic, so an entry
computed by one process is bit-identical to what any other process would
compute.  :class:`DiskCacheStore` is that persistence layer: a
content-addressed store of cache entries under one directory, safe to
share between threads, processes and successive runs.

Design rules (each one is load-bearing for multi-process sharing):

* **Content addressing** — an entry's file name is the SHA-256 digest of
  the canonical JSON rendering of its :class:`AllocationCacheKey`; the
  full key payload is stored *inside* the entry and compared on read, so
  a digest collision (or a file copied to the wrong name) reads as a
  miss, never as a wrong answer.
* **Atomic writes** — entries are written to a temporary file in the
  same directory and published with :func:`os.replace`, so a reader
  never observes a half-written entry and two processes racing on the
  same key both leave a complete file behind.
* **Versioned format** — every entry carries ``format_version``
  (:data:`FORMAT_VERSION`).  A reader refuses entries written by a
  *newer* format (treated as a miss, the file is left alone — it belongs
  to the newer writer); entries from an obsolete older format are also
  misses and may be overwritten.
* **Corruption tolerance** — truncated, garbled or type-mangled entry
  files degrade to a cache miss (counted in
  :attr:`DiskStoreStats.corrupt_entries`), never to an exception in the
  compile pipeline.
* **Bounded size** — when the store grows past ``max_bytes`` the oldest
  entries (by file modification time) are evicted after a write.

The store deliberately knows nothing about allocation semantics: it maps
keys to :class:`~repro.core.cache.CacheEntry` payloads.  The two-tier
composition (memory in front, disk behind) lives in
:class:`~repro.core.cache.AllocationCache`.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

from .clock import SYSTEM_CLOCK, Clock
from ..obs.metrics import NULL_METRICS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cache imports store)
    from .cache import AllocationCacheKey, CacheEntry

__all__ = ["DiskCacheStore", "DiskStoreStats", "FORMAT_VERSION", "key_digest"]

#: Version of the on-disk entry format.  Bump it whenever the entry
#: payload, the key canonicalisation, or the meaning of any stored field
#: changes; readers refuse entries with a different version (see module
#: docstring for the newer/older asymmetry).
FORMAT_VERSION = 1

#: Default size budget: generous for real sweeps, small enough that a
#: forgotten cache directory cannot fill a CI disk.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Entry files live at ``<root>/<2-hex-char shard>/<64-hex digest>.json``.
#: Maintenance (eviction, pruning, clearing) matches *only* this shape, so
#: foreign files sharing the directory — a DSE run state nested under the
#: cache dir, editor droppings, a README — are never deleted or counted.
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")
_ENTRY_RE = re.compile(r"^[0-9a-f]{64}\.json$")
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


def _key_payload(key: "AllocationCacheKey") -> Dict:
    """Canonical JSON-compatible rendering of a cache key.

    The ``segment`` signature tuples become lists (JSON has no tuples);
    :func:`_payload_matches_key` compares modulo that transformation.
    """
    return {
        "hardware": key.hardware,
        "segment": [list(signature) for signature in key.segment],
        "engine": key.engine,
        "pipelined": key.pipelined,
        "refine": key.refine,
        "allow_memory_mode": key.allow_memory_mode,
        "reserve_arrays": key.reserve_arrays,
    }


def key_digest(key: "AllocationCacheKey") -> str:
    """Content address of a cache key: SHA-256 over its canonical JSON.

    Stable across processes, Python versions and hash randomisation —
    the digest is computed from sorted-key JSON, never from ``hash()``.
    """
    canonical = json.dumps(_key_payload(key), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class DiskStoreStats:
    """Counters of one :class:`DiskCacheStore`.

    Attributes:
        hits: Reads that returned an entry.
        misses: Reads that found no (usable) entry.
        stores: Entries written.
        evictions: Entry files removed by the size bound.
        corrupt_entries: Reads that found an unreadable/garbled entry.
        version_rejections: Reads that found an entry with a different
            format version (newer writers' files are left in place).
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_entries: int = 0
    version_rejections: int = 0

    def snapshot(self) -> "DiskStoreStats":
        """Independent copy of the counters."""
        return DiskStoreStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            corrupt_entries=self.corrupt_entries,
            version_rejections=self.version_rejections,
        )

    def to_dict(self) -> Dict[str, int]:
        """Plain-dictionary rendering for reports and program stats."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_entries": self.corrupt_entries,
            "version_rejections": self.version_rejections,
        }


class DiskCacheStore:
    """Content-addressed on-disk store of allocation-cache entries.

    One instance owns one directory.  Many instances — across threads,
    processes and machines sharing a filesystem — may point at the same
    directory concurrently: writes are atomic (tmp + rename), reads
    tolerate every partial state, and racing writers of the same key are
    harmless because the solve they store is deterministic, so both
    write the same payload.

    Invariants callers may rely on:

    * :meth:`get` never raises on bad on-disk state; any unreadable or
      foreign file is a miss.
    * :meth:`put` either publishes a complete entry or (on filesystem
      errors) leaves the store unchanged; it never publishes a partial
      file.
    * Entries written by a newer :data:`FORMAT_VERSION` are never
      deleted or overwritten blindly by an older reader — they are
      skipped (version rejection) so a rolling upgrade cannot destroy
      the newer fleet's cache.

    Args:
        root: Directory holding the store (created on demand).
        max_bytes: Size budget; after a write that pushes the store past
            it, the oldest entry files are evicted until it fits.  Must
            be positive.
        clock: Time source for age-based maintenance (TTL cutoffs, the
            CLI's entry-age display).  Defaults to the real system
            clock; tests inject a :class:`~repro.core.clock.ManualClock`
            so GC behaviour is deterministic.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; every
            counter bump is mirrored under ``store.<counter>`` while
            ``self.stats`` stays the exact source of truth.
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock: Optional[Clock] = None,
        metrics: Optional[object] = None,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.clock = SYSTEM_CLOCK if clock is None else clock
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = DiskStoreStats()
        self.metrics = NULL_METRICS if metrics is None else metrics
        self._lock = threading.Lock()
        self._approx_bytes: Optional[int] = None  # lazily scanned

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def _entry_path(self, digest: str) -> Path:
        """Sharded path of one entry (two-hex-char fan-out directories)."""
        return self.root / digest[:2] / f"{digest}.json"

    def _entry_files(self) -> List[Path]:
        """Every entry file currently in the store.

        Only files matching the content-addressed layout are reported —
        anything else under the directory belongs to someone else and is
        invisible to store maintenance.
        """
        files: List[Path] = []
        try:
            shards = list(self.root.iterdir())
        except OSError:
            return files
        for shard in shards:
            if not _SHARD_RE.match(shard.name) or not shard.is_dir():
                continue
            try:
                children = list(shard.iterdir())
            except OSError:
                continue
            for path in children:
                if _ENTRY_RE.match(path.name) and path.is_file():
                    files.append(path)
        return files

    # ------------------------------------------------------------------ #
    # read path
    # ------------------------------------------------------------------ #
    def get(self, key: "AllocationCacheKey") -> Optional["CacheEntry"]:
        """Return the stored entry for ``key``, or None.

        Never raises on bad on-disk state: missing files, truncated or
        garbled JSON, wrong-version entries and digest collisions all
        count as misses (with the corresponding stat bumped).
        """
        from .cache import CacheEntry  # local import: cache.py imports this module

        path = self._entry_path(key_digest(key))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self._count("misses")
            return None
        except (OSError, ValueError):
            self._count("corrupt_entries")
            self._count("misses")
            return None
        try:
            version = payload["format_version"]
            if version != FORMAT_VERSION:
                self._count("version_rejections")
                self._count("misses")
                return None
            if payload["key"] != _key_payload(key):
                # Digest collision or a file copied to the wrong name.
                self._count("misses")
                return None
            entry = CacheEntry.from_payload(payload["entry"])
        except (KeyError, TypeError, ValueError):
            self._count("corrupt_entries")
            self._count("misses")
            return None
        self._count("hits")
        return entry

    def contains(self, key: "AllocationCacheKey") -> bool:
        """Cheap existence probe for ``key`` — no stats side effects.

        Used by the DSE planner to order warm candidates before cold
        ones.  This is a scheduling heuristic, not a read: the file is
        not opened, so a corrupt or foreign entry may probe as present
        (the subsequent real :meth:`get` still degrades it to a miss).
        """
        try:
            return self._entry_path(key_digest(key)).is_file()
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # write path
    # ------------------------------------------------------------------ #
    def put(self, key: "AllocationCacheKey", entry: "CacheEntry") -> None:
        """Persist ``entry`` under ``key`` (atomic, last-writer-wins).

        Filesystem failures are swallowed: persistence is an optimisation
        and must never fail a compile that already has its result.
        """
        path = self._entry_path(key_digest(key))
        payload = {
            "format_version": FORMAT_VERSION,
            "key": _key_payload(key),
            "entry": entry.to_payload(),
        }
        text = json.dumps(payload, sort_keys=True)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            # The tmp file lives next to the target so os.replace stays a
            # same-filesystem atomic rename.
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return
        with self._lock:
            self.stats.stores += 1
            if self._approx_bytes is not None:
                self._approx_bytes += len(text)
            over_budget = self._total_bytes_locked() > self.max_bytes
        if over_budget:
            self._evict_to_budget()

    # ------------------------------------------------------------------ #
    # raw entry access (the transport layer of the networked cache tier)
    # ------------------------------------------------------------------ #
    def get_raw(self, digest: str) -> Optional[bytes]:
        """The stored entry file for ``digest``, as bytes, or None.

        This is the store's transport face: a cache server
        (:class:`repro.serve.CacheServer`) relays these bytes verbatim —
        it never interprets entries, clients self-verify them.  Digests
        that do not look like entry names are rejected as None (so a
        crafted path can never escape the store layout), and read
        failures degrade to None exactly like :meth:`get`.
        """
        if not _DIGEST_RE.match(digest):
            return None
        try:
            return self._entry_path(digest).read_bytes()
        except OSError:
            return None

    def put_raw(self, digest: str, data: bytes) -> bool:
        """Atomically publish pre-rendered entry bytes under ``digest``.

        The counterpart of :meth:`get_raw` for the write direction of a
        cache server.  The store stays content-addressed even for relayed
        writes: the bytes must parse as a JSON object whose ``key``
        payload digests (per :func:`key_digest`'s canonicalisation) to
        ``digest`` and which carries an integer ``format_version`` — a
        writer cannot publish an entry under somebody else's name, and
        garbage never lands on disk.  *Newer* format versions are
        accepted untouched (the server relays for fleets it does not
        interpret; readers enforce their own version on the way out).

        Returns:
            True when the entry was published; False on a rejected
            payload or a filesystem failure (mirroring :meth:`put`'s
            swallow-errors contract).
        """
        if not _DIGEST_RE.match(digest):
            return False
        try:
            payload = json.loads(data.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return False
        if not isinstance(payload, dict):
            return False
        version = payload.get("format_version")
        if isinstance(version, bool) or not isinstance(version, int):
            return False
        key_payload = payload.get("key")
        if key_payload is None:
            return False
        canonical = json.dumps(key_payload, sort_keys=True, separators=(",", ":"))
        if hashlib.sha256(canonical.encode("utf-8")).hexdigest() != digest:
            return False
        path = self._entry_path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{path.stem}-", suffix=".tmp", dir=path.parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        with self._lock:
            self.stats.stores += 1
            if self._approx_bytes is not None:
                self._approx_bytes += len(data)
            over_budget = self._total_bytes_locked() > self.max_bytes
        self.metrics.inc("store.stores")
        if over_budget:
            self._evict_to_budget()
        return True

    def has_entry(self, digest: str) -> bool:
        """Existence probe by digest (the server side of ``HEAD /entry``)."""
        if not _DIGEST_RE.match(digest):
            return False
        try:
            return self._entry_path(digest).is_file()
        except OSError:
            return False

    # ------------------------------------------------------------------ #
    # size bounding
    # ------------------------------------------------------------------ #
    def _total_bytes_locked(self) -> int:
        """Approximate store size; scans the directory once, then tracks."""
        if self._approx_bytes is None:
            total = 0
            for path in self._entry_files():
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
            self._approx_bytes = total
        return self._approx_bytes

    def total_bytes(self) -> int:
        """Exact current size of the store (rescans the directory)."""
        with self._lock:
            self._approx_bytes = None
            return self._total_bytes_locked()

    def _evict_to_budget(self) -> None:
        """Remove oldest entry files (by mtime) until the budget fits.

        The directory scan and the unlinks run *without* the lock — on a
        large store over a slow filesystem they may take a while, and
        concurrent get/put must not stall behind them.  Races with other
        evicting processes are tolerated: a file deleted under our feet
        simply no longer counts.
        """
        sized: List[Tuple[float, int, Path]] = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
        sized.sort()  # oldest first
        total = sum(size for _, size, _ in sized)
        evicted = 0
        for _, size, path in sized:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            evicted += 1
        with self._lock:
            self._approx_bytes = total
            self.stats.evictions += evicted

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entry_files())

    def usage(self) -> Dict[str, float]:
        """Current on-disk footprint (rescans the directory).

        Returns:
            ``{"files", "bytes", "oldest_mtime", "newest_mtime"}`` —
            the mtimes are 0.0 for an empty store.
        """
        files = 0
        total = 0
        oldest = newest = 0.0
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            files += 1
            total += stat.st_size
            oldest = stat.st_mtime if files == 1 else min(oldest, stat.st_mtime)
            newest = max(newest, stat.st_mtime)
        with self._lock:
            self._approx_bytes = total
        return {
            "files": files,
            "bytes": total,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def prune(
        self,
        max_bytes: Optional[int] = None,
        max_age_seconds: Optional[float] = None,
        now: Optional[float] = None,
    ) -> Dict[str, int]:
        """Expire old entries (TTL) and/or shrink to a size budget (GC).

        Both policies are one-shot maintenance passes — the operational
        complement of the automatic post-write ``max_bytes`` eviction:

        * ``max_age_seconds`` removes every entry whose file mtime is
          older than ``now - max_age_seconds`` (TTL; cached solves never
          go *stale* — keys are exact — but an abandoned sweep's entries
          are dead weight);
        * ``max_bytes`` then removes oldest-first (mtime LRU) until the
          store fits the budget.

        Races with concurrent writers/evictors are tolerated the same
        way eviction tolerates them: a file deleted under our feet
        simply stops counting.

        Args:
            now: Reference time for the TTL (default: the store's
                clock — real time unless a test injected one).

        Returns:
            ``{"removed_files", "removed_bytes", "remaining_files",
            "remaining_bytes"}``.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be non-negative")
        if max_age_seconds is not None and max_age_seconds < 0:
            raise ValueError("max_age_seconds must be non-negative")
        now = self.clock.now() if now is None else now
        sized: List[Tuple[float, int, Path]] = []
        for path in self._entry_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            sized.append((stat.st_mtime, stat.st_size, path))
        sized.sort()  # oldest first
        remaining = sum(size for _, size, _ in sized)
        removed_files = 0
        removed_bytes = 0
        keep: List[Tuple[float, int, Path]] = []
        cutoff = now - max_age_seconds if max_age_seconds is not None else None
        for mtime, size, path in sized:
            expired = cutoff is not None and mtime < cutoff
            over_budget = max_bytes is not None and remaining > max_bytes
            if not (expired or over_budget):
                keep.append((mtime, size, path))
                continue
            try:
                path.unlink()
            except OSError:
                keep.append((mtime, size, path))
                continue
            remaining -= size
            removed_files += 1
            removed_bytes += size
        with self._lock:
            self._approx_bytes = remaining
            self.stats.evictions += removed_files
        return {
            "removed_files": removed_files,
            "removed_bytes": removed_bytes,
            "remaining_files": len(keep),
            "remaining_bytes": remaining,
        }

    def clear(self) -> None:
        """Delete every entry file (the directory itself is kept)."""
        with self._lock:
            for path in self._entry_files():
                try:
                    path.unlink()
                except OSError:
                    continue
            self._approx_bytes = 0

    def _count(self, counter: str) -> None:
        """Thread-safe stat increment (mirrored into the metrics registry)."""
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        self.metrics.inc(f"store.{counter}")
