"""Per-segment dual-mode resource allocation (§4.3.2 of the paper).

Given the operators of one network segment, the allocator decides how many
arrays each operator receives in compute mode and how many in memory mode
so that the pipelined segment latency (Eq. 9 with the Eq. 10 latency
model) is minimised under the chip's array budget (Eq. 8).

Two interchangeable engines are provided:

* :class:`MIPAllocator` — the paper's approach: a mixed-integer program.
  For every operator a small Pareto set of candidate ``(compute, memory)``
  allocations is enumerated; binary selection variables pick one candidate
  per operator, a continuous makespan variable ``T`` upper-bounds every
  selected latency, and the array budget couples the operators.  The MILP
  is solved with ``scipy.optimize.milp`` (HiGHS) — the offline stand-in
  for the Gurobi solver used in the paper.
* :class:`GreedyAllocator` — a fast marginal-gain heuristic used as a
  fallback, as a cross-check in tests and for the allocation ablation.

Both return an :class:`AllocationResult`; leftover arrays are always
redistributed by :func:`refine_with_spare_arrays` (weight duplication and
extra buffering, the paper's post-allocation optimisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import (
    INFEASIBLE_LATENCY,
    OperatorAllocation,
    operator_latency_cycles,
    operator_latency_cycles_batch,
    segment_latency_cycles,
)
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.transforms import ceil_div
from ._highs import solve_canonical_milp
from .feasibility import FeasibilityModel


@dataclass
class AllocationResult:
    """Outcome of allocating one segment.

    Attributes:
        allocations: Per-operator allocation.
        latency_cycles: Pipelined segment latency under the allocation.
        feasible: Whether the segment fits the chip at all.
        solver: Which engine produced the result ("milp", "greedy",
            "single", "infeasible").
        from_cache: Whether the result was served from a shared
            :class:`~repro.core.cache.AllocationCache` instead of a fresh
            solve (used by compile statistics).
        from_disk: Whether the serving cache tier was the persistent
            :class:`~repro.core.store.DiskCacheStore` (implies
            ``from_cache``; lets compile statistics show warm-start
            behaviour per job).
    """

    allocations: Dict[str, OperatorAllocation]
    latency_cycles: float
    feasible: bool
    solver: str
    from_cache: bool = False
    from_disk: bool = False

    @property
    def total_arrays(self) -> int:
        """Total arrays used."""
        return sum(a.total_arrays for a in self.allocations.values())

    @property
    def compute_arrays(self) -> int:
        """Total compute-mode arrays used."""
        return sum(a.compute_arrays for a in self.allocations.values())

    @property
    def memory_arrays(self) -> int:
        """Total memory-mode arrays used."""
        return sum(a.memory_arrays for a in self.allocations.values())


def infeasible_result() -> AllocationResult:
    """Result representing a segment that cannot be mapped onto the chip."""
    return AllocationResult(
        allocations={}, latency_cycles=INFEASIBLE_LATENCY, feasible=False, solver="infeasible"
    )


def minimum_compute_arrays(
    profiles: Mapping[str, OperatorProfile], hardware: DualModeHardwareAbstraction
) -> int:
    """Fewest compute arrays the segment needs just to hold its operands.

    Delegates to the shared :class:`~repro.core.feasibility
    .FeasibilityModel`, which the analytical evaluation tier consults
    through the same predicates — the two tiers can never disagree about
    what fits.
    """
    return FeasibilityModel(hardware).minimum_compute_arrays(profiles)


def segment_fits(
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
) -> bool:
    """Whether the segment's minimum footprint fits the array budget.

    The predicate is mode-independent: the minimum footprint uses no
    memory arrays, so dual- and fixed-mode compilation agree on it.  (An
    ``allow_memory_mode`` parameter used to exist here and was silently
    discarded — it has been removed rather than kept as a decoy knob.)
    """
    return FeasibilityModel(hardware).segment_fits(profiles)


# ---------------------------------------------------------------------- #
# candidate enumeration
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class AllocationCandidate:
    """One candidate allocation for a single operator."""

    compute_arrays: int
    memory_arrays: int
    latency_cycles: float

    @property
    def total_arrays(self) -> int:
        """Arrays the candidate consumes."""
        return self.compute_arrays + self.memory_arrays

    def to_allocation(self) -> OperatorAllocation:
        """Convert to an :class:`OperatorAllocation`."""
        return OperatorAllocation(self.compute_arrays, self.memory_arrays)


def candidate_allocations(
    profile: OperatorProfile,
    hardware: DualModeHardwareAbstraction,
    max_arrays: int,
    allow_memory_mode: bool = True,
    max_candidates: int = 24,
) -> List[AllocationCandidate]:
    """Pareto-optimal (arrays, latency) candidates for one operator.

    Compute counts are swept geometrically from the operator's minimum
    footprint up to the budget; memory counts from zero up to the number
    of arrays that fully buffer the working set.  The full (compute,
    memory) grid is scored in one vectorised Eq. 10 evaluation
    (:func:`~repro.cost.latency.operator_latency_cycles_batch`), then
    dominated candidates (more arrays and no lower latency) are
    discarded, keeping the MILP small without losing the optimum at the
    granularity of the sweep.

    An operator none of whose candidates can ever finish (every grid
    point has infinite latency — possible only on degenerate hardware
    with zero usable bandwidth) yields an empty list, the same verdict
    as an operator that does not fit the budget.
    """
    min_compute = max(1, profile.min_compute_arrays(hardware))
    if min_compute > max_arrays:
        return []
    mem_cap = profile.memory_arrays_for_working_set(hardware) if allow_memory_mode else 0
    mem_cap = min(mem_cap, max_arrays - min_compute)

    compute_options = np.asarray(_geometric_range(min_compute, max_arrays), dtype=np.int64)
    memory_options = np.asarray(
        [0] + _geometric_range(1, mem_cap) if mem_cap > 0 else [0], dtype=np.int64
    )

    # The flattened grid enumerates compute-major, memory-minor — the
    # same order the scalar double loop used, which matters because the
    # (total, latency) sort below is stable.
    compute = np.repeat(compute_options, len(memory_options))
    memory = np.tile(memory_options, len(compute_options))
    keep = compute + memory <= max_arrays
    compute, memory = compute[keep], memory[keep]
    latencies = operator_latency_cycles_batch(profile, compute, memory, hardware)
    totals = compute + memory

    # Pareto filter on (total arrays, latency).  np.lexsort is stable,
    # so ties fall back to grid order exactly like the scalar sort did.
    order = np.lexsort((latencies, totals))
    pareto: List[AllocationCandidate] = []
    best_latency = INFEASIBLE_LATENCY
    for index in order:
        latency = float(latencies[index])
        if latency < best_latency - 1e-9:
            pareto.append(
                AllocationCandidate(int(compute[index]), int(memory[index]), latency)
            )
            best_latency = latency
    if len(pareto) > max_candidates:
        # Keep the extremes and thin the middle uniformly.
        indices = np.linspace(0, len(pareto) - 1, max_candidates).round().astype(int)
        pareto = [pareto[i] for i in sorted(set(indices.tolist()))]
    return pareto


def _geometric_range(lo: int, hi: int) -> List[int]:
    """Integers from ``lo`` to ``hi`` with geometric spacing (both included)."""
    if hi < lo:
        return []
    values = {lo, hi}
    value = lo
    while value < hi:
        value = max(value + 1, int(value * 1.5))
        values.add(min(value, hi))
    return sorted(values)


# ---------------------------------------------------------------------- #
# greedy allocator
# ---------------------------------------------------------------------- #
class GreedyAllocator:
    """Marginal-gain heuristic allocator.

    Every operator starts at its minimum compute footprint; remaining
    arrays are handed out one at a time to the operator currently bounding
    the segment (the one with the highest latency), in whichever mode
    (compute duplication or memory buffering) reduces that latency most.
    """

    name = "greedy"

    def __init__(self, allow_memory_mode: bool = True) -> None:
        self.allow_memory_mode = allow_memory_mode

    def allocate(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        pipelined: bool = True,
    ) -> AllocationResult:
        """Allocate the segment; see class docstring for the policy.

        The loop tracks every operator's latency incrementally: only the
        grown operator's entry changes per iteration, so each step costs
        one ``argmax`` and two scalar Eq. 10 evaluations instead of
        re-scoring the whole segment (the scalar reference in
        :mod:`repro.core._reference` did; results are identical).
        """
        if not profiles:
            return AllocationResult({}, 0.0, True, self.name)
        names = list(profiles)
        allocations: Dict[str, OperatorAllocation] = {}
        for name, profile in profiles.items():
            allocations[name] = OperatorAllocation(
                compute_arrays=max(1, profile.min_compute_arrays(hardware)), memory_arrays=0
            )
        used = sum(a.total_arrays for a in allocations.values())
        if used > hardware.num_arrays:
            return infeasible_result()

        def latency_of(name: str, allocation: OperatorAllocation) -> float:
            return operator_latency_cycles(profiles[name], allocation, hardware)

        latencies = np.array(
            [latency_of(name, allocations[name]) for name in names], dtype=np.float64
        )
        remaining = hardware.num_arrays - used
        while remaining > 0:
            # np.argmax keeps the first maximum, matching the scalar
            # ``max(allocations, key=...)`` insertion-order tie-break.
            index = int(np.argmax(latencies))
            bottleneck = names[index]
            current = allocations[bottleneck]
            current_latency = float(latencies[index])
            grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
            options = [(latency_of(bottleneck, grow_compute), grow_compute)]
            if self.allow_memory_mode:
                grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
                options.append((latency_of(bottleneck, grow_memory), grow_memory))
            best_latency, best_allocation = min(options, key=lambda item: item[0])
            if best_latency >= current_latency - 1e-9:
                break  # the bottleneck cannot be improved further
            allocations[bottleneck] = best_allocation
            latencies[index] = best_latency
            remaining -= 1

        latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
        return AllocationResult(allocations, latency, True, self.name)


# ---------------------------------------------------------------------- #
# MILP allocator
# ---------------------------------------------------------------------- #
class MIPAllocator:
    """Mixed-integer-programming allocator (the paper's §4.3.2 solver).

    One binary variable per (operator, candidate allocation) pair selects
    exactly one candidate per operator; a continuous makespan variable is
    lower-bounded by every selected candidate's latency; the total array
    consumption is bounded by the chip budget (Eq. 8).  Minimising the
    makespan yields the Eq. 9 objective.
    """

    name = "milp"

    #: Bound on the per-instance candidate memo (cleared when exceeded).
    CANDIDATE_MEMO_ENTRIES = 4096

    def __init__(
        self,
        allow_memory_mode: bool = True,
        max_candidates_per_operator: int = 24,
        time_limit_seconds: float = 10.0,
    ) -> None:
        self.allow_memory_mode = allow_memory_mode
        self.max_candidates_per_operator = max_candidates_per_operator
        self.time_limit_seconds = time_limit_seconds
        # One operator appears in every DP window that contains it, and
        # its candidate set depends only on (profile, chip) — memoise it
        # per allocator instead of re-enumerating the grid per window.
        self._candidate_memo: Dict[
            Tuple[OperatorProfile, str], List[AllocationCandidate]
        ] = {}

    def _candidates(
        self, profile: OperatorProfile, hardware: DualModeHardwareAbstraction
    ) -> List[AllocationCandidate]:
        key = (profile, hardware.fingerprint())
        cached = self._candidate_memo.get(key)
        if cached is None:
            cached = candidate_allocations(
                profile,
                hardware,
                hardware.num_arrays,
                allow_memory_mode=self.allow_memory_mode,
                max_candidates=self.max_candidates_per_operator,
            )
            if len(self._candidate_memo) >= self.CANDIDATE_MEMO_ENTRIES:
                self._candidate_memo.clear()
            self._candidate_memo[key] = cached
        return cached

    def allocate(
        self,
        profiles: Mapping[str, OperatorProfile],
        hardware: DualModeHardwareAbstraction,
        pipelined: bool = True,
    ) -> AllocationResult:
        """Solve the per-segment allocation MILP."""
        if not profiles:
            return AllocationResult({}, 0.0, True, self.name)
        names = list(profiles)
        candidates: Dict[str, List[AllocationCandidate]] = {}
        for name in names:
            options = self._candidates(profiles[name], hardware)
            if not options:
                return infeasible_result()
            candidates[name] = options

        solution = self._solve_milp(names, candidates, hardware)
        if solution is None:
            # Fall back to the greedy heuristic (also used when HiGHS
            # declares the model infeasible due to candidate pruning).
            return GreedyAllocator(self.allow_memory_mode).allocate(
                profiles, hardware, pipelined=pipelined
            )
        allocations = {name: candidates[name][k].to_allocation() for name, k in solution.items()}
        latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
        return AllocationResult(allocations, latency, True, self.name)

    def _solve_milp(
        self,
        names: Sequence[str],
        candidates: Mapping[str, List[AllocationCandidate]],
        hardware: DualModeHardwareAbstraction,
    ) -> Optional[Dict[str, int]]:
        """Build and solve the MILP; returns chosen candidate index per op."""
        offsets: Dict[str, int] = {}
        num_binaries = 0
        for name in names:
            offsets[name] = num_binaries
            num_binaries += len(candidates[name])
        t_index = num_binaries
        num_vars = num_binaries + 1

        # Normalise latencies so the makespan variable is well-scaled.  An
        # operator whose every candidate is infeasible (infinite latency)
        # cannot be modelled; bail out to the greedy fallback instead of
        # tripping on max() over an empty sequence.
        finite_maxima = []
        for name in names:
            finite = [
                c.latency_cycles for c in candidates[name] if math.isfinite(c.latency_cycles)
            ]
            if not finite:
                return None
            finite_maxima.append(max(finite))
        scale = max(max(finite_maxima), 1.0)

        objective = np.zeros(num_vars)
        objective[t_index] = 1.0

        # The constraint matrix is assembled directly in the canonical
        # csc form HiGHS consumes (column-sorted indices, no explicit
        # zeros) instead of building a dense matrix and converting —
        # scipy's per-LinearConstraint sparse conversion dominated
        # cold-compile time.  Row order and values are identical to the
        # original per-row formulation (selection rows 0..n-1, makespan
        # rows n..2n-1, budget row 2n), and zero coefficients are
        # dropped exactly as a dense→csc conversion would drop them, so
        # HiGHS sees a bit-identical problem and returns the identical
        # solution.
        num_ops = len(names)
        budget_row = 2 * num_ops
        indptr = [0]
        indices: List[int] = []
        data: List[float] = []
        for i, name in enumerate(names):
            for candidate in candidates[name]:
                latency = candidate.latency_cycles
                coefficient = latency / scale if math.isfinite(latency) else 1e6
                indices.append(i)
                data.append(1.0)
                if coefficient != 0.0:
                    indices.append(num_ops + i)
                    data.append(coefficient)
                total = float(candidate.total_arrays)
                if total != 0.0:
                    indices.append(budget_row)
                    data.append(total)
                indptr.append(len(indices))
        # Makespan column: -1 in every makespan row.
        indices.extend(range(num_ops, budget_row))
        data.extend([-1.0] * num_ops)
        indptr.append(len(indices))

        row_lb = np.concatenate(
            (np.ones(num_ops), np.full(num_ops + 1, -np.inf))
        )
        row_ub = np.concatenate(
            (np.ones(num_ops), np.zeros(num_ops), [float(hardware.num_arrays)])
        )
        integrality = np.ones(num_vars)
        integrality[t_index] = 0.0
        lower = np.zeros(num_vars)
        upper = np.ones(num_vars)
        upper[t_index] = np.inf

        solution = solve_canonical_milp(
            objective,
            lower,
            upper,
            integrality,
            np.asarray(indptr, dtype=np.int32),
            np.asarray(indices, dtype=np.int32),
            np.asarray(data, dtype=np.float64),
            row_lb,
            row_ub,
            time_limit=self.time_limit_seconds,
            presolve=True,
        )
        if solution is None:
            return None
        success, x = solution
        if not success or x is None:
            return None
        chosen: Dict[str, int] = {}
        for name in names:
            block = x[offsets[name] : offsets[name] + len(candidates[name])]
            chosen[name] = int(np.argmax(block))
        return chosen


# ---------------------------------------------------------------------- #
# post-allocation refinement (weight duplication)
# ---------------------------------------------------------------------- #
def refine_with_spare_arrays(
    result: AllocationResult,
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    pipelined: bool = True,
    allow_memory_mode: bool = True,
    reserve_arrays: int = 0,
) -> AllocationResult:
    """Hand leftover arrays to the bottleneck operator (weight duplication).

    The paper applies weight duplication as a post-allocation optimisation
    "commonly used in CIM compilation" — spare arrays replicate the
    bottleneck operator's weights (or extend its buffers) so the pipelined
    segment latency drops further.  The refinement never worsens latency.

    Args:
        allow_memory_mode: Whether spare arrays may also grow an operator's
            memory-mode buffer (False for fixed-mode baselines).
        reserve_arrays: Arrays to leave untouched — the segmentation pass
            reserves them as boundary buffers for live inter-segment data.
    """
    if not result.feasible or not result.allocations:
        return result
    allocations = dict(result.allocations)
    used = sum(a.total_arrays for a in allocations.values())
    remaining = hardware.num_arrays - used - max(0, reserve_arrays)
    if remaining <= 0:
        return result

    # Incremental bottleneck tracking: only the grown operator's latency
    # changes per hand-out, so each iteration is one argmax plus two
    # scalar Eq. 10 calls (the scalar reference re-scored every operator
    # every iteration; results are identical).
    names = list(allocations)
    latencies = np.array(
        [
            operator_latency_cycles(profiles[name], allocations[name], hardware)
            for name in names
        ],
        dtype=np.float64,
    )
    improved = False
    while remaining > 0:
        index = int(np.argmax(latencies))
        bottleneck = names[index]
        current = allocations[bottleneck]
        current_latency = float(latencies[index])
        grow_compute = OperatorAllocation(current.compute_arrays + 1, current.memory_arrays)
        options = [
            (operator_latency_cycles(profiles[bottleneck], grow_compute, hardware), grow_compute),
        ]
        if allow_memory_mode:
            grow_memory = OperatorAllocation(current.compute_arrays, current.memory_arrays + 1)
            options.append(
                (operator_latency_cycles(profiles[bottleneck], grow_memory, hardware), grow_memory)
            )
        best_latency, best_allocation = min(options, key=lambda item: item[0])
        if best_latency >= current_latency - 1e-9:
            break
        allocations[bottleneck] = best_allocation
        latencies[index] = best_latency
        remaining -= 1
        improved = True
    if not improved:
        return result
    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, result.solver)


def allocate_segment(
    profiles: Mapping[str, OperatorProfile],
    hardware: DualModeHardwareAbstraction,
    allocator: Optional[object] = None,
    pipelined: bool = True,
    refine: bool = True,
    reserve_arrays: int = 0,
    cache: Optional[object] = None,
    memo: Optional[object] = None,
) -> AllocationResult:
    """Allocate one segment end to end (solver + duplication refinement).

    Args:
        reserve_arrays: Arrays withheld from duplication so the
            segmentation pass can dedicate them to boundary buffering.
            Feasibility is always checked against the full chip.
        cache: Optional shared :class:`~repro.core.cache.AllocationCache`.
            When given, the solve is first looked up (structurally — the
            result is identical to a cold solve) and fresh solves are
            stored back; hits are flagged via ``result.from_cache``.
        memo: Optional per-run :class:`~repro.core.memo.SolveMemo`.
            Probed *before* the shared cache (it is pure process memory,
            never disk); both layers are written on a fresh solve, and a
            shared-cache hit is copied into the memo so later windows of
            the same run skip the cache tiers entirely.
    """
    engine = allocator if allocator is not None else MIPAllocator()
    if not segment_fits(profiles, hardware):
        return infeasible_result()
    allow_memory_mode = getattr(engine, "allow_memory_mode", True)
    cache_key = None
    keyed = memo if memo is not None else cache
    if keyed is not None:
        # Build the (hardware fingerprint x segment signature x options)
        # key once and share it between every lookup and store below.
        cache_key = keyed.make_key(
            profiles,
            hardware,
            engine=getattr(engine, "name", type(engine).__name__),
            pipelined=pipelined,
            refine=refine,
            allow_memory_mode=allow_memory_mode,
            reserve_arrays=reserve_arrays,
        )
    if memo is not None:
        memoised = memo.lookup(cache_key, list(profiles))
        if memoised is not None:
            return memoised
    if cache is not None:
        cached = cache.lookup(cache_key, list(profiles))
        if cached is not None:
            if memo is not None:
                memo.put(cache_key, profiles, cached)
            return cached
    result = engine.allocate(profiles, hardware, pipelined=pipelined)
    if refine and result.feasible:
        result = refine_with_spare_arrays(
            result,
            profiles,
            hardware,
            pipelined=pipelined,
            allow_memory_mode=allow_memory_mode,
            reserve_arrays=reserve_arrays,
        )
    if cache is not None:
        cache.put(cache_key, profiles, result)
    if memo is not None:
        memo.put(cache_key, profiles, result)
    return result
