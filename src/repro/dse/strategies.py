"""Search strategies driving iterative design-space exploration.

Strategies speak a small ask/tell protocol the runner drives:

* :meth:`Strategy.bind` attaches the strategy to a
  :class:`~repro.dse.space.DesignSpace`;
* :meth:`Strategy.ask` proposes up to ``n`` not-yet-proposed points;
* :meth:`Strategy.tell` feeds back evaluation records (objects exposing
  ``coords``, ``feasible`` and ``objective_value``) so adaptive
  strategies can steer;
* :attr:`Strategy.exhausted` reports when the whole space was proposed.

Three built-ins cover the common sweep shapes:

* ``grid`` — the full factorial grid in deterministic lexicographic
  order; the right default for small spaces and for reproducible runs.
* ``random`` — a seeded uniform shuffle of the grid, proposed without
  replacement; the standard budget-limited baseline for spaces too big
  to enumerate.
* ``greedy`` — successive-halving-flavoured local refinement: an initial
  seeded sample, then each round keeps the best-scoring half of what has
  been evaluated and proposes the unvisited grid *neighbours* of those
  survivors (falling back to random exploration when the neighbourhoods
  are exhausted).  Converges on a good region of a smooth objective with
  a fraction of the grid budget.
* ``successive-halving`` — the real multi-fidelity schedule the tiered
  evaluator layer (:mod:`repro.eval`) enables: a ladder of rungs
  (default ``analytical -> greedy -> compile``) where rung 0 proposes
  *every* candidate at ``analytical`` fidelity (closed-form lower
  bounds, zero allocator solves), the best ``keep_fraction`` survivors
  climb to the greedy-allocator rung (real plans, zero MILP solves) and
  what survives that screen is compiled at full fidelity.  The strategy
  announces the fidelity of its current rung via
  :attr:`Strategy.fidelity`, which a runner in ``--fidelity auto`` mode
  obeys.

All randomness flows from an explicit seed — two runs with the same seed
propose the same points in the same order, which the resumable run state
relies on for clean restarts.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .space import DesignPoint, DesignSpace

__all__ = [
    "DEFAULT_RUNGS",
    "GreedyStrategy",
    "GridStrategy",
    "RandomStrategy",
    "STRATEGIES",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "make_strategy",
]


class Strategy:
    """Base class: proposal bookkeeping shared by every strategy.

    :attr:`fidelity` is the multi-fidelity hook: a strategy that
    schedules evaluation tiers (``successive-halving``) sets it to the
    fidelity its *latest* :meth:`ask` batch should be evaluated at, and
    a runner in ``auto`` fidelity mode obeys it.  Fidelity-agnostic
    strategies leave it ``None`` (the runner then applies its own
    default).
    """

    name = "base"

    #: Fidelity requested for the latest ask() batch (None = runner's choice).
    fidelity: Optional[str] = None

    #: Whether the strategy schedules evaluation fidelities itself.
    multi_fidelity = False

    def __init__(self) -> None:
        self.space: DesignSpace = None  # type: ignore[assignment]
        self._proposed: set = set()
        self._total = 0

    def bind(self, space: DesignSpace) -> None:
        """Attach to a space; resets all proposal state."""
        self.space = space
        self._proposed = set()
        self._total = space.size

    @property
    def exhausted(self) -> bool:
        """Whether every point of the space has been proposed."""
        return len(self._proposed) >= self._total

    def ask(self, n: int) -> List[DesignPoint]:
        """Propose up to ``n`` new design points."""
        raise NotImplementedError

    def tell(self, records: Sequence) -> None:
        """Feed evaluation results back (default: ignored)."""

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _propose(self, coords: Tuple[int, ...]) -> DesignPoint:
        self._proposed.add(coords)
        return self.space.point_at(coords)


class GridStrategy(Strategy):
    """Deterministic lexicographic sweep of the whole grid."""

    name = "grid"

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class RandomStrategy(Strategy):
    """Seeded uniform sampling of the grid without replacement."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())
        random.Random(self.seed).shuffle(self._pending)

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class GreedyStrategy(Strategy):
    """Successive-halving-style neighbourhood refinement.

    Round 0 proposes a seeded random sample.  Every later round ranks all
    evaluated points by objective (infeasible points score ``inf``),
    keeps the top ``keep_fraction`` — the "halving" — and proposes the
    unvisited grid neighbours of those survivors, best survivor first.
    When the survivors' neighbourhoods are exhausted the strategy falls
    back to seeded random exploration so a budget is never stranded.

    Args:
        seed: RNG seed for the initial sample and the exploration order.
        keep_fraction: Fraction of evaluated points whose neighbourhoods
            are explored each round (default 0.5).
    """

    name = "greedy"

    def __init__(self, seed: int = 0, keep_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.seed = seed
        self.keep_fraction = keep_fraction

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._explore = list(space.coordinates())
        random.Random(self.seed).shuffle(self._explore)
        # coords -> best objective seen (records may repeat on resume).
        self._scores: Dict[Tuple[int, ...], float] = {}
        # Point keys already proposed or told.  Distinct coordinates can
        # materialise to the same point key (duplicate axis values,
        # option canonicalisation), and near a space edge a survivor's
        # neighbourhood collapses onto such aliases — without key-level
        # dedup the strategy re-proposes an already-told point and the
        # batch burns budget replicating it.
        self._seen_keys: set = set()

    def _propose_unseen(self, coords: Tuple[int, ...]) -> Optional[DesignPoint]:
        """Propose ``coords`` unless its point key was already seen.

        An aliased coordinate is still marked proposed (it is consumed
        either way) so the exhaustion accounting stays correct.
        """
        point = self.space.point_at(coords)
        self._proposed.add(coords)
        if point.key in self._seen_keys:
            return None
        self._seen_keys.add(point.key)
        return point

    def ask(self, n: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        # Exploit: neighbours of the best-scoring survivors.
        if self._scores:
            ranked = sorted(self._scores.items(), key=lambda item: item[1])
            keep = max(1, math.ceil(len(ranked) * self.keep_fraction))
            for coords, _ in ranked[:keep]:
                for neighbor in self.space.neighbors(coords):
                    if neighbor in self._proposed:
                        continue
                    point = self._propose_unseen(neighbor)
                    if point is None:
                        continue
                    batch.append(point)
                    if len(batch) >= n:
                        return batch
        # Explore: seeded random fill.
        while self._explore and len(batch) < n:
            coords = self._explore.pop(0)
            if coords in self._proposed:
                continue
            point = self._propose_unseen(coords)
            if point is not None:
                batch.append(point)
        return batch

    def tell(self, records: Sequence) -> None:
        for record in records:
            key = getattr(record, "point_key", None)
            if key:
                self._seen_keys.add(key)
            value = getattr(record, "objective_value", None)
            if value is None or not getattr(record, "feasible", False):
                value = math.inf
            coords = tuple(getattr(record, "coords", ()))
            if not coords:
                continue
            previous = self._scores.get(coords, math.inf)
            self._scores[coords] = min(previous, float(value))


#: Default successive-halving ladder: score the whole grid with
#: closed-form bounds, re-score the survivors with real (heuristic)
#: greedy plans, then compile only what survives both screens.
DEFAULT_RUNGS: Tuple[str, ...] = ("analytical", "greedy", "compile")


class SuccessiveHalvingStrategy(Strategy):
    """Multi-fidelity successive halving over the tiered evaluator layer.

    The schedule is a ladder of *rungs*, each a fidelity of the
    :mod:`repro.eval` layer.  Rung 0 proposes every candidate of the
    space (seeded order); once every answer of a rung is told back, its
    feasible candidates are ranked by objective and the best
    ``keep_fractions[rung]`` are re-proposed at the next rung's
    fidelity.  The runner reads :attr:`fidelity` after each :meth:`ask`
    to evaluate the batch at the rung's tier.

    The default ladder is ``analytical -> greedy -> compile``:

    * rung 0 scores the whole grid with closed-form lower bounds (zero
      allocator solves) — a sound screen: an infeasible bound proves
      the point infeasible, and the bound is monotone in the same
      hardware/option knobs the real cost is;
    * rung 1 re-scores the survivors with the greedy-allocator pipeline
      — real plans, zero MILP solves.  Its ranking is heuristic (a
      greedy plan can mis-rank two close candidates), which is the
      accepted trade of the middle rung: it catches the plan-structure
      effects (segmentation, mode switching) the bounds cannot see;
    * rung 2 compiles what survives both screens at full fidelity.

    Records already known at sufficient fidelity (a resumed run)
    short-circuit naturally: the runner feeds them back as ``resumed``
    without paying for re-evaluation, at any rung.

    Args:
        seed: RNG seed for the rung-0 proposal order.
        keep_fraction: Fraction of ranked feasible candidates promoted
            at *every* rung boundary (``1/eta`` in successive-halving
            terms; default 0.5).  Ignored when ``keep_fractions`` is
            given.
        rungs: The fidelity ladder, cheapest first (default
            :data:`DEFAULT_RUNGS`).  Two-rung ``("analytical",
            "compile")`` recovers the pre-greedy schedule.
        keep_fractions: Per-boundary keep fractions, one per promotion
            (``len(rungs) - 1`` values).
    """

    name = "successive-halving"
    multi_fidelity = True

    def __init__(
        self,
        seed: int = 0,
        keep_fraction: float = 0.5,
        rungs: Optional[Sequence[str]] = None,
        keep_fractions: Optional[Sequence[float]] = None,
    ) -> None:
        super().__init__()
        self.rungs: Tuple[str, ...] = tuple(rungs) if rungs is not None else DEFAULT_RUNGS
        if len(self.rungs) < 2:
            raise ValueError("the ladder needs at least two rungs")
        if keep_fractions is None:
            keep_fractions = (keep_fraction,) * (len(self.rungs) - 1)
        self.keep_fractions: Tuple[float, ...] = tuple(keep_fractions)
        if len(self.keep_fractions) != len(self.rungs) - 1:
            raise ValueError(
                f"need one keep fraction per promotion "
                f"({len(self.rungs) - 1}), got {len(self.keep_fractions)}"
            )
        for fraction in self.keep_fractions:
            if not 0.0 < fraction <= 1.0:
                raise ValueError("keep fractions must be in (0, 1]")
        self.seed = seed
        self.keep_fraction = keep_fraction

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._rung = 0
        self._queue = list(space.coordinates())
        random.Random(self.seed).shuffle(self._queue)
        self._asked = 0
        self._told = 0
        # coords -> best objective told at the current rung (records may
        # repeat on resume).
        self._scores: Dict[Tuple[int, ...], float] = {}
        self.fidelity = self.rungs[0]

    @property
    def _final_rung(self) -> bool:
        return self._rung + 1 >= len(self.rungs)

    @property
    def exhausted(self) -> bool:
        # An empty non-final rung still owes its promotion; the final
        # rung is done once fully proposed (its tells rank nothing).
        return self._final_rung and not self._queue

    def ask(self, n: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        if not self._queue:
            if self._final_rung:
                return []
            if self._told < self._asked:
                # Still waiting for this rung's answers; the runner
                # always tells between asks, so this only guards misuse.
                return []
            self._promote()
        self.fidelity = self.rungs[self._rung]
        while self._queue and len(batch) < n:
            coords = self._queue.pop(0)
            self._asked += 1
            if self._rung == 0:
                batch.append(self._propose(coords))
            else:
                batch.append(self.space.point_at(coords))
        return batch

    def _promote(self) -> None:
        """Advance to the next rung with the current rung's survivors."""
        ranked = sorted(
            (value, coords)
            for coords, value in self._scores.items()
            if math.isfinite(value)
        )
        keep = (
            math.ceil(len(ranked) * self.keep_fractions[self._rung]) if ranked else 0
        )
        survivors = [coords for _, coords in ranked[:keep]]
        self._rung += 1
        self._queue = survivors
        self._asked = 0
        self._told = 0
        self._scores = {}
        if not survivors:
            # Nothing survived: every later rung is vacuous.
            self._rung = len(self.rungs) - 1
        self.fidelity = self.rungs[self._rung]

    def tell(self, records: Sequence) -> None:
        if self._final_rung:
            # The last rung's answers rank nothing further.
            return
        for record in records:
            self._told += 1
            coords = tuple(getattr(record, "coords", ()))
            if not coords:
                continue
            value = getattr(record, "objective_value", None)
            if value is None or not getattr(record, "feasible", False):
                value = math.inf
            previous = self._scores.get(coords, math.inf)
            self._scores[coords] = min(previous, float(value))


STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "greedy": GreedyStrategy,
    "successive-halving": SuccessiveHalvingStrategy,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Instantiate a strategy by name (see :data:`STRATEGIES`)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(STRATEGIES))}"
        ) from None
    if cls is GridStrategy:
        return cls()
    return cls(seed=seed)
