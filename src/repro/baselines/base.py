"""Shared machinery of the fixed-mode baseline compilers.

The paper compares CMSwitch against three prior CIM compilers — PUMA,
OCC and CIM-MLC.  All three treat every CIM array as a *compute* resource
(no memory mode), so streamed data is served by the native buffer and the
off-chip link only, and all intermediate data that exceeds the native
buffer spills to main memory between segments.  They differ in their
scheduling strategy:

* **PUMA** — operator duplication plus cross-operator pipelining, with a
  simple greedy segmentation that packs consecutive operators until the
  chip is full.
* **OCC** — per-operator mapping with tiling / loop unrolling; operators
  execute one after another (no cross-operator pipeline, no duplication).
* **CIM-MLC** — the strongest baseline: the same dynamic-programming
  segmentation and pipelined scheduling CMSwitch uses (CMSwitch adopts its
  kernel optimisations), but with every array fixed in compute mode.

All of them reuse the CMSwitch cost model with ``allow_memory_mode=False``
so comparisons isolate exactly the contribution the paper claims: the
dual-mode dimension of the optimisation space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import OperatorAllocation, segment_latency_cycles
from ..cost.switching import (
    SegmentResources,
    aggregate_resources,
    inter_segment_breakdown,
)
from ..core.allocation import GreedyAllocator, MIPAllocator, refine_with_spare_arrays
from ..core.codegen import generate_program
from ..core.program import CompiledProgram, SegmentPlan
from ..core.segmentation import FlattenedUnit, flatten_graph, live_elements_at_boundary
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph


class BaselineCompiler:
    """Base class for fixed-mode (all-compute) baseline compilers."""

    name = "baseline"
    #: Whether operators within a segment execute as a pipeline.
    pipelined = True
    #: Whether spare arrays are used for weight duplication.
    duplication = True

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        generate_code: bool = False,
    ) -> None:
        self.hardware = hardware
        self.generate_code = generate_code

    # ------------------------------------------------------------------ #
    # strategy hooks
    # ------------------------------------------------------------------ #
    def segment_boundaries(self, units: Sequence[FlattenedUnit]) -> List[List[int]]:
        """Group unit indices into segments.  Overridden per baseline."""
        raise NotImplementedError

    def allocate(self, profiles: Dict[str, OperatorProfile]) -> Dict[str, OperatorAllocation]:
        """Fixed-mode allocation: minimum footprint plus optional duplication."""
        allocations = {
            name: OperatorAllocation(
                compute_arrays=max(1, profile.min_compute_arrays(self.hardware)),
                memory_arrays=0,
            )
            for name, profile in profiles.items()
        }
        if not self.duplication:
            return allocations
        # Spare arrays duplicate the bottleneck operator's weights.
        from ..core.allocation import AllocationResult

        interim = AllocationResult(
            allocations=allocations,
            latency_cycles=segment_latency_cycles(
                profiles, allocations, self.hardware, pipelined=self.pipelined
            ),
            feasible=True,
            solver=self.name,
        )
        refined = _refine_compute_only(interim, profiles, self.hardware, self.pipelined)
        return refined.allocations

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile ``graph`` with this baseline's scheduling strategy."""
        start = time.perf_counter()
        units = flatten_graph(graph, self.hardware)
        groups = self.segment_boundaries(units) if units else []
        segments: List[SegmentPlan] = []
        previous_resources: Optional[SegmentResources] = None
        for seg_index, indices in enumerate(groups):
            members = [units[i] for i in indices]
            profiles = {unit.name: unit.profile for unit in members}
            allocations = self.allocate(profiles)
            intra = segment_latency_cycles(
                profiles, allocations, self.hardware, pipelined=self.pipelined
            )
            boundary = indices[-1]
            live = (
                live_elements_at_boundary(units, boundary)
                if boundary + 1 < len(units)
                else 0
            )
            resources = aggregate_resources(
                profiles,
                allocations,
                live_output_elements=live,
                num_arrays_total=self.hardware.num_arrays,
            )
            breakdown = inter_segment_breakdown(
                previous_resources,
                resources,
                profiles,
                allocations,
                self.hardware,
                allow_boundary_buffering=False,
            )
            segments.append(
                SegmentPlan(
                    index=seg_index,
                    operator_names=[unit.name for unit in members],
                    allocations=allocations,
                    profiles=profiles,
                    intra_cycles=intra,
                    inter_cycles=sum(breakdown.values()),
                    inter_breakdown=breakdown,
                    resources=resources,
                )
            )
            previous_resources = resources
        meta_program = None
        if self.generate_code and segments:
            meta_program = generate_program(graph.name, segments, self.hardware)
        elapsed = time.perf_counter() - start
        return CompiledProgram(
            graph_name=graph.name,
            compiler_name=self.name,
            hardware=self.hardware,
            segments=segments,
            block_repeat=float(graph.metadata.get("block_repeat", 1.0)),
            compile_seconds=elapsed,
            metadata={"graph_metadata": dict(graph.metadata)},
            meta_program=meta_program,
        )

    # ------------------------------------------------------------------ #
    # helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _greedy_pack(self, units: Sequence[FlattenedUnit], limit: Optional[int] = None) -> List[List[int]]:
        """Pack consecutive units into segments until the chip is full."""
        groups: List[List[int]] = []
        current: List[int] = []
        used = 0
        for unit in units:
            need = max(1, unit.profile.min_compute_arrays(self.hardware))
            too_many_ops = limit is not None and len(current) >= limit
            if current and (used + need > self.hardware.num_arrays or too_many_ops):
                groups.append(current)
                current = []
                used = 0
            current.append(unit.index)
            used += need
        if current:
            groups.append(current)
        return groups


def _refine_compute_only(result, profiles, hardware, pipelined):
    """Duplication refinement restricted to compute-mode growth."""
    from ..core.allocation import AllocationResult
    from ..cost.latency import operator_latency_cycles

    allocations = dict(result.allocations)
    remaining = hardware.num_arrays - sum(a.total_arrays for a in allocations.values())

    def latency_of(name: str) -> float:
        return operator_latency_cycles(profiles[name], allocations[name], hardware)

    while remaining > 0:
        bottleneck = max(allocations, key=latency_of)
        current = allocations[bottleneck]
        grown = OperatorAllocation(current.compute_arrays + 1, 0)
        if operator_latency_cycles(profiles[bottleneck], grown, hardware) >= latency_of(bottleneck) - 1e-9:
            break
        allocations[bottleneck] = grown
        remaining -= 1
    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, result.solver)
