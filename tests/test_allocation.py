"""Tests for the per-segment dual-mode allocation engines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    AllocationResult,
    GreedyAllocator,
    MIPAllocator,
    allocate_segment,
    candidate_allocations,
    infeasible_result,
    minimum_compute_arrays,
    refine_with_spare_arrays,
    segment_fits,
)
from repro.cost import OperatorAllocation, operator_latency_cycles, profile_operator, segment_latency_cycles
from repro.hardware import small_test_chip
from repro.ir import Linear, MatMul, TensorSpec


def linear_profile(name, m=32, k=128, n=128):
    op = Linear(
        name,
        input=TensorSpec(f"{name}_x", (m, k)),
        output=TensorSpec(f"{name}_y", (m, n)),
        weight=TensorSpec(f"{name}_w", (k, n)),
    )
    return profile_operator(op)


def matmul_profile(name, b=4, m=16, k=64, n=64):
    op = MatMul(
        name,
        lhs=TensorSpec(f"{name}_a", (b, m, k)),
        rhs=TensorSpec(f"{name}_b", (b, k, n)),
        output=TensorSpec(f"{name}_c", (b, m, n)),
    )
    return profile_operator(op)


@pytest.fixture
def mixed_segment():
    return {
        "proj": linear_profile("proj", 32, 128, 128),
        "attn": matmul_profile("attn", 4, 32, 64, 64),
    }


class TestCandidates:
    def test_candidates_respect_budget(self, small_chip):
        profile = linear_profile("p", 32, 256, 256)
        for candidate in candidate_allocations(profile, small_chip, small_chip.num_arrays):
            assert candidate.total_arrays <= small_chip.num_arrays

    def test_candidates_start_at_minimum_footprint(self, small_chip):
        profile = linear_profile("p", 32, 128, 128)
        minimum = profile.min_compute_arrays(small_chip)
        candidates = candidate_allocations(profile, small_chip, small_chip.num_arrays)
        assert all(c.compute_arrays >= minimum for c in candidates)

    def test_candidates_form_pareto_frontier(self, small_chip):
        profile = matmul_profile("p", 8, 32, 64, 64)
        candidates = candidate_allocations(profile, small_chip, small_chip.num_arrays)
        for earlier, later in zip(candidates, candidates[1:]):
            assert later.total_arrays > earlier.total_arrays
            assert later.latency_cycles < earlier.latency_cycles

    def test_memory_mode_disallowed(self, small_chip):
        profile = matmul_profile("p")
        candidates = candidate_allocations(
            profile, small_chip, small_chip.num_arrays, allow_memory_mode=False
        )
        assert all(c.memory_arrays == 0 for c in candidates)

    def test_oversized_operator_has_no_candidates(self, small_chip):
        profile = linear_profile("p", 4, 64 * 20, 64 * 20)  # needs 400 arrays
        assert candidate_allocations(profile, small_chip, small_chip.num_arrays) == []

    def test_candidate_count_capped(self, small_chip):
        profile = matmul_profile("p", 16, 64, 64, 64)
        candidates = candidate_allocations(
            profile, small_chip, small_chip.num_arrays, max_candidates=5
        )
        assert len(candidates) <= 5


class TestFeasibilityHelpers:
    def test_minimum_compute_arrays_sum(self, small_chip, mixed_segment):
        total = minimum_compute_arrays(mixed_segment, small_chip)
        expected = sum(
            max(1, p.min_compute_arrays(small_chip)) for p in mixed_segment.values()
        )
        assert total == expected

    def test_segment_fits(self, small_chip, mixed_segment):
        assert segment_fits(mixed_segment, small_chip)

    def test_segment_does_not_fit(self, small_chip):
        oversized = {f"op{i}": linear_profile(f"op{i}", 4, 256, 256) for i in range(4)}
        assert not segment_fits(oversized, small_chip)

    def test_infeasible_result_shape(self):
        result = infeasible_result()
        assert not result.feasible
        assert result.latency_cycles == float("inf")
        assert result.total_arrays == 0


class TestGreedyAllocator:
    def test_budget_respected(self, small_chip, mixed_segment):
        result = GreedyAllocator().allocate(mixed_segment, small_chip)
        assert result.feasible
        assert result.total_arrays <= small_chip.num_arrays

    def test_every_operator_allocated(self, small_chip, mixed_segment):
        result = GreedyAllocator().allocate(mixed_segment, small_chip)
        assert set(result.allocations) == set(mixed_segment)
        assert all(a.compute_arrays >= 1 for a in result.allocations.values())

    def test_memory_mode_disabled(self, small_chip, mixed_segment):
        result = GreedyAllocator(allow_memory_mode=False).allocate(mixed_segment, small_chip)
        assert all(a.memory_arrays == 0 for a in result.allocations.values())

    def test_infeasible_segment_reported(self, small_chip):
        oversized = {f"op{i}": linear_profile(f"op{i}", 4, 256, 256) for i in range(4)}
        assert not GreedyAllocator().allocate(oversized, small_chip).feasible

    def test_empty_segment(self, small_chip):
        result = GreedyAllocator().allocate({}, small_chip)
        assert result.feasible and result.latency_cycles == 0.0

    def test_latency_matches_reported_allocation(self, small_chip, mixed_segment):
        result = GreedyAllocator().allocate(mixed_segment, small_chip)
        recomputed = segment_latency_cycles(mixed_segment, result.allocations, small_chip)
        assert result.latency_cycles == pytest.approx(recomputed)


class TestMIPAllocator:
    def test_budget_respected(self, small_chip, mixed_segment):
        result = MIPAllocator().allocate(mixed_segment, small_chip)
        assert result.feasible
        assert result.total_arrays <= small_chip.num_arrays

    def test_not_worse_than_greedy(self, small_chip, mixed_segment):
        milp = MIPAllocator().allocate(mixed_segment, small_chip)
        greedy = GreedyAllocator().allocate(mixed_segment, small_chip)
        assert milp.latency_cycles <= greedy.latency_cycles * 1.05

    def test_memory_mode_disabled(self, small_chip, mixed_segment):
        result = MIPAllocator(allow_memory_mode=False).allocate(mixed_segment, small_chip)
        assert all(a.memory_arrays == 0 for a in result.allocations.values())

    def test_single_operator_segment(self, small_chip):
        profiles = {"only": matmul_profile("only", 8, 32, 64, 64)}
        result = MIPAllocator().allocate(profiles, small_chip)
        assert result.feasible
        assert result.allocations["only"].compute_arrays >= 1

    def test_infeasible_segment_reported(self, small_chip):
        oversized = {f"op{i}": linear_profile(f"op{i}", 4, 256, 256) for i in range(4)}
        result = allocate_segment(oversized, small_chip, allocator=MIPAllocator())
        assert not result.feasible

    def test_dual_mode_not_worse_than_all_compute(self, small_chip):
        profiles = {
            "stream": matmul_profile("stream", 2, 64, 64, 64),
            "dense": linear_profile("dense", 256, 64, 64),
        }
        dual = allocate_segment(profiles, small_chip, allocator=MIPAllocator())
        fixed = allocate_segment(
            profiles, small_chip, allocator=MIPAllocator(allow_memory_mode=False)
        )
        assert dual.feasible and fixed.feasible
        assert dual.latency_cycles <= fixed.latency_cycles * 1.001


class TestRefinement:
    def test_refine_never_worsens(self, small_chip, mixed_segment):
        base = GreedyAllocator().allocate(mixed_segment, small_chip)
        refined = refine_with_spare_arrays(base, mixed_segment, small_chip)
        assert refined.latency_cycles <= base.latency_cycles + 1e-9

    def test_refine_respects_reserve(self, small_chip):
        profiles = {"proj": linear_profile("proj", 32, 128, 128)}
        minimal = {
            name: OperatorAllocation(max(1, p.min_compute_arrays(small_chip)), 0)
            for name, p in profiles.items()
        }
        base = AllocationResult(
            allocations=minimal,
            latency_cycles=segment_latency_cycles(profiles, minimal, small_chip),
            feasible=True,
            solver="test",
        )
        reserve = 3
        refined = refine_with_spare_arrays(base, profiles, small_chip, reserve_arrays=reserve)
        assert refined.total_arrays <= small_chip.num_arrays - reserve

    def test_refine_compute_only_mode(self, small_chip, mixed_segment):
        base = GreedyAllocator(allow_memory_mode=False).allocate(mixed_segment, small_chip)
        refined = refine_with_spare_arrays(
            base, mixed_segment, small_chip, allow_memory_mode=False
        )
        assert all(a.memory_arrays == 0 for a in refined.allocations.values())

    def test_refine_skips_infeasible(self, small_chip, mixed_segment):
        assert refine_with_spare_arrays(infeasible_result(), mixed_segment, small_chip).feasible is False

    @given(reserve=st.integers(min_value=0, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_allocate_segment_reserve_property(self, reserve):
        hw = small_test_chip()
        profiles = {
            "a": linear_profile("a", 32, 64, 64),
            "b": matmul_profile("b", 2, 16, 64, 64),
        }
        result = allocate_segment(profiles, hw, reserve_arrays=reserve)
        assert result.feasible
        assert result.total_arrays <= hw.num_arrays
