"""Command-line interface for the CMSwitch reproduction.

Installed as ``python -m repro.cli`` (or used programmatically through
:func:`main`).  Sub-commands:

* ``models`` — list the registered benchmark networks.
* ``hardware`` — show a hardware preset's DEHA parameters.
* ``compile`` — compile one model for one hardware preset and print the
  plan summary (optionally the meta-operator flow and per-segment table).
* ``compile-batch`` — compile many models through the
  :class:`repro.service.CompileService` (shared allocation cache, thread
  or process pool) and print per-job statistics including the cache hit
  rate.  ``--cache-dir`` persists the cache on disk so later invocations
  (and process-pool workers) reuse earlier solves.
* ``compare`` — compile with CMSwitch and the baselines and print speedups.
* ``experiment`` — run one of the paper-figure experiments
  (``--cache-dir`` persists allocation solves across runs).

Examples::

    python -m repro.cli compile llama2-7b --hardware dynaplasia --batch 1 --seq-len 128
    python -m repro.cli compile-batch resnet18 bert vgg16 --jobs 4 --repeat 2
    python -m repro.cli compile-batch resnet18 bert --cache-dir ~/.cache/repro-allocs
    python -m repro.cli compile-batch resnet18 bert --backend process --cache-dir /tmp/ac
    python -m repro.cli compare resnet18 --batch 8
    python -m repro.cli experiment fig14 --batch-sizes 1 8
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .baselines import CIMMLCCompiler, OCCCompiler, PUMACompiler
from .core.compiler import CMSwitchCompiler, CompilerOptions
from .hardware.presets import PRESETS, get_preset
from .models.registry import build_model, is_transformer, list_models
from .models.workload import Phase, Workload


def _workload_for_model(model: str, args: argparse.Namespace) -> Workload:
    """Build a workload for ``model`` from the shared CLI arguments."""
    phase = Phase(args.phase) if args.phase else (
        Phase.ENCODE if is_transformer(model) else Phase.PREFILL
    )
    return Workload(
        batch_size=args.batch,
        seq_len=args.seq_len,
        output_len=args.output_len,
        phase=phase,
    )


def _workload_from_args(args: argparse.Namespace) -> Workload:
    """Build a workload from the shared CLI arguments (single-model commands)."""
    return _workload_for_model(args.model, args)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("model", help="registered model name (see the 'models' command)")
    parser.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    parser.add_argument("--batch", type=int, default=1, help="batch size")
    parser.add_argument("--seq-len", type=int, default=64, help="input sequence length")
    parser.add_argument("--output-len", type=int, default=64, help="generated tokens")
    parser.add_argument(
        "--phase",
        choices=[phase.value for phase in Phase],
        default=None,
        help="transformer phase (default: encode for transformers)",
    )


def cmd_models(_: argparse.Namespace) -> int:
    """List registered models."""
    for name in list_models():
        print(name)
    return 0


def cmd_hardware(args: argparse.Namespace) -> int:
    """Print a hardware preset summary."""
    print(get_preset(args.preset).summary())
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Compile one model and print the plan."""
    hardware = get_preset(args.hardware)
    graph = build_model(args.model, _workload_from_args(args))
    options = CompilerOptions(generate_code=args.show_metaops)
    program = CMSwitchCompiler(hardware, options).compile(graph)
    print(program.summary())
    if args.show_segments:
        print()
        for segment in program.segments:
            print(segment.describe())
    if args.show_metaops and program.meta_program is not None:
        print()
        print(program.meta_program.render())
    return 0


def cmd_compile_batch(args: argparse.Namespace) -> int:
    """Compile several models through the batch service and print stats."""
    from .service import CompileJob, CompileService

    if not args.models:
        print(
            "error: compile-batch requires at least one model name\n"
            "usage: repro compile-batch MODEL [MODEL ...] [--cache-dir DIR] "
            "[--backend {thread,process}]\n"
            "       (run 'repro models' to list the registered models)",
            file=sys.stderr,
        )
        return 2

    hardware = get_preset(args.hardware)
    jobs = []
    for round_index in range(max(1, args.repeat)):
        for model in args.models:
            workload = _workload_for_model(model, args)
            label = model if args.repeat <= 1 else f"{model}#{round_index + 1}"
            jobs.append(CompileJob(model, workload=workload, hardware=hardware, label=label))

    service = CompileService(
        max_workers=args.jobs,
        use_cache=not args.no_cache,
        backend=args.backend,
        cache_dir=args.cache_dir,
    )
    results = service.compile_batch(jobs)

    header = (
        f"{'job':16s} {'latency (ms)':>13s} {'segments':>9s} {'solves':>7s} "
        f"{'cache hits':>11s} {'hit rate':>9s} {'wall (s)':>9s}"
    )
    print(header)
    failures = 0
    total_solves = 0
    for result in results:
        if not result.ok:
            failures += 1
            print(f"{result.job.name:16s} FAILED: {result.error}")
            continue
        stats = result.stats
        total_solves += stats.get("allocator_solves", 0)
        print(
            f"{result.job.name:16s} {result.program.end_to_end_ms:13.3f} "
            f"{result.program.num_segments:9d} {stats.get('allocator_solves', 0):7d} "
            f"{stats.get('allocation_cache_hits', 0):11d} "
            f"{100.0 * stats.get('allocation_cache_hit_rate', 0.0):8.1f}% "
            f"{result.wall_seconds:9.3f}"
        )
    if args.backend == "thread":
        aggregate = service.cache_stats
        print(
            f"cache: {aggregate.hits} hits / {aggregate.lookups} lookups "
            f"({100.0 * aggregate.hit_rate:.1f}%), {aggregate.evictions} evictions"
        )
        if service.cache is not None and service.cache.store is not None:
            disk = service.cache.store.stats
            print(
                f"disk store: {disk.hits} hits, {disk.stores} stores, "
                f"{disk.evictions} evictions ({service.cache.store.root})"
            )
    # Machine-checkable summary: CI smoke greps this line to assert a
    # disk-warm second invocation performs zero solves.
    print(f"total allocator solves: {total_solves}")
    return 1 if failures else 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Compile with every compiler and print normalised latencies."""
    hardware = get_preset(args.hardware)
    graph = build_model(args.model, _workload_from_args(args))
    compilers = {
        "puma": PUMACompiler(hardware),
        "occ": OCCCompiler(hardware),
        "cim-mlc": CIMMLCCompiler(hardware),
        "cmswitch": CMSwitchCompiler(hardware, CompilerOptions(generate_code=False)),
    }
    results = {name: compiler.compile(graph) for name, compiler in compilers.items()}
    baseline = results["cim-mlc"].end_to_end_cycles
    print(f"{'compiler':10s} {'latency (ms)':>14s} {'vs CIM-MLC':>12s} {'memory arrays':>14s}")
    for name, program in results.items():
        print(
            f"{name:10s} {program.end_to_end_ms:14.3f} "
            f"{baseline / program.end_to_end_cycles:11.2f}x "
            f"{100 * program.mean_memory_array_ratio:13.1f}%"
        )
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    """Run one of the paper-figure experiments and print its report."""
    from .core.cache import AllocationCache
    from .core.store import DiskCacheStore
    from .experiments import end_to_end, generative, workload_scale
    from .experiments import allocation_report as allocation
    from .experiments import compile_time, overheads
    from .hardware.presets import dynaplasia

    hardware = get_preset(args.hardware)
    # A persistent cache makes re-running (or widening) an experiment
    # reuse every allocation solve an earlier invocation already did.
    cache = None
    if getattr(args, "cache_dir", None):
        cache = AllocationCache(store=DiskCacheStore(args.cache_dir))
    if args.figure == "fig14":
        rows = end_to_end.run_end_to_end(
            hardware=hardware, batch_sizes=tuple(args.batch_sizes), cache=cache
        )
        print(end_to_end.render_report(rows))
    elif args.figure == "fig16":
        rows = workload_scale.run_workload_scale(
            hardware=hardware,
            batch_sizes=tuple(args.batch_sizes),
            sequence_lengths=tuple(args.sequence_lengths),
            cache=cache,
        )
        print(workload_scale.render_report(rows))
    elif args.figure == "fig17":
        rows = generative.run_generative(
            hardware=hardware, lengths=tuple(args.sequence_lengths), cache=cache
        )
        print(generative.render_report(rows))
    elif args.figure == "fig15":
        for model in ("vgg16", "opt-6.7b"):
            rows = allocation.allocation_report(model, hardware=hardware, cache=cache)
            print(allocation.render_report(model, rows))
            print()
    elif args.figure == "fig18":
        rows = compile_time.measure_compile_time(hardware=hardware, cache=cache)
        print(compile_time.render_report(rows))
    elif args.figure == "sec5.5":
        print(
            overheads.render_switch_report(
                overheads.switch_overhead(hardware=hardware, cache=cache)
            )
        )
        print()
        print(overheads.render_prime_report(overheads.prime_scalability(cache=cache)))
    else:  # pragma: no cover - argparse restricts the choices
        raise ValueError(f"unknown figure {args.figure!r}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="CMSwitch dual-mode CIM compiler (paper reproduction)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list registered models")
    models.set_defaults(func=cmd_models)

    hardware = sub.add_parser("hardware", help="show a hardware preset")
    hardware.add_argument("preset", choices=sorted(PRESETS))
    hardware.set_defaults(func=cmd_hardware)

    compile_cmd = sub.add_parser("compile", help="compile a model with CMSwitch")
    _add_workload_arguments(compile_cmd)
    compile_cmd.add_argument("--show-segments", action="store_true", help="print segment plans")
    compile_cmd.add_argument("--show-metaops", action="store_true", help="print the DMO flow")
    compile_cmd.set_defaults(func=cmd_compile)

    batch = sub.add_parser(
        "compile-batch",
        help="compile many models concurrently with a shared allocation cache",
    )
    batch.add_argument("models", nargs="*", help="registered model names (at least one)")
    batch.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    batch.add_argument("--batch", type=int, default=1, help="batch size")
    batch.add_argument("--seq-len", type=int, default=64, help="input sequence length")
    batch.add_argument("--output-len", type=int, default=64, help="generated tokens")
    batch.add_argument(
        "--phase",
        choices=[phase.value for phase in Phase],
        default=None,
        help="transformer phase (default: encode for transformers)",
    )
    batch.add_argument("--jobs", type=int, default=None, help="thread-pool width")
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="compile the model list this many times (shows warm-cache speedups)",
    )
    batch.add_argument(
        "--no-cache", action="store_true", help="disable the shared allocation cache"
    )
    batch.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory (shared across runs and processes)",
    )
    batch.add_argument(
        "--backend",
        choices=["thread", "process"],
        default="thread",
        help="worker pool backend (process workers share solves via --cache-dir)",
    )
    batch.set_defaults(func=cmd_compile_batch)

    compare = sub.add_parser("compare", help="compare CMSwitch against the baselines")
    _add_workload_arguments(compare)
    compare.set_defaults(func=cmd_compare)

    experiment = sub.add_parser("experiment", help="run a paper-figure experiment")
    experiment.add_argument(
        "figure", choices=["fig14", "fig15", "fig16", "fig17", "fig18", "sec5.5"]
    )
    experiment.add_argument("--hardware", default="dynaplasia", choices=sorted(PRESETS))
    experiment.add_argument("--batch-sizes", type=int, nargs="+", default=[1])
    experiment.add_argument("--sequence-lengths", type=int, nargs="+", default=[32, 256])
    experiment.add_argument(
        "--cache-dir",
        default=None,
        help="persistent allocation-cache directory reused across experiment runs",
    )
    experiment.set_defaults(func=cmd_experiment)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
