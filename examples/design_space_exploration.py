#!/usr/bin/env python3
"""Design-space exploration with the dual-mode hardware abstraction.

Because the compiler only sees the chip through the DEHA parameters, it
doubles as a quick architecture-exploration tool: sweep the array count,
array size or mode-switch latency and watch how the optimal
compute/memory split and the achievable latency move.  This example

* reproduces the motivation sweep (how the best compute-mode ratio differs
  between ResNet-50 and LLaMA 2, Fig. 1(b)),
* compares the DynaPlasia-like target against a PRIME-like ReRAM chip
  (the §5.5 scalability study),
* sweeps the number of dual-mode arrays to show where extra arrays stop
  paying off for a fixed workload.

Run with ``python examples/design_space_exploration.py``.  Pass a
directory as the first argument to persist the allocation cache there:
re-running the script (or widening the sweep, or fanning it out across
processes) then reuses every solve the previous run already did.
"""

import sys

from repro.analysis import compiled_array_sweep, mode_ratio_sweep
from repro.baselines import CIMMLCCompiler
from repro.core import AllocationCache, CMSwitchCompiler, CompilerOptions
from repro.experiments import prime_scalability
from repro.hardware import dynaplasia, prime
from repro.models import Phase, Workload, build_model


def motivation_sweep() -> None:
    """Best compute-mode ratio per model (Fig. 1(b))."""
    hardware = dynaplasia(num_arrays=100)
    print("best compute-mode ratio on a 100-array chip:")
    for model, phase in (("resnet50", Phase.PREFILL), ("llama2-7b", Phase.DECODE)):
        graph = build_model(model, Workload(batch_size=1, seq_len=64, phase=phase))
        sweep = mode_ratio_sweep(graph, hardware)
        print(f"  {model:12s} -> {sweep.best_ratio * 100:4.0f}% compute mode")
    print()


def prime_comparison() -> None:
    """CMSwitch on a PRIME-like ReRAM target (§5.5)."""
    print("PRIME-like ReRAM target (speedup of CMSwitch over CIM-MLC):")
    for row in prime_scalability():
        print(f"  {row['model']:12s} {row['speedup_vs_cim-mlc']:.2f}x "
              f"(memory-array ratio {row['memory_array_ratio'] * 100:.1f}%)")
    print()


def array_count_sweep(cache_dir=None) -> None:
    """How latency scales with the number of dual-mode arrays.

    The whole sweep shares one allocation cache, so every design point's
    fixed-mode fallback pass reuses the dual-mode MILP solves and a
    re-run of the sweep (the typical DSE iteration loop) is nearly free.
    With a ``cache_dir`` the cache is disk-backed and the reuse survives
    across script invocations and processes.
    """
    from repro.core import DiskCacheStore

    graph = build_model("resnet18", Workload(batch_size=1))
    store = DiskCacheStore(cache_dir) if cache_dir else None
    cache = AllocationCache(store=store)
    print("ResNet-18 latency vs. number of dual-mode arrays (DynaPlasia-like):")
    rows = compiled_array_sweep(graph, dynaplasia(), (32, 64, 96, 128, 192), cache=cache)
    for row in rows:
        hardware = dynaplasia(num_arrays=row["num_arrays"])
        mlc = CIMMLCCompiler(hardware).compile(graph)
        print(f"  {row['num_arrays']:4d} arrays: CMSwitch {row['ms']:7.3f} ms, "
              f"CIM-MLC {mlc.end_to_end_ms:7.3f} ms "
              f"({mlc.end_to_end_cycles / row['cycles']:.2f}x, "
              f"cache hit rate {100 * row['cache_hit_rate']:.0f}%)")
    print(f"  allocation cache: {cache.stats.hits} hits / {cache.stats.lookups} lookups")
    print()


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else None
    motivation_sweep()
    prime_comparison()
    array_count_sweep(cache_dir)


if __name__ == "__main__":
    main()
