"""Tests for the shared allocation cache and hardware fingerprinting."""

import math

import pytest

from repro.core import (
    AllocationCache,
    CMSwitchCompiler,
    CompilerOptions,
    GreedyAllocator,
    MIPAllocator,
    NoFeasiblePlanError,
    allocate_segment,
    choose_plan,
)
from repro.core.cache import AllocationCacheKey, profile_signature, segment_signature
from repro.core.program import SegmentPlan
from repro.core.segmentation import SegmentationResult
from repro.cost.arithmetic import profile_graph
from repro.cost.latency import INFEASIBLE_LATENCY, OperatorAllocation, guard_infeasible


class TestHardwareFingerprint:
    def test_stable_and_hashable(self, small_chip):
        fp = small_chip.fingerprint()
        assert isinstance(fp, str) and fp
        assert fp == small_chip.fingerprint()
        hash(fp)

    def test_equal_parameters_equal_fingerprint(self, small_chip):
        clone = small_chip.with_overrides()
        assert clone.fingerprint() == small_chip.fingerprint()

    def test_override_changes_fingerprint(self, small_chip):
        assert (
            small_chip.with_overrides(num_arrays=small_chip.num_arrays + 1).fingerprint()
            != small_chip.fingerprint()
        )

    def test_presets_differ(self, small_chip, dynaplasia_chip):
        assert small_chip.fingerprint() != dynaplasia_chip.fingerprint()


class TestCacheKeys:
    def test_signature_excludes_name(self, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        signatures = [profile_signature(p) for p in profiles.values()]
        for profile, signature in zip(profiles.values(), signatures):
            assert profile.name not in signature
        assert segment_signature(profiles) == tuple(signatures)

    def test_key_distinguishes_options(self, small_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        base = dict(engine="milp", pipelined=True, refine=True,
                    allow_memory_mode=True, reserve_arrays=0)
        key = AllocationCacheKey.build(profiles, small_chip, **base)
        for override in (
            {"engine": "greedy"},
            {"pipelined": False},
            {"refine": False},
            {"allow_memory_mode": False},
            {"reserve_arrays": 2},
        ):
            other = AllocationCacheKey.build(profiles, small_chip, **{**base, **override})
            assert other != key

    def test_dual_mode_variant_flips_only_memory_mode(self, small_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        fixed = AllocationCacheKey.build(
            profiles, small_chip, engine="milp", pipelined=True, refine=True,
            allow_memory_mode=False, reserve_arrays=0,
        )
        dual = fixed.dual_mode_variant()
        assert dual.allow_memory_mode is True
        assert dual.segment == fixed.segment and dual.reserve_arrays == fixed.reserve_arrays


class TestAllocationCache:
    def _options(self, **overrides):
        options = dict(engine="milp", pipelined=True, refine=True,
                       allow_memory_mode=True, reserve_arrays=0)
        options.update(overrides)
        return options

    def test_miss_then_hit(self, dynaplasia_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        assert cache.lookup_segment(profiles, dynaplasia_chip, **self._options()) is None
        result = allocate_segment(profiles, dynaplasia_chip, cache=cache)
        assert not result.from_cache
        hit = cache.lookup_segment(profiles, dynaplasia_chip, **self._options())
        assert hit is not None and hit.from_cache
        assert hit.latency_cycles == result.latency_cycles
        assert hit.allocations == result.allocations
        assert cache.stats.hits == 1 and cache.stats.misses == 2

    def test_cached_result_is_bit_identical(self, small_chip, tiny_cnn_graph):
        cache = AllocationCache()
        options = CompilerOptions(generate_code=False)
        cold = CMSwitchCompiler(small_chip, options, cache=cache).compile(tiny_cnn_graph)
        warm = CMSwitchCompiler(small_chip, options, cache=cache).compile(tiny_cnn_graph)
        uncached = CMSwitchCompiler(small_chip, options).compile(tiny_cnn_graph)
        for other in (warm, uncached):
            assert other.end_to_end_cycles == cold.end_to_end_cycles
            assert [s.allocations for s in other.segments] == [
                s.allocations for s in cold.segments
            ]
        assert warm.stats["allocator_solves"] == 0
        assert warm.stats["allocation_cache_hit_rate"] == 1.0

    def test_repeat_compile_performs_fewer_solves(self, small_chip, tiny_cnn_graph):
        """Acceptance: two cached compiles < 2x the cold solve count."""
        options = CompilerOptions(generate_code=False)
        cold = CMSwitchCompiler(small_chip, options).compile(tiny_cnn_graph)
        cold_solves = cold.stats["allocator_solves"]
        cache = AllocationCache()
        first = CMSwitchCompiler(small_chip, options, cache=cache).compile(tiny_cnn_graph)
        second = CMSwitchCompiler(small_chip, options, cache=cache).compile(tiny_cnn_graph)
        total = first.stats["allocator_solves"] + second.stats["allocator_solves"]
        assert total < 2 * cold_solves
        assert second.stats["allocator_solves"] == 0

    def test_fixed_mode_pass_reuses_dual_mode_entries(self, small_chip, tiny_cnn_graph):
        """The fallback pass must hit memory-free dual-mode entries."""
        cache = AllocationCache()
        options = CompilerOptions(generate_code=False)
        CMSwitchCompiler(small_chip, options, cache=cache).compile(tiny_cnn_graph)
        assert cache.stats.cross_mode_hits > 0

    def test_cross_mode_hit_requires_memory_free_entry(self, dynaplasia_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        dual = allocate_segment(
            profiles, dynaplasia_chip, allocator=MIPAllocator(allow_memory_mode=True), cache=cache
        )
        fixed_options = self._options(allow_memory_mode=False)
        hit = cache.lookup_segment(profiles, dynaplasia_chip, **fixed_options)
        uses_memory = any(a.memory_arrays > 0 for a in dual.allocations.values())
        if uses_memory:
            assert hit is None
        else:
            assert hit is not None and hit.from_cache
            assert all(a.memory_arrays == 0 for a in hit.allocations.values())

    def test_hit_remaps_operator_names(self, dynaplasia_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        allocate_segment(profiles, dynaplasia_chip, cache=cache)
        renamed = {f"renamed_{i}": p for i, p in enumerate(profiles.values())}
        hit = cache.lookup_segment(renamed, dynaplasia_chip, **self._options())
        assert hit is not None
        assert set(hit.allocations) == set(renamed)

    def test_eviction_is_lru(self, dynaplasia_chip, tiny_mlp_graph, tiny_cnn_graph):
        cache = AllocationCache(max_entries=1)
        mlp_profiles = profile_graph(tiny_mlp_graph)
        cnn_profiles = profile_graph(tiny_cnn_graph)
        allocate_segment(mlp_profiles, dynaplasia_chip, cache=cache)
        allocate_segment(cnn_profiles, dynaplasia_chip, cache=cache)
        assert len(cache) == 1
        assert cache.stats.evictions == 1
        # The MLP entry (oldest) was evicted; the CNN entry survives.
        assert cache.lookup_segment(mlp_profiles, dynaplasia_chip, **self._options()) is None
        assert cache.lookup_segment(cnn_profiles, dynaplasia_chip, **self._options()) is not None

    def test_greedy_and_milp_entries_are_separate(self, dynaplasia_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        allocate_segment(profiles, dynaplasia_chip, allocator=MIPAllocator(), cache=cache)
        assert (
            cache.lookup_segment(profiles, dynaplasia_chip, **self._options(engine="greedy"))
            is None
        )
        greedy = allocate_segment(
            profiles, dynaplasia_chip, allocator=GreedyAllocator(), cache=cache
        )
        assert not greedy.from_cache

    def test_different_hardware_never_shares_entries(
        self, small_chip, dynaplasia_chip, tiny_mlp_graph
    ):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        allocate_segment(profiles, small_chip, cache=cache)
        assert cache.lookup_segment(profiles, dynaplasia_chip, **self._options()) is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            AllocationCache(max_entries=0)

    def test_clear_and_reset_stats(self, dynaplasia_chip, tiny_mlp_graph):
        profiles = profile_graph(tiny_mlp_graph)
        cache = AllocationCache()
        allocate_segment(profiles, dynaplasia_chip, cache=cache)
        assert len(cache) > 0
        cache.clear()
        assert len(cache) == 0
        cache.reset_stats()
        assert cache.stats.lookups == 0 and cache.stats.hit_rate == 0.0


def _plan(intra, inter=0.0, compute=1, memory=0):
    return SegmentPlan(
        index=0,
        operator_names=["op"],
        allocations={"op": OperatorAllocation(compute, memory)},
        profiles={},
        intra_cycles=intra,
        inter_cycles=inter,
    )


def _result(*plans):
    return SegmentationResult(segments=list(plans), units=[], dp_seconds=0.0,
                              allocation_calls=0)


class TestChoosePlan:
    def test_strictly_faster_fixed_plan_wins(self):
        chosen, used = choose_plan(_result(_plan(100.0)), _result(_plan(50.0)))
        assert used and chosen.total_cycles == 50.0

    def test_slower_fixed_plan_loses(self):
        chosen, used = choose_plan(_result(_plan(50.0)), _result(_plan(100.0)))
        assert not used and chosen.total_cycles == 50.0

    def test_both_infeasible_keeps_dual_without_fallback_flag(self):
        dual = _result(_plan(INFEASIBLE_LATENCY))
        fixed = _result(_plan(INFEASIBLE_LATENCY))
        chosen, used = choose_plan(dual, fixed)
        assert chosen is dual and not used

    def test_nan_cost_treated_as_infeasible(self):
        nan_plan = _result(_plan(float("nan")))
        good = _result(_plan(10.0))
        chosen, used = choose_plan(nan_plan, good)
        assert used and chosen is good
        chosen, used = choose_plan(good, nan_plan)
        assert not used and chosen is good

    def test_exact_tie_prefers_fixed_only_with_fewer_arrays(self):
        dual = _result(_plan(100.0, compute=2, memory=2))
        fixed_fewer = _result(_plan(100.0, compute=3, memory=0))
        fixed_same = _result(_plan(100.0, compute=4, memory=0))
        chosen, used = choose_plan(dual, fixed_fewer)
        assert used and chosen is fixed_fewer
        chosen, used = choose_plan(dual, fixed_same)
        assert not used and chosen is dual

    def test_compiler_raises_when_no_plan_feasible(
        self, small_chip, tiny_cnn_graph, monkeypatch
    ):
        """Both passes infeasible -> NoFeasiblePlanError, never a silent keep."""
        import repro.pipeline.passes as passes_module

        class InfeasibleSegmenter:
            # Speaks the split Segment/Allocate protocol of the pipeline
            # (choose_boundaries + build_plans) and the fused segment()
            # the fallback pass calls.
            def __init__(self, *args, **kwargs):
                self.allocation_calls = 0
                self.cache_hits = 0
                self.disk_hits = 0

            def choose_boundaries(self, graph, units):
                return [(0, len(units) - 1)]

            def build_plans(self, units, boundaries):
                return _result(_plan(INFEASIBLE_LATENCY)).segments

            def segment(self, graph, units=None):
                return _result(_plan(INFEASIBLE_LATENCY))

        monkeypatch.setattr(passes_module, "NetworkSegmenter", InfeasibleSegmenter)
        compiler = CMSwitchCompiler(small_chip, CompilerOptions(generate_code=False))
        with pytest.raises(NoFeasiblePlanError):
            compiler.compile(tiny_cnn_graph)


class TestInfeasibilityGuards:
    def test_guard_infeasible_collapses_nan(self):
        assert guard_infeasible(float("nan")) == INFEASIBLE_LATENCY
        assert guard_infeasible(5.0) == 5.0
        assert guard_infeasible(INFEASIBLE_LATENCY) == INFEASIBLE_LATENCY

    def test_zero_rate_empty_transfer_is_free(self, small_chip, tiny_mlp_graph):
        """rate == 0 with nothing to move must not manufacture infinity."""
        from repro.cost.arithmetic import profile_graph
        from repro.cost.latency import data_supply_times

        profile = next(iter(profile_graph(tiny_mlp_graph).values()))
        # d_main_share == 0 zeroes both rates; the on-chip side still has
        # data (streamed elements) so it is infeasible, but the off-chip
        # side may be empty and must then cost zero.
        offchip, onchip = data_supply_times(profile, 0, small_chip, d_main_share=0.0)
        if profile.streamed_input_elements + profile.extra_streamed_elements <= (
            small_chip.buffer_elements
        ):
            assert offchip == 0.0
        assert not math.isnan(offchip) and not math.isnan(onchip)

    def test_operator_latency_never_nan(self, small_chip, tiny_mlp_graph):
        from repro.cost.latency import operator_latency_cycles

        for profile in profile_graph(tiny_mlp_graph).values():
            for allocation in (
                OperatorAllocation(0, 0),
                OperatorAllocation(1, 0),
                OperatorAllocation(1, small_chip.num_arrays),
            ):
                latency = operator_latency_cycles(
                    profile, allocation, small_chip, d_main_share=0.0
                )
                assert not math.isnan(latency)

    def test_mean_memory_ratio_with_infinite_segment(self, small_chip):
        from repro.core.program import CompiledProgram

        program = CompiledProgram(
            graph_name="g",
            compiler_name="test",
            hardware=small_chip,
            segments=[_plan(INFEASIBLE_LATENCY), _plan(10.0, memory=1)],
        )
        ratio = program.mean_memory_array_ratio
        assert not math.isnan(ratio)
        assert 0.0 <= ratio <= 1.0

    def test_milp_all_infinite_candidates_falls_back(self, small_chip):
        """An all-infeasible candidate set must not crash the MILP build."""
        from repro.core.allocation import AllocationCandidate

        solver = MIPAllocator()
        candidates = {
            "op": [AllocationCandidate(1, 0, INFEASIBLE_LATENCY)],
        }
        assert solver._solve_milp(["op"], candidates, small_chip) is None
