"""Functional and timing simulators for compiled dual-mode CIM programs."""

from .functional import (
    FunctionalReport,
    FunctionalSimulationError,
    FunctionalSimulator,
    OperatorCheck,
    execute_tiled_matmul,
)
from .metrics import ReplayMetrics, compute_metrics
from .reference import ReferenceExecutor, ReferenceExecutionError, deterministic_tensor
from .replay import ReplayResult, ReplaySimulator, RequestOutcome, replay_schedule
from .timing import TimingBreakdown, TimingReport, TimingSimulator
from .traces import (
    Trace,
    TraceFormatError,
    TraceRequest,
    load_trace,
    save_trace,
    synthetic_trace,
)

__all__ = [
    "FunctionalReport",
    "FunctionalSimulationError",
    "FunctionalSimulator",
    "OperatorCheck",
    "ReferenceExecutionError",
    "ReferenceExecutor",
    "ReplayMetrics",
    "ReplayResult",
    "ReplaySimulator",
    "RequestOutcome",
    "TimingBreakdown",
    "TimingReport",
    "TimingSimulator",
    "Trace",
    "TraceFormatError",
    "TraceRequest",
    "compute_metrics",
    "deterministic_tensor",
    "execute_tiled_matmul",
    "load_trace",
    "replay_schedule",
    "save_trace",
    "synthetic_trace",
]
