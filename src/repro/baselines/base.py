"""Shared machinery of the fixed-mode baseline compilers.

The paper compares CMSwitch against three prior CIM compilers — PUMA,
OCC and CIM-MLC.  All three treat every CIM array as a *compute* resource
(no memory mode), so streamed data is served by the native buffer and the
off-chip link only, and all intermediate data that exceeds the native
buffer spills to main memory between segments.  They differ in their
scheduling strategy:

* **PUMA** — operator duplication plus cross-operator pipelining, with a
  simple greedy segmentation that packs consecutive operators until the
  chip is full.
* **OCC** — per-operator mapping with tiling / loop unrolling; operators
  execute one after another (no cross-operator pipeline, no duplication).
* **CIM-MLC** — the strongest baseline: the same dynamic-programming
  segmentation and pipelined scheduling CMSwitch uses (CMSwitch adopts its
  kernel optimisations), but with every array fixed in compute mode.

All of them reuse the CMSwitch cost model with ``allow_memory_mode=False``
so comparisons isolate exactly the contribution the paper claims: the
dual-mode dimension of the optimisation space.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..cost.arithmetic import OperatorProfile
from ..cost.latency import OperatorAllocation, segment_latency_cycles
from ..core.program import CompiledProgram
from ..core.segmentation import FlattenedUnit
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph


class BaselineCompiler:
    """Base class for fixed-mode (all-compute) baseline compilers."""

    name = "baseline"
    #: Whether operators within a segment execute as a pipeline.
    pipelined = True
    #: Whether spare arrays are used for weight duplication.
    duplication = True

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        generate_code: bool = False,
    ) -> None:
        self.hardware = hardware
        self.generate_code = generate_code

    # ------------------------------------------------------------------ #
    # strategy hooks
    # ------------------------------------------------------------------ #
    def segment_boundaries(self, units: Sequence[FlattenedUnit]) -> List[List[int]]:
        """Group unit indices into segments.  Overridden per baseline."""
        raise NotImplementedError

    def allocate(self, profiles: Dict[str, OperatorProfile]) -> Dict[str, OperatorAllocation]:
        """Fixed-mode allocation: minimum footprint plus optional duplication."""
        allocations = {
            name: OperatorAllocation(
                compute_arrays=max(1, profile.min_compute_arrays(self.hardware)),
                memory_arrays=0,
            )
            for name, profile in profiles.items()
        }
        if not self.duplication:
            return allocations
        # Spare arrays duplicate the bottleneck operator's weights.
        from ..core.allocation import AllocationResult

        interim = AllocationResult(
            allocations=allocations,
            latency_cycles=segment_latency_cycles(
                profiles, allocations, self.hardware, pipelined=self.pipelined
            ),
            feasible=True,
            solver=self.name,
        )
        refined = _refine_compute_only(interim, profiles, self.hardware, self.pipelined)
        return refined.allocations

    # ------------------------------------------------------------------ #
    # compilation (a pipeline configuration)
    # ------------------------------------------------------------------ #
    def build_pipeline(self):
        """The baseline's pass sequence.

        Shares ``Flatten`` and ``PartitionOversized`` with CMSwitch and
        swaps in the baseline segmentation / allocation / codegen
        passes (:mod:`repro.baselines.passes`).  Subclasses may
        override to customise further.
        """
        from ..pipeline import Flatten, PartitionOversized, Pipeline
        from .passes import BaselineAllocate, BaselineCodegen, BaselineSegment

        return Pipeline(
            [
                Flatten(),
                PartitionOversized(),
                BaselineSegment(self),
                BaselineAllocate(self),
                BaselineCodegen(),
            ]
        )

    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile ``graph`` with this baseline's scheduling strategy.

        Runs :meth:`build_pipeline` over a fresh context — the same
        runner, context and instrumentation the CMSwitch compiler uses,
        so baseline programs carry ``stats["pass_seconds"]`` too.  The
        emitted plans are bit-identical to the pre-pipeline fused loop
        (asserted by the baseline parity tests).
        """
        from ..core.compiler import CompilerOptions
        from ..pipeline import PipelineContext
        from ..pipeline.pipeline import instrumentation_stats

        start = time.perf_counter()
        options = CompilerOptions(
            pipelined=self.pipelined,
            refine=self.duplication,
            allow_memory_mode=False,
            fixed_mode_fallback=False,
            generate_code=self.generate_code,
        )
        ctx = PipelineContext(
            graph=graph,
            hardware=self.hardware,
            options=options,
            compiler_name=self.name,
            started=start,
        )
        self.build_pipeline().run(ctx)
        elapsed = time.perf_counter() - start
        return CompiledProgram(
            graph_name=graph.name,
            compiler_name=self.name,
            hardware=self.hardware,
            segments=ctx.result.segments,
            block_repeat=float(graph.metadata.get("block_repeat", 1.0)),
            compile_seconds=elapsed,
            metadata={
                "graph_metadata": dict(graph.metadata),
                "passes": [
                    event.pass_name for event in ctx.trace if event.kind == "end"
                ],
            },
            stats={
                "wall_seconds": elapsed,
                **instrumentation_stats(ctx),
            },
            meta_program=ctx.meta_program,
        )

    # ------------------------------------------------------------------ #
    # helpers shared by subclasses
    # ------------------------------------------------------------------ #
    def _greedy_pack(self, units: Sequence[FlattenedUnit], limit: Optional[int] = None) -> List[List[int]]:
        """Pack consecutive units into segments until the chip is full."""
        groups: List[List[int]] = []
        current: List[int] = []
        used = 0
        for unit in units:
            need = max(1, unit.profile.min_compute_arrays(self.hardware))
            too_many_ops = limit is not None and len(current) >= limit
            if current and (used + need > self.hardware.num_arrays or too_many_ops):
                groups.append(current)
                current = []
                used = 0
            current.append(unit.index)
            used += need
        if current:
            groups.append(current)
        return groups


def _refine_compute_only(result, profiles, hardware, pipelined):
    """Duplication refinement restricted to compute-mode growth."""
    from ..core.allocation import AllocationResult
    from ..cost.latency import operator_latency_cycles

    allocations = dict(result.allocations)
    remaining = hardware.num_arrays - sum(a.total_arrays for a in allocations.values())

    def latency_of(name: str) -> float:
        return operator_latency_cycles(profiles[name], allocations[name], hardware)

    while remaining > 0:
        bottleneck = max(allocations, key=latency_of)
        current = allocations[bottleneck]
        grown = OperatorAllocation(current.compute_arrays + 1, 0)
        if operator_latency_cycles(profiles[bottleneck], grown, hardware) >= latency_of(bottleneck) - 1e-9:
            break
        allocations[bottleneck] = grown
        remaining -= 1
    latency = segment_latency_cycles(profiles, allocations, hardware, pipelined=pipelined)
    return AllocationResult(allocations, latency, True, result.solver)
