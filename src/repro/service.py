"""Batch compilation service with a shared allocation cache.

One CMSwitch compile is dominated by per-segment allocation solves
(Fig. 18 of the paper).  Serving many compile requests from one process —
design-space-exploration sweeps, multi-model fleets, repeated compiles of
the same network at different workloads — repeats most of those solves.
:class:`CompileService` amortises them:

* every job compiles against one shared, thread-safe
  :class:`~repro.core.cache.AllocationCache`, so structurally identical
  segments are solved once across the whole batch;
* jobs run concurrently on a thread pool (``concurrent.futures``); the
  MILP solves release the GIL inside HiGHS, so batches scale with cores;
* each job reports its own statistics (cache hit rate, allocator solves,
  wall time) via :class:`CompileJobResult` and
  ``CompiledProgram.stats``; an error in one job is captured in its
  result and never kills the rest of the batch.

Usage::

    from repro.service import CompileJob, CompileService

    service = CompileService()
    results = service.compile_batch(
        [
            CompileJob("resnet18"),
            CompileJob("bert", workload=Workload(batch_size=4)),
        ]
    )
    for result in results:
        print(result.describe())

The CLI exposes the same path as ``repro compile-batch``.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .core.cache import AllocationCache, CacheStats
from .core.compiler import CMSwitchCompiler, CompilerOptions
from .core.program import CompiledProgram
from .hardware.deha import DualModeHardwareAbstraction
from .hardware.presets import get_preset
from .ir.graph import Graph
from .models.registry import build_model
from .models.workload import Workload

__all__ = ["CompileJob", "CompileJobResult", "CompileService", "compile_batch"]


@dataclass
class CompileJob:
    """One compilation request.

    Attributes:
        model: Registered model name (built via
            :func:`repro.models.build_model`) or an already-built
            :class:`~repro.ir.graph.Graph`.
        workload: Workload for model building (defaults to ``Workload()``;
            ignored when ``model`` is a graph).
        hardware: Hardware preset name or abstraction instance.
        options: Compiler options (paper defaults, code generation off,
            when omitted).
        label: Display name; defaults to the model/graph name.
    """

    model: Union[str, Graph]
    workload: Optional[Workload] = None
    hardware: Union[str, DualModeHardwareAbstraction] = "dynaplasia"
    options: Optional[CompilerOptions] = None
    label: Optional[str] = None

    @property
    def name(self) -> str:
        """Human-readable job name."""
        if self.label:
            return self.label
        return self.model if isinstance(self.model, str) else self.model.name

    def resolve_graph(self) -> Graph:
        """Materialise the computation graph of the job."""
        if isinstance(self.model, Graph):
            return self.model
        return build_model(self.model, self.workload or Workload())

    def resolve_hardware(self) -> DualModeHardwareAbstraction:
        """Materialise the hardware abstraction of the job."""
        if isinstance(self.hardware, DualModeHardwareAbstraction):
            return self.hardware
        return get_preset(self.hardware)


@dataclass
class CompileJobResult:
    """Outcome of one job: the program, or the error that stopped it.

    Attributes:
        job: The originating request.
        program: The compiled program (None when the job failed).
        error: One-line error description (None on success).
        error_traceback: Full traceback text of the failure.
        wall_seconds: Wall-clock time the job took inside the service.
        stats: The program's compile statistics (allocator solves, cache
            hits, hit rate); empty on failure.
    """

    job: CompileJob
    program: Optional[CompiledProgram] = None
    error: Optional[str] = None
    error_traceback: Optional[str] = None
    wall_seconds: float = 0.0
    stats: Dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the job compiled successfully."""
        return self.program is not None

    def describe(self) -> str:
        """One-line summary for logs and the CLI table."""
        if not self.ok:
            return f"{self.job.name}: FAILED ({self.error})"
        hit_rate = self.stats.get("allocation_cache_hit_rate", 0.0)
        return (
            f"{self.job.name}: {self.program.end_to_end_ms:.3f} ms, "
            f"{self.program.num_segments} segments, "
            f"cache hit rate {100.0 * hit_rate:.0f}%, "
            f"{self.wall_seconds:.3f} s"
        )


class CompileService:
    """Compiles many (model, workload, hardware) jobs from one process.

    Args:
        cache: Shared allocation cache; a fresh bounded one is created
            when omitted.  Pass ``None`` explicitly via ``use_cache=False``
            to benchmark the uncached path.
        max_workers: Default thread-pool width for
            :meth:`compile_batch` (None lets ``concurrent.futures``
            choose).
        use_cache: Disable the shared cache entirely (for A/B timing).
    """

    def __init__(
        self,
        cache: Optional[AllocationCache] = None,
        max_workers: Optional[int] = None,
        use_cache: bool = True,
    ) -> None:
        # `cache is not None`, not truthiness: an empty AllocationCache has
        # len() == 0 and would otherwise be silently replaced.
        self.cache = (cache if cache is not None else AllocationCache()) if use_cache else None
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    # single job
    # ------------------------------------------------------------------ #
    def compile(self, job: CompileJob) -> CompileJobResult:
        """Compile one job, capturing any failure in the result."""
        start = time.perf_counter()
        try:
            graph = job.resolve_graph()
            hardware = job.resolve_hardware()
            options = job.options or CompilerOptions(generate_code=False)
            compiler = CMSwitchCompiler(hardware, options, cache=self.cache)
            program = compiler.compile(graph)
        except Exception as exc:  # noqa: BLE001 - isolation is the contract
            return CompileJobResult(
                job=job,
                error=f"{type(exc).__name__}: {exc}",
                error_traceback=traceback.format_exc(),
                wall_seconds=time.perf_counter() - start,
            )
        return CompileJobResult(
            job=job,
            program=program,
            wall_seconds=time.perf_counter() - start,
            stats=dict(program.stats),
        )

    # ------------------------------------------------------------------ #
    # batches
    # ------------------------------------------------------------------ #
    def compile_batch(
        self,
        jobs: Sequence[CompileJob],
        max_workers: Optional[int] = None,
    ) -> List[CompileJobResult]:
        """Compile all jobs concurrently; results keep the input order.

        A failing job yields a :class:`CompileJobResult` with ``ok ==
        False``; the remaining jobs are unaffected.
        """
        jobs = list(jobs)
        if not jobs:
            return []
        workers = max_workers if max_workers is not None else self.max_workers
        if (workers is not None and workers <= 1) or len(jobs) == 1:
            return [self.compile(job) for job in jobs]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.compile, jobs))

    # ------------------------------------------------------------------ #
    # service-level statistics
    # ------------------------------------------------------------------ #
    @property
    def cache_stats(self) -> CacheStats:
        """Aggregate cache counters across every job served so far."""
        if self.cache is None:
            return CacheStats()
        return self.cache.stats.snapshot()


def compile_batch(
    jobs: Sequence[CompileJob],
    cache: Optional[AllocationCache] = None,
    max_workers: Optional[int] = None,
) -> List[CompileJobResult]:
    """Convenience wrapper: run one batch through a fresh service."""
    service = CompileService(cache=cache, max_workers=max_workers)
    return service.compile_batch(jobs)
