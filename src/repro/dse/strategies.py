"""Search strategies driving iterative design-space exploration.

Strategies speak a small ask/tell protocol the runner drives:

* :meth:`Strategy.bind` attaches the strategy to a
  :class:`~repro.dse.space.DesignSpace`;
* :meth:`Strategy.ask` proposes up to ``n`` not-yet-proposed points;
* :meth:`Strategy.tell` feeds back evaluation records (objects exposing
  ``coords``, ``feasible`` and ``objective_value``) so adaptive
  strategies can steer;
* :attr:`Strategy.exhausted` reports when the whole space was proposed.

Three built-ins cover the common sweep shapes:

* ``grid`` — the full factorial grid in deterministic lexicographic
  order; the right default for small spaces and for reproducible runs.
* ``random`` — a seeded uniform shuffle of the grid, proposed without
  replacement; the standard budget-limited baseline for spaces too big
  to enumerate.
* ``greedy`` — successive-halving-flavoured local refinement: an initial
  seeded sample, then each round keeps the best-scoring half of what has
  been evaluated and proposes the unvisited grid *neighbours* of those
  survivors (falling back to random exploration when the neighbourhoods
  are exhausted).  Converges on a good region of a smooth objective with
  a fraction of the grid budget.
* ``successive-halving`` — the real multi-fidelity schedule the tiered
  evaluator layer (:mod:`repro.eval`) enables: rung 0 proposes *every*
  candidate at ``analytical`` fidelity (closed-form lower bounds, zero
  allocator solves), then the best ``keep_fraction`` survivors are
  re-proposed at ``compile`` fidelity.  The strategy announces the
  fidelity of its current rung via :attr:`Strategy.fidelity`, which a
  runner in ``--fidelity auto`` mode obeys.

All randomness flows from an explicit seed — two runs with the same seed
propose the same points in the same order, which the resumable run state
relies on for clean restarts.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from .space import DesignPoint, DesignSpace

__all__ = [
    "GreedyStrategy",
    "GridStrategy",
    "RandomStrategy",
    "STRATEGIES",
    "Strategy",
    "SuccessiveHalvingStrategy",
    "make_strategy",
]


class Strategy:
    """Base class: proposal bookkeeping shared by every strategy.

    :attr:`fidelity` is the multi-fidelity hook: a strategy that
    schedules evaluation tiers (``successive-halving``) sets it to the
    fidelity its *latest* :meth:`ask` batch should be evaluated at, and
    a runner in ``auto`` fidelity mode obeys it.  Fidelity-agnostic
    strategies leave it ``None`` (the runner then applies its own
    default).
    """

    name = "base"

    #: Fidelity requested for the latest ask() batch (None = runner's choice).
    fidelity: Optional[str] = None

    #: Whether the strategy schedules evaluation fidelities itself.
    multi_fidelity = False

    def __init__(self) -> None:
        self.space: DesignSpace = None  # type: ignore[assignment]
        self._proposed: set = set()
        self._total = 0

    def bind(self, space: DesignSpace) -> None:
        """Attach to a space; resets all proposal state."""
        self.space = space
        self._proposed = set()
        self._total = space.size

    @property
    def exhausted(self) -> bool:
        """Whether every point of the space has been proposed."""
        return len(self._proposed) >= self._total

    def ask(self, n: int) -> List[DesignPoint]:
        """Propose up to ``n`` new design points."""
        raise NotImplementedError

    def tell(self, records: Sequence) -> None:
        """Feed evaluation results back (default: ignored)."""

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _propose(self, coords: Tuple[int, ...]) -> DesignPoint:
        self._proposed.add(coords)
        return self.space.point_at(coords)


class GridStrategy(Strategy):
    """Deterministic lexicographic sweep of the whole grid."""

    name = "grid"

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class RandomStrategy(Strategy):
    """Seeded uniform sampling of the grid without replacement."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self.seed = seed

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._pending = list(space.coordinates())
        random.Random(self.seed).shuffle(self._pending)

    def ask(self, n: int) -> List[DesignPoint]:
        batch = []
        while self._pending and len(batch) < n:
            batch.append(self._propose(self._pending.pop(0)))
        return batch


class GreedyStrategy(Strategy):
    """Successive-halving-style neighbourhood refinement.

    Round 0 proposes a seeded random sample.  Every later round ranks all
    evaluated points by objective (infeasible points score ``inf``),
    keeps the top ``keep_fraction`` — the "halving" — and proposes the
    unvisited grid neighbours of those survivors, best survivor first.
    When the survivors' neighbourhoods are exhausted the strategy falls
    back to seeded random exploration so a budget is never stranded.

    Args:
        seed: RNG seed for the initial sample and the exploration order.
        keep_fraction: Fraction of evaluated points whose neighbourhoods
            are explored each round (default 0.5).
    """

    name = "greedy"

    def __init__(self, seed: int = 0, keep_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.seed = seed
        self.keep_fraction = keep_fraction

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._explore = list(space.coordinates())
        random.Random(self.seed).shuffle(self._explore)
        # coords -> best objective seen (records may repeat on resume).
        self._scores: Dict[Tuple[int, ...], float] = {}
        # Point keys already proposed or told.  Distinct coordinates can
        # materialise to the same point key (duplicate axis values,
        # option canonicalisation), and near a space edge a survivor's
        # neighbourhood collapses onto such aliases — without key-level
        # dedup the strategy re-proposes an already-told point and the
        # batch burns budget replicating it.
        self._seen_keys: set = set()

    def _propose_unseen(self, coords: Tuple[int, ...]) -> Optional[DesignPoint]:
        """Propose ``coords`` unless its point key was already seen.

        An aliased coordinate is still marked proposed (it is consumed
        either way) so the exhaustion accounting stays correct.
        """
        point = self.space.point_at(coords)
        self._proposed.add(coords)
        if point.key in self._seen_keys:
            return None
        self._seen_keys.add(point.key)
        return point

    def ask(self, n: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        # Exploit: neighbours of the best-scoring survivors.
        if self._scores:
            ranked = sorted(self._scores.items(), key=lambda item: item[1])
            keep = max(1, math.ceil(len(ranked) * self.keep_fraction))
            for coords, _ in ranked[:keep]:
                for neighbor in self.space.neighbors(coords):
                    if neighbor in self._proposed:
                        continue
                    point = self._propose_unseen(neighbor)
                    if point is None:
                        continue
                    batch.append(point)
                    if len(batch) >= n:
                        return batch
        # Explore: seeded random fill.
        while self._explore and len(batch) < n:
            coords = self._explore.pop(0)
            if coords in self._proposed:
                continue
            point = self._propose_unseen(coords)
            if point is not None:
                batch.append(point)
        return batch

    def tell(self, records: Sequence) -> None:
        for record in records:
            key = getattr(record, "point_key", None)
            if key:
                self._seen_keys.add(key)
            value = getattr(record, "objective_value", None)
            if value is None or not getattr(record, "feasible", False):
                value = math.inf
            coords = tuple(getattr(record, "coords", ()))
            if not coords:
                continue
            previous = self._scores.get(coords, math.inf)
            self._scores[coords] = min(previous, float(value))


class SuccessiveHalvingStrategy(Strategy):
    """Multi-fidelity successive halving over the tiered evaluator layer.

    Rung 0 proposes every candidate of the space (seeded order) at
    ``analytical`` fidelity — closed-form lower bounds, zero allocator
    solves — so the whole grid is scored for the price of none of it.
    Once every rung-0 answer is told back, the feasible candidates are
    ranked by objective (a lower bound ranks candidates fairly: it is
    monotone in the same hardware/option knobs the real cost is) and the
    best ``keep_fraction`` are re-proposed at ``compile`` fidelity.  The
    runner reads :attr:`fidelity` after each :meth:`ask` to evaluate the
    batch at the rung's tier.

    Records already known at full fidelity (a resumed run) short-circuit
    naturally: the runner feeds them back as ``resumed`` without paying
    for re-evaluation, at either rung.

    Args:
        seed: RNG seed for the rung-0 proposal order.
        keep_fraction: Fraction of ranked feasible candidates promoted
            to compile fidelity (default 0.5; ``1/eta`` in
            successive-halving terms).
    """

    name = "successive-halving"
    multi_fidelity = True

    def __init__(self, seed: int = 0, keep_fraction: float = 0.5) -> None:
        super().__init__()
        if not 0.0 < keep_fraction <= 1.0:
            raise ValueError("keep_fraction must be in (0, 1]")
        self.seed = seed
        self.keep_fraction = keep_fraction

    def bind(self, space: DesignSpace) -> None:
        super().bind(space)
        self._rung0_queue = list(space.coordinates())
        random.Random(self.seed).shuffle(self._rung0_queue)
        self._rung0_asked = 0
        self._rung0_told = 0
        # coords -> best rung-0 objective (records may repeat on resume).
        self._rung0_scores: Dict[Tuple[int, ...], float] = {}
        self._promotions: Optional[List[Tuple[int, ...]]] = None
        self.fidelity = "analytical"

    @property
    def exhausted(self) -> bool:
        if self._rung0_queue:
            return False
        if self._promotions is None:
            # Rung 0 proposed but not fully told yet — the promotion
            # rung is still to come.
            return False
        return not self._promotions

    def ask(self, n: int) -> List[DesignPoint]:
        batch: List[DesignPoint] = []
        if self._rung0_queue:
            self.fidelity = "analytical"
            while self._rung0_queue and len(batch) < n:
                coords = self._rung0_queue.pop(0)
                self._rung0_asked += 1
                batch.append(self._propose(coords))
            return batch
        if self._promotions is None:
            if self._rung0_told < self._rung0_asked:
                # Still waiting for rung-0 answers; the runner always
                # tells between asks, so this only guards misuse.
                return []
            ranked = sorted(
                (
                    (value, coords)
                    for coords, value in self._rung0_scores.items()
                    if math.isfinite(value)
                ),
            )
            keep = math.ceil(len(ranked) * self.keep_fraction) if ranked else 0
            self._promotions = [coords for _, coords in ranked[:keep]]
        self.fidelity = "compile"
        while self._promotions and len(batch) < n:
            coords = self._promotions.pop(0)
            batch.append(self.space.point_at(coords))
        return batch

    def tell(self, records: Sequence) -> None:
        for record in records:
            if self._promotions is None:
                self._rung0_told += 1
                coords = tuple(getattr(record, "coords", ()))
                if not coords:
                    continue
                value = getattr(record, "objective_value", None)
                if value is None or not getattr(record, "feasible", False):
                    value = math.inf
                previous = self._rung0_scores.get(coords, math.inf)
                self._rung0_scores[coords] = min(previous, float(value))


STRATEGIES = {
    "grid": GridStrategy,
    "random": RandomStrategy,
    "greedy": GreedyStrategy,
    "successive-halving": SuccessiveHalvingStrategy,
}


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Instantiate a strategy by name (see :data:`STRATEGIES`)."""
    try:
        cls = STRATEGIES[name]
    except KeyError:
        raise ValueError(
            f"unknown strategy {name!r}; known: {', '.join(sorted(STRATEGIES))}"
        ) from None
    if cls is GridStrategy:
        return cls()
    return cls(seed=seed)
