"""`repro.serve` — compile-as-a-service daemon, client and remote cache.

The library's :class:`~repro.api.Session` amortises allocator solves
within one process (memory tier) and across processes sharing a
filesystem (disk tier).  This package promotes it to a *serving* tier so
a whole fleet shares warmth without a shared mount:

* :class:`CompileDaemon` — a stdlib-only threaded HTTP/JSON front door
  over :class:`~repro.service.CompileService`: versioned request and
  response schemas (:mod:`repro.serve.wire`), a bounded request queue
  with a configurable worker pool, and in-flight request coalescing
  (:class:`SingleFlight`: same compile-determining inputs → one compile,
  many waiters).
* :class:`CacheServer` / :class:`RemoteCacheStore` — a thin cache server
  speaking the :class:`~repro.core.store.DiskCacheStore`
  content-addressed entry format over HTTP, and the client store that
  slots under :class:`~repro.core.cache.AllocationCache` as the third
  tier (memory → disk → remote).  Entries self-verify on the client, so
  a poisoned or stale server degrades to cache misses, never to wrong
  programs.
* :class:`Client` — the Python client of the daemon, with jittered
  retry on connection errors (never on compile errors).

The CLI exposes the two servers as ``repro serve`` and
``repro cache-server``; see ``docs/serving.md``.
"""

from .client import Client, ClientError, CompileRequestError, RemoteCompileResult
from .coalesce import CoalesceTimeout, SingleFlight
from .daemon import CompileDaemon
from .remote import CacheServer, RemoteCacheStore, RemoteStoreStats
from .wire import (
    WIRE_VERSION,
    WireFormatError,
    job_from_wire,
    job_to_wire,
    program_from_wire,
    program_to_wire,
    request_fingerprint,
)

__all__ = [
    "CacheServer",
    "Client",
    "ClientError",
    "CoalesceTimeout",
    "CompileDaemon",
    "CompileRequestError",
    "RemoteCacheStore",
    "RemoteCompileResult",
    "RemoteStoreStats",
    "SingleFlight",
    "WIRE_VERSION",
    "WireFormatError",
    "job_from_wire",
    "job_to_wire",
    "program_from_wire",
    "program_to_wire",
    "request_fingerprint",
]
