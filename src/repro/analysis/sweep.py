"""Compute/memory mode-ratio sweeps (Fig. 1(b) and Fig. 5(a)(b)).

These analyses answer the motivating question of the paper: *if a chip has
a fixed number of dual-mode arrays, what fraction should be in compute
mode for a given network?*  The sweep evaluates the analytical latency of
a model when the chip is statically split into ``r x N`` compute arrays
and ``(1 - r) x N`` memory arrays, and reports performance normalised to
the best split — the quantity plotted in Fig. 1(b); the 2-D variant over
(compute, memory) counts produces the Fig. 5(a)(b) heatmaps.

:func:`compiled_array_sweep` complements the analytical sweeps with a
full-compiler design-space exploration: the same graph is compiled for a
family of hardware variants with one shared allocation cache, so repeated
structural sub-problems are solved once across the whole sweep.  It is a
compatibility façade over :mod:`repro.dse` — the first-class DSE engine
with search strategies, resumable run directories and Pareto reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.cache import AllocationCache
from ..core.compiler import CompilerOptions
from ..cost.arithmetic import OperatorProfile, profile_graph
from ..cost.latency import OperatorAllocation, operator_latency_cycles  # noqa: F401  (re-exported for users)
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph



def _static_split_latency(
    profiles: Dict[str, OperatorProfile],
    compute_arrays: int,
    memory_arrays: int,
    hardware: DualModeHardwareAbstraction,
) -> float:
    """Steady-state latency of all operators under a static mode split.

    Every operator sees the full compute partition (weight duplication
    included) and the full memory partition as its on-chip buffer.  When an
    operator's stationary operand does not fit in the compute partition,
    the non-resident weights must stream from off-chip each invocation —
    unless the memory partition is large enough to cache them.  This is the
    quantity behind the paper's Fig. 1(b) / Fig. 5(a)(b) motivation plots:
    compute-heavy splits favour high-intensity CNNs, memory-heavy splits
    favour weight- and activation-bound generative transformers.
    """
    if compute_arrays <= 0:
        return float("inf")
    total = 0.0
    for profile in profiles.values():
        required = max(1, profile.min_compute_arrays(hardware))
        compute_time = (
            profile.macs / (compute_arrays * hardware.op_cim) if profile.macs else 0.0
        )
        nonresident_weights = profile.weight_elements if required > compute_arrays else 0
        onchip_capacity = (
            hardware.buffer_elements + memory_arrays * hardware.array_capacity_elements
        )
        input_side = profile.streamed_input_elements + profile.extra_streamed_elements
        offchip_elements = max(0, input_side + nonresident_weights - onchip_capacity)
        offchip_time = offchip_elements / hardware.d_extern
        onchip_rate = hardware.d_main + memory_arrays * hardware.d_cim
        onchip_time = profile.streamed_elements / onchip_rate
        total += max(compute_time, offchip_time, onchip_time)
    return total


@dataclass
class ModeRatioSweep:
    """Result of a compute-ratio sweep for one model.

    Attributes:
        model: Graph name.
        ratios: Fraction of arrays in compute mode for each sample.
        latencies: Total latency (cycles) at each ratio.
    """

    model: str
    ratios: List[float]
    latencies: List[float]

    @property
    def normalized_performance(self) -> List[float]:
        """Performance (1/latency) normalised to the best ratio (Fig. 1(b)).

        Raises:
            ValueError: If no sampled ratio has a finite latency.
        """
        finite = [lat for lat in self.latencies if np.isfinite(lat)]
        if not finite:
            raise ValueError(
                f"mode-ratio sweep of {self.model!r} has no feasible sample "
                "(every latency is non-finite)"
            )
        best = min(finite)
        return [best / lat if np.isfinite(lat) and lat > 0 else 0.0 for lat in self.latencies]

    @property
    def best_ratio(self) -> float:
        """Compute-mode ratio achieving the best performance.

        Non-finite samples (infeasible splits, NaN guards) are ignored.
        Ties break toward the *lowest* compute ratio: the same
        performance for fewer compute-mode arrays, mirroring
        :func:`repro.core.compiler.choose_plan`'s fewer-arrays tie rule.

        Raises:
            ValueError: If no sampled ratio has a finite latency.
        """
        best_ratio = None
        best_latency = np.inf
        for ratio, latency in zip(self.ratios, self.latencies):
            if not np.isfinite(latency):
                continue
            if latency < best_latency or (
                latency == best_latency and best_ratio is not None and ratio < best_ratio
            ):
                best_latency = latency
                best_ratio = ratio
        if best_ratio is None:
            raise ValueError(
                f"mode-ratio sweep of {self.model!r} has no feasible sample "
                "(every latency is non-finite)"
            )
        return best_ratio


def mode_ratio_sweep(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    ratios: Sequence[float] | None = None,
) -> ModeRatioSweep:
    """Sweep the fraction of arrays in compute mode (Fig. 1(b) curve)."""
    if ratios is None:
        ratios = [round(0.05 * i, 2) for i in range(1, 20)]
    profiles = profile_graph(graph)
    latencies = []
    for ratio in ratios:
        compute = max(1, int(round(ratio * hardware.num_arrays)))
        memory = hardware.num_arrays - compute
        latencies.append(_static_split_latency(profiles, compute, memory, hardware))
    repeat = float(graph.metadata.get("block_repeat", 1.0))
    return ModeRatioSweep(
        model=graph.name, ratios=list(ratios), latencies=[lat * repeat for lat in latencies]
    )


def mode_allocation_heatmap(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    grid_points: int = 11,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalised-performance heatmap over (compute, memory) array counts.

    Reproduces the Fig. 5(a)(b) heatmaps: the axes are the number of
    arrays in compute and memory mode (not necessarily summing to the chip
    total), the value is performance normalised to the best cell.

    Returns:
        ``(compute_counts, memory_counts, heatmap)`` where ``heatmap[i, j]``
        corresponds to ``compute_counts[i]`` and ``memory_counts[j]``.
    """
    profiles = profile_graph(graph)
    compute_counts = np.unique(
        np.linspace(1, hardware.num_arrays, grid_points).round().astype(int)
    )
    memory_counts = np.unique(
        np.linspace(0, hardware.num_arrays, grid_points).round().astype(int)
    )
    latency = np.full((len(compute_counts), len(memory_counts)), np.inf)
    for i, compute in enumerate(compute_counts):
        for j, memory in enumerate(memory_counts):
            if compute + memory > hardware.num_arrays:
                continue
            latency[i, j] = _static_split_latency(profiles, int(compute), int(memory), hardware)
    best = np.nanmin(latency[np.isfinite(latency)]) if np.isfinite(latency).any() else 1.0
    heatmap = np.where(np.isfinite(latency), best / latency, 0.0)
    return compute_counts, memory_counts, heatmap


def compiled_array_sweep(
    graph: Graph,
    base_hardware: DualModeHardwareAbstraction,
    array_counts: Sequence[int],
    cache: Optional[AllocationCache] = None,
    options: Optional[CompilerOptions] = None,
    cache_dir: Optional[str] = None,
) -> List[Dict]:
    """Compile ``graph`` for a family of array counts (DSE with a cache).

    This is the legacy array-count sweep, now a thin façade over
    :mod:`repro.dse`: the array counts become a one-axis
    :class:`~repro.dse.space.DesignSpace`, a grid-strategy
    :class:`~repro.dse.runner.DSERunner` evaluates it (structural
    duplicates collapse to one compile, warm points are scheduled
    first), and the records are rendered back into the historical row
    format.  With a ``cache_dir`` the reuse extends across processes and
    invocations — restarting a sweep, widening its range, or fanning
    design points out to worker processes re-pays nothing for the
    sub-problems any earlier run already solved.  For new code prefer
    :func:`repro.dse.run_dse`, which adds strategies, resumable run
    directories and Pareto reporting on top.

    Args:
        cache: Shared allocation cache (mutually exclusive with
            ``cache_dir``; a fresh one is created when both are omitted).
        cache_dir: Directory of a persistent
            :class:`~repro.core.store.DiskCacheStore` backing the cache.

    Returns:
        One row per array count (input order) with ``num_arrays``,
        ``feasible``, ``cycles``, ``ms``, ``num_segments``,
        ``allocator_solves`` and ``cache_hit_rate``.  A design point too
        small for the workload (the boundary a DSE sweep exists to find)
        is reported as an infeasible row (``cycles == inf``) rather than
        aborting the sweep.
    """
    from ..dse import DesignSpace, DSERunner

    if cache is not None and cache_dir is not None:
        raise ValueError("pass either cache or cache_dir, not both")
    space = DesignSpace(
        models=[graph],
        base_hardware=base_hardware,
        hardware_axes={"num_arrays": [int(count) for count in array_counts]},
        base_options=options or CompilerOptions(generate_code=False),
    )
    runner = DSERunner(
        space, strategy="grid", objective="latency", cache=cache, cache_dir=cache_dir
    )
    result = runner.run()
    by_coords = {record.coords: record for record in result.records}
    rows: List[Dict] = []
    for coords in space.coordinates():
        record = by_coords[coords]
        if record.failed and not (record.error or "").startswith("RuntimeError:"):
            # Historical contract: only NoFeasiblePlanError/RuntimeError
            # become infeasible rows; genuine bugs (TypeError from bad
            # options, a crashed worker) must propagate, not masquerade
            # as a too-small chip.
            raise RuntimeError(
                f"compiled_array_sweep failed at num_arrays="
                f"{record.num_arrays}: {record.error}"
            )
        solve_attempts = record.allocator_solves + record.cache_hits
        if record.status == "replicated":
            # Served entirely by a structurally identical point's result.
            hit_rate = 1.0
        else:
            hit_rate = record.cache_hits / solve_attempts if solve_attempts else 0.0
        rows.append(
            {
                "num_arrays": record.num_arrays,
                "feasible": record.feasible,
                "cycles": record.cycles if record.feasible else float("inf"),
                "ms": record.latency_ms if record.feasible else float("inf"),
                "num_segments": record.num_segments,
                "allocator_solves": record.allocator_solves,
                "cache_hit_rate": hit_rate,
            }
        )
    return rows
