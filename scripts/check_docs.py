#!/usr/bin/env python3
"""Run the shell snippets embedded in the documentation.

Keeps README.md and docs/*.md honest: every fenced ```bash block is
executed from the repository root and must exit 0, so a renamed flag, a
removed subcommand or a stale model name fails CI instead of shipping.

Conventions:

* Only ```bash fences are executed (```python blocks are compiled with
  ``compile()`` to catch syntax rot, not run).
* A fence immediately preceded (within two lines) by an HTML comment
  containing ``docs-check: skip`` is reported but not run — used for
  deliberately slow or environment-specific commands.
* ``repro`` resolves to the installed console script when present, and
  falls back to ``python -m repro.cli`` otherwise, so the checker works
  in a bare checkout with only ``PYTHONPATH=src``.

Usage::

    python scripts/check_docs.py               # README.md + docs/*.md
    python scripts/check_docs.py README.md     # specific files
    python scripts/check_docs.py --list        # show blocks, run nothing
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
SKIP_MARK = "docs-check: skip"
FENCE = re.compile(r"^```(\w*)\s*$")


def extract_blocks(path: Path) -> List[Tuple[int, str, str, bool]]:
    """Yield (line_number, language, code, skipped) per fenced block."""
    blocks = []
    lines = path.read_text(encoding="utf-8").splitlines()
    index = 0
    while index < len(lines):
        match = FENCE.match(lines[index])
        if not match or not match.group(1):
            index += 1
            continue
        language = match.group(1)
        start = index
        body: List[str] = []
        index += 1
        while index < len(lines) and lines[index].strip() != "```":
            body.append(lines[index])
            index += 1
        index += 1  # closing fence
        skipped = any(
            SKIP_MARK in lines[probe]
            for probe in range(max(0, start - 2), start)
        )
        blocks.append((start + 1, language, "\n".join(body), skipped))
    return blocks


def shim_path() -> str:
    """PATH with a `repro` shim prepended when the script is absent."""
    path = os.environ.get("PATH", "")
    if shutil.which("repro"):
        return path
    shim_dir = Path(tempfile.mkdtemp(prefix="repro-shim-"))
    shim = shim_dir / "repro"
    shim.write_text(
        f'#!/bin/sh\nexec "{sys.executable}" -m repro.cli "$@"\n', encoding="utf-8"
    )
    shim.chmod(0o755)
    return f"{shim_dir}{os.pathsep}{path}"


def run_bash(code: str, env: dict) -> int:
    proc = subprocess.run(
        ["bash", "-euo", "pipefail", "-c", code], cwd=REPO_ROOT, env=env
    )
    return proc.returncode


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("files", nargs="*", help="markdown files (default: README.md docs/*.md)")
    parser.add_argument("--list", action="store_true", help="list blocks without running")
    args = parser.parse_args(argv)

    files = [Path(f).resolve() for f in args.files] or [
        REPO_ROOT / "README.md",
        *sorted((REPO_ROOT / "docs").glob("*.md")),
    ]

    env = dict(os.environ)
    env["PATH"] = shim_path()
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    failures = 0
    for path in files:
        if not path.exists():
            print(f"MISSING {path}")
            failures += 1
            continue
        display = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
        for line, language, code, skipped in extract_blocks(path):
            label = f"{display}:{line} [{language}]"
            if skipped:
                print(f"SKIP    {label}")
                continue
            if args.list:
                print(f"BLOCK   {label}")
                continue
            if language == "python":
                try:
                    compile(code, str(path), "exec")
                    print(f"OK      {label} (syntax only)")
                except SyntaxError as exc:
                    print(f"FAIL    {label}: {exc}")
                    failures += 1
                continue
            if language != "bash":
                continue
            started = time.perf_counter()
            code_result = run_bash(code, env)
            elapsed = time.perf_counter() - started
            if code_result == 0:
                print(f"OK      {label} ({elapsed:.1f}s)")
            else:
                print(f"FAIL    {label} (exit {code_result})")
                failures += 1
    if failures:
        print(f"{failures} documentation block(s) failed")
        return 1
    print("all documentation blocks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
