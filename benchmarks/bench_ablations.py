"""Ablation benchmarks for the design choices called out in DESIGN.md.

Four ablations, each comparing full CMSwitch against a crippled variant on
a representative workload:

* **Segmentation** — DP segmentation vs. one-operator-per-segment.
* **Allocation** — MILP allocation vs. the greedy heuristic.
* **Switch-cost awareness** — charging vs. ignoring the Eq. 1 switch cost
  in the DP objective.
* **Duplication refinement** — weight duplication on vs. off.
"""

import pytest

from conftest import record

from repro.core import CMSwitchCompiler, CompilerOptions
from repro.experiments import encode_workload
from repro.hardware import dynaplasia
from repro.models import build_model


def _compile(chip, graph, **option_overrides):
    options = CompilerOptions(generate_code=False, **option_overrides)
    return CMSwitchCompiler(chip, options).compile(graph)


@pytest.fixture(scope="module")
def llama_graph():
    return build_model("llama2-7b", encode_workload("llama2-7b", 4, 64))


@pytest.fixture(scope="module")
def resnet_graph():
    return build_model("resnet18", encode_workload("resnet18", 1, 64))


@pytest.mark.benchmark(group="ablation")
def test_ablation_dp_segmentation(benchmark, chip, resnet_graph):
    """DP segmentation vs. per-operator segmentation."""

    def run():
        full = _compile(chip, resnet_graph)
        per_op = _compile(chip, resnet_graph, max_segment_operators=1)
        return {
            "dp_cycles": full.end_to_end_cycles,
            "per_operator_cycles": per_op.end_to_end_cycles,
            "benefit": per_op.end_to_end_cycles / full.end_to_end_cycles,
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, f"segmentation ablation: DP is {rows['benefit']:.2f}x better")
    assert rows["benefit"] >= 1.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_milp_vs_greedy_allocation(benchmark, chip, llama_graph):
    """MILP allocation vs. the greedy marginal-gain heuristic."""

    def run():
        milp = _compile(chip, llama_graph, use_milp=True)
        greedy = _compile(chip, llama_graph, use_milp=False)
        return {
            "milp_cycles": milp.end_to_end_cycles,
            "greedy_cycles": greedy.end_to_end_cycles,
            "benefit": greedy.end_to_end_cycles / milp.end_to_end_cycles,
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, f"allocation ablation: MILP is {rows['benefit']:.2f}x vs greedy")
    # The MILP should never be meaningfully worse than the heuristic.
    assert rows["benefit"] >= 0.97


@pytest.mark.benchmark(group="ablation")
def test_ablation_switch_cost_awareness(benchmark, chip, llama_graph):
    """Charging vs. ignoring the Eq. 1 mode-switch cost during the DP."""

    def run():
        aware = _compile(chip, llama_graph, include_switch_cost=True)
        blind = _compile(chip, llama_graph, include_switch_cost=False)
        return {
            "aware_cycles": aware.end_to_end_cycles,
            "blind_plan_cycles": blind.end_to_end_cycles,
            "aware_switch_share": aware.switch_overhead_fraction,
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(
        benchmark,
        rows,
        f"switch-cost ablation: aware plan spends {rows['aware_switch_share'] * 100:.2f}% on switches",
    )
    # With a 1-cycle switch the plans barely differ; the share stays tiny.
    assert rows["aware_switch_share"] <= 0.05


@pytest.mark.benchmark(group="ablation")
def test_ablation_weight_duplication(benchmark, chip, resnet_graph):
    """Weight-duplication refinement on vs. off."""

    def run():
        with_dup = _compile(chip, resnet_graph, refine=True)
        without = _compile(chip, resnet_graph, refine=False)
        return {
            "with_duplication_cycles": with_dup.end_to_end_cycles,
            "without_duplication_cycles": without.end_to_end_cycles,
            "benefit": without.end_to_end_cycles / with_dup.end_to_end_cycles,
        }

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    record(benchmark, rows, f"duplication ablation: refinement is {rows['benefit']:.2f}x better")
    assert rows["benefit"] >= 0.999
