"""Counters, gauges and histograms behind one registry.

The registry replaces nothing by force: the hand-rolled stats objects
(`CacheStats`, `DiskStoreStats`, `SolveMemo` counters, the pipeline's
`stats_payload`) stay bit-compatible, and when an enabled
:class:`MetricsRegistry` is threaded through, the same increments are
*mirrored* into named metrics so one report can answer "how many
allocator solves, split by tier, did this whole run do?" across
subsystems that never see each other's stats dicts.

Naming convention — dotted, lowercase, subsystem first::

    allocator.solves            allocator.splits.milp
    cache.memory.hits           cache.disk.hits
    memo.hits                   replay.queue_depth (histogram)

Disabled path: :data:`NULL_METRICS` hands out shared no-op instruments,
so call sites never branch.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
]

_HISTOGRAM_SAMPLE_CAP = 65536


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """Last-set value (queue depth now, cache entries now)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value


class Histogram:
    """Distribution summary with bounded raw-sample retention.

    Keeps count/total/min/max always; raw samples up to a cap so small
    runs (a replay trace, a DSE sweep) get exact percentiles without an
    unbounded-memory hazard on long-lived services.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_lock")

    def __init__(self, name: str, lock: threading.Lock) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            if len(self._samples) < _HISTOGRAM_SAMPLE_CAP:
                self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Exact percentile over retained samples (0 when empty)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        index = min(len(samples) - 1, max(0, round(q / 100.0 * (len(samples) - 1))))
        return samples[index]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Create-on-demand, thread-safe home for named instruments.

    One lock per registry (not per instrument): contention is trivial at
    the repo's scale and a single lock keeps ``to_dict`` snapshots
    consistent.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors ------------------------------------------ #
    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, self._lock)
        return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, self._lock)
        return instrument

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, self._lock)
        return instrument

    # -- one-shot conveniences ----------------------------------------- #
    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- reading ------------------------------------------------------- #
    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible snapshot of every instrument."""
        with self._lock:
            counters = {name: c.value for name, c in self._counters.items()}
            gauges = {name: g.value for name, g in self._gauges.items()}
            histogram_objs = dict(self._histograms)
        return {
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(gauges.items())),
            "histograms": {
                name: histogram_objs[name].summary() for name in sorted(histogram_objs)
            },
        }

    def render_table(self) -> str:
        """Fixed-width counter/gauge/histogram table for the profile report."""
        snapshot = self.to_dict()
        lines: List[str] = []
        counters = snapshot["counters"]
        gauges = snapshot["gauges"]
        histograms = snapshot["histograms"]
        if counters:
            width = max(len(name) for name in counters)
            lines.append("counters:")
            for name, value in counters.items():
                lines.append(f"  {name:<{width}}  {value}")
        if gauges:
            width = max(len(name) for name in gauges)
            lines.append("gauges:")
            for name, value in gauges.items():
                lines.append(f"  {name:<{width}}  {value:g}")
        if histograms:
            width = max(len(name) for name in histograms)
            lines.append("histograms:")
            for name, summary in histograms.items():
                lines.append(
                    f"  {name:<{width}}  n={summary['count']}"
                    f" mean={summary['mean']:.3f} min={summary['min']:g}"
                    f" max={summary['max']:g} p50={summary['p50']:g}"
                    f" p99={summary['p99']:g}"
                )
        if not lines:
            lines.append("(no metrics recorded)")
        return "\n".join(lines)


class _NullInstrument:
    """Shared sink for every disabled counter/gauge/histogram."""

    __slots__ = ()
    name = "null"
    value = 0
    count = 0
    total = 0.0
    min = None
    max = None
    mean = 0.0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def percentile(self, q: float) -> float:
        return 0.0

    def summary(self) -> Dict[str, float]:
        return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0, "p50": 0.0, "p99": 0.0}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetrics:
    """Disabled registry: hands out one shared no-op instrument."""

    enabled = False

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def to_dict(self) -> Dict[str, object]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render_table(self) -> str:
        return "(metrics disabled)"


NULL_METRICS = NullMetrics()
