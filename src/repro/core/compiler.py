"""CMSwitch compiler facade.

:class:`CMSwitchCompiler` is the public entry point of the library: it
takes a computation graph and a dual-mode hardware abstraction and runs
the full DACO pipeline of the paper —

1. flatten the graph and partition oversized operators,
2. dynamic-programming network segmentation with mode-switch awareness,
3. per-segment MIP allocation of compute / memory arrays with pipelined
   scheduling and weight-duplication refinement,
4. code generation into the dual-mode meta-operator flow (DMO).

The result is a :class:`~repro.core.program.CompiledProgram` that the
timing and functional simulators (and the benchmark harness) consume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from .codegen import generate_program
from .program import CompiledProgram
from .segmentation import NetworkSegmenter, SegmentationOptions


@dataclass
class CompilerOptions:
    """User-facing compilation options.

    Attributes:
        max_segment_operators: DP window — maximum operators per segment.
        pipelined: Pipeline operators within a segment (Eq. 9 objective).
        include_switch_cost: Charge the Eq. 1 mode-switch latency in the DP.
        use_milp: Use the MILP per-segment allocator (otherwise greedy).
        refine: Apply weight-duplication refinement after allocation.
        allow_memory_mode: Allow arrays in memory mode.  Setting this to
            False degenerates CMSwitch into a fixed-mode compiler and is
            used by baselines/ablations.
        fixed_mode_fallback: Also evaluate the fixed-mode (all-compute)
            plan and keep whichever is faster.  The dual-mode optimisation
            space strictly contains the fixed-mode space, so a production
            compiler never ships a plan worse than the fixed-mode one; the
            extra pass is part of CMSwitch's larger compilation time
            (Fig. 18).
        generate_code: Emit the meta-operator flow alongside the plan.
    """

    max_segment_operators: int = 8
    pipelined: bool = True
    include_switch_cost: bool = True
    use_milp: bool = True
    refine: bool = True
    allow_memory_mode: bool = True
    fixed_mode_fallback: bool = True
    generate_code: bool = True

    def to_segmentation_options(self) -> SegmentationOptions:
        """Translate to the segmentation pass options."""
        return SegmentationOptions(
            max_segment_operators=self.max_segment_operators,
            pipelined=self.pipelined,
            include_switch_cost=self.include_switch_cost,
            allow_memory_mode=self.allow_memory_mode,
            use_milp=self.use_milp,
            refine=self.refine,
        )


class CMSwitchCompiler:
    """Dual-mode-aware DNN compiler for CIM accelerators (the paper's tool).

    Args:
        hardware: Target dual-mode hardware abstraction (DEHA).
        options: Compilation options; defaults reproduce the paper's setup.

    Example:
        >>> from repro.hardware import dynaplasia
        >>> from repro.models import build_model, Workload
        >>> compiler = CMSwitchCompiler(dynaplasia())
        >>> program = compiler.compile(build_model("tiny-cnn", Workload()))
        >>> program.num_segments >= 1
        True
    """

    name = "cmswitch"

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        options: Optional[CompilerOptions] = None,
    ) -> None:
        self.hardware = hardware
        self.options = options or CompilerOptions()

    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile a graph into a dual-mode execution plan.

        Args:
            graph: The computation graph (typically from
                :func:`repro.models.build_model`).

        Returns:
            The compiled program with segment plans, predicted latency and,
            when ``generate_code`` is enabled, the meta-operator flow.
        """
        start = time.perf_counter()
        segmenter = NetworkSegmenter(self.hardware, self.options.to_segmentation_options())
        result = segmenter.segment(graph)
        fallback_used = False
        if self.options.allow_memory_mode and self.options.fixed_mode_fallback:
            fixed_options = self.options.to_segmentation_options()
            fixed_options.allow_memory_mode = False
            fixed_result = NetworkSegmenter(self.hardware, fixed_options).segment(graph)
            if fixed_result.total_cycles < result.total_cycles:
                result = fixed_result
                fallback_used = True
        meta_program = None
        if self.options.generate_code and result.segments:
            meta_program = generate_program(graph.name, result.segments, self.hardware)
        elapsed = time.perf_counter() - start
        block_repeat = float(graph.metadata.get("block_repeat", 1.0))
        program = CompiledProgram(
            graph_name=graph.name,
            compiler_name=self.name,
            hardware=self.hardware,
            segments=result.segments,
            block_repeat=block_repeat,
            compile_seconds=elapsed,
            metadata={
                "graph_metadata": dict(graph.metadata),
                "options": {
                    "max_segment_operators": self.options.max_segment_operators,
                    "pipelined": self.options.pipelined,
                    "include_switch_cost": self.options.include_switch_cost,
                    "use_milp": self.options.use_milp,
                    "refine": self.options.refine,
                    "allow_memory_mode": self.options.allow_memory_mode,
                },
                "num_flattened_units": len(result.units),
                "allocation_calls": result.allocation_calls,
                "dp_seconds": result.dp_seconds,
                "fixed_mode_fallback_used": fallback_used,
            },
            meta_program=meta_program,
        )
        return program


def compile_model(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    options: Optional[CompilerOptions] = None,
) -> CompiledProgram:
    """Convenience wrapper: compile ``graph`` with :class:`CMSwitchCompiler`."""
    return CMSwitchCompiler(hardware, options).compile(graph)
