"""The networked cache tier: cache server + remote store client.

:class:`~repro.core.store.DiskCacheStore` already made allocation-cache
entries transport-agnostic: content-addressed names (SHA-256 of the
canonical key), the full key payload stored *inside* each entry and
compared on read, versioned format, corruption degrading to a miss.
This module puts that format on the wire so worker fleets share one
warm cache **without a shared filesystem mount**:

* :class:`CacheServer` — a thin HTTP server over a ``DiskCacheStore``
  directory speaking ``GET/PUT/HEAD /entry/<digest>``.  It relays entry
  bytes verbatim and never interprets them; the only thing it enforces
  is the content-addressing invariant (a PUT whose key payload does not
  digest to its URL is refused), so no writer can poison somebody
  else's key.
* :class:`RemoteCacheStore` — the client, duck-typed to the parts of
  ``DiskCacheStore`` that :class:`~repro.core.cache.AllocationCache`
  consumes (``get`` / ``put`` / ``contains``), so it slots under the
  cache as the third tier: memory → disk → remote, miss fall-through,
  hit promotion, write-through.

**Trust model.**  Entries self-verify on the *client*: the key payload
inside a fetched entry must match the key being looked up, the format
version must match the client's, and the entry body must parse — the
same three checks the disk tier applies to its own files.  A corrupt,
stale-format or malicious server can therefore cause cache misses (cold
compiles), never wrong programs.  Network failures likewise degrade to
misses and are counted, never raised into a compile.
"""

from __future__ import annotations

import http.client
import json
import logging
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union
from urllib.parse import urlsplit

from ..core.store import (
    DiskCacheStore,
    FORMAT_VERSION,
    _key_payload,
    key_digest,
)
from ..obs.metrics import NULL_METRICS
from .httpbase import QuietHandler, ServingHTTPServer, read_body, respond_json, respond_text

__all__ = ["CacheServer", "RemoteCacheStore", "RemoteStoreStats"]

LOGGER = logging.getLogger("repro")

#: Size bound for relayed entries (an allocation entry is a few KB; this
#: is a hygiene limit against abusive writers, not a tuning knob).
MAX_ENTRY_BYTES = 4 * 1024 * 1024


@dataclass
class RemoteStoreStats:
    """Counters of one :class:`RemoteCacheStore` client.

    Attributes:
        hits: Fetches that returned a verified entry.
        misses: Fetches that found no usable entry (404s, rejected
            payloads and network failures all end here).
        stores: Entries written to the server.
        corrupt_entries: Fetched payloads that failed self-verification
            (garbled JSON, key mismatch, bad entry body).
        version_rejections: Fetched entries written by a different
            format version.
        errors: Network-level failures (connect/timeout/protocol), on
            either direction.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt_entries: int = 0
    version_rejections: int = 0
    errors: int = 0

    def snapshot(self) -> "RemoteStoreStats":
        """Independent copy of the counters."""
        return RemoteStoreStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            corrupt_entries=self.corrupt_entries,
            version_rejections=self.version_rejections,
            errors=self.errors,
        )

    def to_dict(self) -> Dict[str, int]:
        """Plain-dictionary rendering for reports and ``/metrics``."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt_entries": self.corrupt_entries,
            "version_rejections": self.version_rejections,
            "errors": self.errors,
        }


class RemoteCacheStore:
    """HTTP client of a :class:`CacheServer`, usable as a cache tier.

    Duck-typed to the store protocol
    :class:`~repro.core.cache.AllocationCache` consumes (``get`` /
    ``put`` / ``contains``), so ``AllocationCache(remote=...)`` composes
    it as the third tier behind memory and disk.  All failure modes —
    server down, timeout, corrupt or foreign payloads, version skew —
    degrade to cache misses and counters; no method ever raises into a
    compile.

    Connections are kept alive per thread (the cache is probed from
    compile-pool threads concurrently) and reopened transparently after
    network errors.

    Args:
        url: Base URL of the cache server, e.g. ``"http://cache:9123"``
            (http only; the serving tier is an internal protocol).
        timeout: Per-request socket timeout in seconds.  Kept small by
            default: a slow cache server should cost a miss, not stall
            a compile.
        metrics: Optional :class:`~repro.obs.MetricsRegistry`; counters
            are mirrored under ``remote.<counter>``.
    """

    def __init__(
        self,
        url: str,
        timeout: float = 5.0,
        metrics: Optional[object] = None,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"//{url}", scheme="http")
        if parts.scheme != "http":
            raise ValueError(
                f"unsupported cache-server scheme {parts.scheme!r} (http only)"
            )
        if not parts.hostname:
            raise ValueError(f"cache-server URL {url!r} has no host")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.timeout = timeout
        self.stats = RemoteStoreStats()
        self.metrics = NULL_METRICS if metrics is None else metrics
        self._lock = threading.Lock()
        self._local = threading.local()
        self._connections: List[http.client.HTTPConnection] = []
        self._closed = False

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
            with self._lock:
                self._connections.append(conn)
        return conn

    def _drop_connection(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._local.conn = None
            with self._lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Optional[http.client.HTTPResponse]:
        """One request with a single transparent retry on a dead keep-alive.

        Returns the (fully read) response, or None on a network failure
        (counted in ``stats.errors``).  HTTP error *statuses* are not
        failures at this layer — callers interpret them.
        """
        if self._closed:
            return None
        headers = {"Content-Type": "application/json"} if body is not None else {}
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                # Read eagerly so the connection is reusable immediately.
                response._cached_body = response.read()  # type: ignore[attr-defined]
                return response
            except (OSError, http.client.HTTPException):
                # A keep-alive connection the server closed looks like a
                # send/recv failure; retry once on a fresh socket before
                # declaring a network error.
                self._drop_connection()
                if attempt:
                    self._count("errors")
                    return None
        return None  # pragma: no cover - loop always returns

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        self.metrics.inc(f"remote.{counter}")

    def close(self) -> None:
        """Close every kept-alive connection (idempotent)."""
        self._closed = True
        with self._lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except Exception:  # noqa: BLE001 - best-effort cleanup
                pass

    # ------------------------------------------------------------------ #
    # store protocol (what AllocationCache consumes)
    # ------------------------------------------------------------------ #
    def get(self, key):
        """Fetch and self-verify the entry for ``key``, or None.

        Exactly the disk tier's read discipline, over HTTP: a missing
        entry, a garbled payload, a key mismatch (digest collision or a
        poisoned server) and a version mismatch are all misses with the
        corresponding counter bumped — never exceptions.
        """
        from ..core.cache import CacheEntry  # local import: cache imports store

        response = self._request("GET", f"/entry/{key_digest(key)}")
        if response is None:
            self._count("misses")
            return None
        data = response._cached_body  # type: ignore[attr-defined]
        if response.status == 404:
            self._count("misses")
            return None
        if response.status != 200:
            self._count("errors")
            self._count("misses")
            return None
        try:
            payload = json.loads(data.decode("utf-8"))
            version = payload["format_version"]
            if version != FORMAT_VERSION:
                self._count("version_rejections")
                self._count("misses")
                return None
            if payload["key"] != _key_payload(key):
                # A poisoned/misaddressed server answer: reject, miss.
                self._count("corrupt_entries")
                self._count("misses")
                return None
            entry = CacheEntry.from_payload(payload["entry"])
        except (UnicodeDecodeError, KeyError, TypeError, ValueError):
            self._count("corrupt_entries")
            self._count("misses")
            return None
        self._count("hits")
        return entry

    def put(self, key, entry) -> None:
        """Write ``entry`` through to the server (failures swallowed)."""
        payload = {
            "format_version": FORMAT_VERSION,
            "key": _key_payload(key),
            "entry": entry.to_payload(),
        }
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        response = self._request("PUT", f"/entry/{key_digest(key)}", body=body)
        if response is not None and response.status in (200, 201, 204):
            self._count("stores")

    def contains(self, key) -> bool:
        """Cheap existence probe (HEAD) — no stats side effects."""
        response = self._request("HEAD", f"/entry/{key_digest(key)}")
        return response is not None and response.status == 200

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def healthy(self) -> bool:
        """Whether the server answers its health endpoint."""
        response = self._request("GET", "/healthz")
        return response is not None and response.status == 200

    def describe(self) -> str:
        """One-line summary for logs."""
        return f"RemoteCacheStore({self.url})"


class CacheServer:
    """Thin HTTP server over one cache directory.

    Speaks three verbs on ``/entry/<digest>`` — GET (entry bytes or
    404), HEAD (existence), PUT (atomic publish; refused unless the
    payload's key digests to the URL) — plus ``/healthz``,
    ``/v1/cache/stats`` (JSON usage + counters) and ``/metrics``
    (text).  Storage *is* a :class:`~repro.core.store.DiskCacheStore`,
    so a cache directory can be served and mounted interchangeably, and
    ``repro cache`` maintenance (prune/clear) applies to served
    directories too.

    Args:
        cache_dir: Directory to serve (created on demand).
        host: Bind address (default loopback; bind 0.0.0.0 explicitly
            for fleet use).
        port: TCP port; 0 picks an ephemeral one (see ``bound_port``).
        max_bytes: Size budget of the underlying store.
    """

    def __init__(
        self,
        cache_dir: Union[str, Path],
        host: str = "127.0.0.1",
        port: int = 0,
        max_bytes: Optional[int] = None,
    ) -> None:
        store_kwargs = {} if max_bytes is None else {"max_bytes": max_bytes}
        self.store = DiskCacheStore(Path(cache_dir).expanduser(), **store_kwargs)
        self._served = {"get": 0, "put": 0, "head": 0, "rejected_puts": 0}
        self._served_lock = threading.Lock()
        server = self

        class Handler(QuietHandler):
            server_version = "repro-cache-server"

            def do_GET(self) -> None:  # noqa: N802 - stdlib casing
                server._handle_get(self, include_body=True)

            def do_HEAD(self) -> None:  # noqa: N802 - stdlib casing
                server._handle_get(self, include_body=False)

            def do_PUT(self) -> None:  # noqa: N802 - stdlib casing
                server._handle_put(self)

        self.httpd = ServingHTTPServer((host, port), Handler)
        self.host = host

    @property
    def bound_port(self) -> int:
        """The actual TCP port (meaningful when constructed with port 0)."""
        return self.httpd.bound_port

    @property
    def url(self) -> str:
        """Base URL clients should use."""
        return f"http://{self.host}:{self.bound_port}"

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    def _bump(self, counter: str) -> None:
        with self._served_lock:
            self._served[counter] += 1

    @staticmethod
    def _entry_digest(path: str) -> Optional[str]:
        parts = path.strip("/").split("/")
        if len(parts) == 2 and parts[0] == "entry":
            return parts[1]
        return None

    def _handle_get(self, handler: QuietHandler, include_body: bool) -> None:
        digest = self._entry_digest(handler.path)
        if digest is not None:
            verb = "get" if include_body else "head"
            if include_body:
                data = self.store.get_raw(digest)
                found = data is not None
            else:
                data = None
                found = self.store.has_entry(digest)
            self._bump(verb)
            if not found:
                respond_json(handler, 404, {"error": {"code": "not_found", "message": digest}})
                return
            if include_body:
                handler.send_response(200)
                handler.send_header("Content-Type", "application/json")
                handler.send_header("Content-Length", str(len(data)))
                handler.end_headers()
                try:
                    handler.wfile.write(data)
                except (BrokenPipeError, ConnectionResetError):
                    pass
            else:
                handler.send_response(200)
                handler.send_header("Content-Length", "0")
                handler.end_headers()
            return
        if handler.path == "/healthz":
            respond_json(handler, 200, {"status": "ok", "role": "cache-server"})
            return
        if handler.path == "/v1/cache/stats":
            with self._served_lock:
                served = dict(self._served)
            respond_json(
                handler,
                200,
                {
                    "usage": self.store.usage(),
                    "store": self.store.stats.snapshot().to_dict(),
                    "served": served,
                },
            )
            return
        if handler.path == "/metrics":
            respond_text(handler, 200, self.render_metrics())
            return
        respond_json(
            handler, 404, {"error": {"code": "not_found", "message": handler.path}}
        )

    def _handle_put(self, handler: QuietHandler) -> None:
        digest = self._entry_digest(handler.path)
        if digest is None:
            respond_json(
                handler, 404, {"error": {"code": "not_found", "message": handler.path}}
            )
            return
        body, failure = read_body(handler, max_bytes=MAX_ENTRY_BYTES)
        if failure is not None:
            status, message = failure
            respond_json(
                handler, status, {"error": {"code": "bad_request", "message": message}}
            )
            return
        if self.store.put_raw(digest, body):
            self._bump("put")
            respond_json(handler, 200, {"stored": True})
        else:
            self._bump("rejected_puts")
            respond_json(
                handler,
                400,
                {
                    "error": {
                        "code": "rejected_entry",
                        "message": (
                            "entry refused: payload must be JSON whose 'key' "
                            "digests to the URL digest"
                        ),
                    }
                },
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def render_metrics(self) -> str:
        """Text exposition of the server's counters (one ``name value`` per line)."""
        stats = self.store.stats.snapshot().to_dict()
        with self._served_lock:
            served = dict(self._served)
        usage = self.store.usage()
        lines = [
            f"cache_server_entries {int(usage['files'])}",
            f"cache_server_bytes {int(usage['bytes'])}",
        ]
        lines += [f"cache_server_served_{name} {value}" for name, value in sorted(served.items())]
        lines += [f"cache_server_store_{name} {value}" for name, value in sorted(stats.items())]
        return "\n".join(lines) + "\n"

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` is called."""
        LOGGER.info("cache server: %s serving %s", self.url, self.store.root)
        self.httpd.serve_forever()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread (tests and embedded use)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the accept loop and close the listening socket (idempotent)."""
        self.httpd.shutdown()
        self.httpd.server_close()
