"""Energy estimation for compiled dual-mode programs (extension).

The paper argues that dual-mode switching improves "performance and energy
efficiency" but reports latency only.  This module adds a first-order
energy model so compiled plans can also be compared on energy: every
activity the latency model accounts for (array MACs, array reads/writes,
native-buffer and off-chip transfers, mode switches) is assigned a
per-operation energy, and a compiled program's plan is integrated into an
:class:`EnergyReport`.

The default coefficients are representative of published CIM macros
(pJ-scale MAC and access energies, nJ-scale DRAM transfers); they are
deliberately exposed as a dataclass so studies can substitute their own
technology numbers.  As with latency, only *relative* comparisons between
compilers on the same coefficients are meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..hardware.deha import DualModeHardwareAbstraction


@dataclass(frozen=True)
class EnergyParameters:
    """Per-operation energy coefficients (picojoules).

    Attributes:
        mac_pj: Energy of one multiply-accumulate inside a compute-mode
            array (input DAC/driver, cell access and accumulation share).
        array_read_pj_per_element: Reading one element from a memory-mode
            CIM array.
        array_write_pj_per_element: Writing one element into an array
            (weight programming or memory-mode store).
        buffer_pj_per_element: Accessing one element of the native buffer.
        offchip_pj_per_element: Moving one element across the off-chip
            link (DRAM access plus interface energy).
        mode_switch_pj_per_array: Reconfiguring one array's drivers.
        leakage_pj_per_cycle: Chip-wide static energy per cycle.
    """

    mac_pj: float = 0.05
    array_read_pj_per_element: float = 0.5
    array_write_pj_per_element: float = 1.0
    buffer_pj_per_element: float = 0.8
    offchip_pj_per_element: float = 20.0
    mode_switch_pj_per_array: float = 2.0
    leakage_pj_per_cycle: float = 50.0

    def scaled_for(self, hardware: DualModeHardwareAbstraction) -> "EnergyParameters":
        """Adjust technology-dependent coefficients for a hardware preset.

        ReRAM-based chips (identified through ``write_energy_factor``) pay
        proportionally more per array write.
        """
        if hardware.write_energy_factor == 1.0:
            return self
        return replace(
            self,
            array_write_pj_per_element=self.array_write_pj_per_element
            * hardware.write_energy_factor,
        )


@dataclass
class EnergyReport:
    """Energy totals (picojoules) of one compiled program."""

    graph_name: str
    compute_pj: float = 0.0
    array_access_pj: float = 0.0
    weight_write_pj: float = 0.0
    buffer_pj: float = 0.0
    offchip_pj: float = 0.0
    mode_switch_pj: float = 0.0
    leakage_pj: float = 0.0
    block_repeat: float = 1.0

    @property
    def dynamic_pj(self) -> float:
        """Dynamic energy of one graph pass."""
        return (
            self.compute_pj
            + self.array_access_pj
            + self.weight_write_pj
            + self.buffer_pj
            + self.offchip_pj
            + self.mode_switch_pj
        )

    @property
    def total_pj(self) -> float:
        """Total energy of one graph pass (dynamic + leakage)."""
        return self.dynamic_pj + self.leakage_pj

    @property
    def end_to_end_mj(self) -> float:
        """End-to-end energy in millijoules (graph pass times block repeat)."""
        return self.total_pj * self.block_repeat * 1e-9

    def breakdown(self) -> Dict[str, float]:
        """Per-category energy of one graph pass (picojoules)."""
        return {
            "compute": self.compute_pj,
            "array_access": self.array_access_pj,
            "weight_write": self.weight_write_pj,
            "buffer": self.buffer_pj,
            "offchip": self.offchip_pj,
            "mode_switch": self.mode_switch_pj,
            "leakage": self.leakage_pj,
        }

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"energy for {self.graph_name}: {self.end_to_end_mj:.3f} mJ end-to-end "
            f"(off-chip share {100.0 * self.offchip_pj / self.total_pj if self.total_pj else 0.0:.1f} %)"
        )


def estimate_energy(
    program,
    hardware: Optional[DualModeHardwareAbstraction] = None,
    parameters: Optional[EnergyParameters] = None,
) -> EnergyReport:
    """Estimate the energy of a compiled program.

    The estimate walks the segment plans (it does not need the
    meta-operator flow): per operator, MAC energy plus streamed-data energy
    split between memory-mode arrays, the native buffer and the off-chip
    link using the same capacity rule as the latency model; per segment,
    weight-programming and mode-switch energy; chip leakage is charged for
    the predicted execution cycles.

    Args:
        program: A :class:`~repro.core.program.CompiledProgram`.
        hardware: Hardware abstraction; defaults to the program's.
        parameters: Energy coefficients; defaults scaled to the hardware.
    """
    hardware = hardware or program.hardware
    parameters = (parameters or EnergyParameters()).scaled_for(hardware)
    report = EnergyReport(graph_name=program.graph_name, block_repeat=program.block_repeat)

    for segment in program.segments:
        for name in segment.operator_names:
            profile = segment.profiles[name]
            allocation = segment.allocations[name]
            report.compute_pj += profile.macs * parameters.mac_pj

            streamed = profile.streamed_elements
            array_capacity = allocation.memory_arrays * hardware.array_capacity_elements
            in_arrays = min(streamed, array_capacity)
            remaining = streamed - in_arrays
            in_buffer = min(remaining, hardware.buffer_elements)
            offchip = remaining - in_buffer
            report.array_access_pj += in_arrays * parameters.array_read_pj_per_element
            report.buffer_pj += in_buffer * parameters.buffer_pj_per_element
            report.offchip_pj += offchip * parameters.offchip_pj_per_element

            if profile.has_static_weight:
                report.weight_write_pj += (
                    profile.weight_elements * parameters.array_write_pj_per_element
                )
                # Weights arrive from main memory once per segment execution.
                report.offchip_pj += profile.weight_elements * parameters.offchip_pj_per_element

        # Inter-segment write-back traffic (store + reload across the link).
        writeback_cycles = segment.inter_breakdown.get("writeback", 0.0)
        writeback_elements = writeback_cycles * hardware.d_extern / 2.0
        report.offchip_pj += 2.0 * writeback_elements * parameters.offchip_pj_per_element

        # Mode switches: count switched arrays from the aggregate plan.
        switch_cycles = segment.inter_breakdown.get("mode_switch", 0.0)
        per_switch = max(hardware.switch_latency_m2c, hardware.switch_latency_c2m, 1)
        report.mode_switch_pj += (
            switch_cycles / per_switch
        ) * parameters.mode_switch_pj_per_array

    report.leakage_pj = program.graph_cycles * parameters.leakage_pj_per_cycle
    return report


def compare_energy(programs: Dict[str, object], **kwargs) -> Dict[str, EnergyReport]:
    """Estimate energy for several compiled programs of the same graph."""
    return {name: estimate_energy(program, **kwargs) for name, program in programs.items()}
