"""Compilation-overhead study — Fig. 18 of the paper.

CMSwitch explores a strictly larger optimisation space than CIM-MLC (the
dual-mode dimension plus the fixed-mode fallback pass), so its compilation
takes a small multiple of CIM-MLC's time — the paper reports 2.8x–6.3x,
with CNNs costing more than transformers because transformer blocks are
compiled once and reused across layers.  This experiment measures both
compilers' wall-clock compilation time on the Fig. 14 benchmark set.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from ..baselines import CIMMLCCompiler
from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import build_model
from .common import FIG14_MODELS, encode_workload, format_table


def measure_compile_time(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG14_MODELS,
    batch_size: int = 1,
    seq_len: int = 64,
    repeats: int = 1,
) -> List[Dict]:
    """Measure CMSwitch and CIM-MLC compilation time per benchmark.

    Args:
        repeats: Number of compilations averaged per measurement (the
            paper uses 20; benchmarks here default to 1 for speed).

    Returns one row per model with both times and their ratio.
    """
    hardware = hardware or dynaplasia()
    rows: List[Dict] = []
    for model in models:
        workload = encode_workload(model, batch_size, seq_len)
        graph = build_model(model, workload)
        cms_time = _time_compiler(
            lambda: CMSwitchCompiler(hardware, CompilerOptions(generate_code=False)), graph, repeats
        )
        mlc_time = _time_compiler(lambda: CIMMLCCompiler(hardware), graph, repeats)
        rows.append(
            {
                "model": model,
                "cmswitch_seconds": cms_time,
                "cim-mlc_seconds": mlc_time,
                "overhead_ratio": cms_time / mlc_time if mlc_time > 0 else float("inf"),
            }
        )
    return rows


def _time_compiler(factory, graph, repeats: int) -> float:
    """Average wall-clock compile time over ``repeats`` fresh compilers."""
    total = 0.0
    for _ in range(max(1, repeats)):
        compiler = factory()
        start = time.perf_counter()
        compiler.compile(graph)
        total += time.perf_counter() - start
    return total / max(1, repeats)


def render_report(rows: Sequence[Dict]) -> str:
    """Text rendering of the Fig. 18 compilation-time comparison."""
    columns = ["model", "cmswitch_seconds", "cim-mlc_seconds", "overhead_ratio"]
    return format_table(rows, columns)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print the Fig. 18 reproduction."""
    print(render_report(measure_compile_time()))


if __name__ == "__main__":  # pragma: no cover
    main()
