"""Arithmetic-intensity analyses (Figs. 5(c), 6(a) and 6(b) of the paper).

Arithmetic intensity — operations per element of data moved — is what
decides whether a workload wants compute-mode or memory-mode arrays.  The
paper motivates the dual-mode compiler with three observations that these
functions reproduce:

* different networks have very different average intensities (Fig. 5(c)),
* layers within one network differ wildly (Fig. 6(a), ResNet-50),
* the same transformer's intensity scales with sequence length and differs
  between its computation stages (Fig. 6(b), BERT-large).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..cost.arithmetic import profile_graph
from ..ir.graph import Graph
from ..models.registry import build_model
from ..models.workload import Phase, Workload


@dataclass(frozen=True)
class LayerIntensity:
    """Arithmetic intensity of one CIM-mappable operator."""

    operator: str
    op_type: str
    macs: int
    moved_elements: int
    intensity: float


def model_arithmetic_intensity(graph: Graph) -> float:
    """Average arithmetic intensity of a model (FLOPs per element moved).

    This is the Fig. 5(c) metric: total FLOPs over total data movement
    including weights — large-language-model weights dominate the
    denominator, which is why their intensity is around 2 while CNNs reach
    the hundreds.
    """
    profiles = profile_graph(graph)
    flops = sum(p.flops for p in profiles.values())
    moved = sum(p.streamed_elements + p.weight_elements for p in profiles.values())
    return flops / moved if moved else 0.0


def layerwise_intensity(graph: Graph) -> List[LayerIntensity]:
    """Per-operator arithmetic intensity (Fig. 6(a) style)."""
    profiles = profile_graph(graph)
    rows: List[LayerIntensity] = []
    for name, profile in profiles.items():
        moved = profile.streamed_elements + profile.weight_elements
        rows.append(
            LayerIntensity(
                operator=name,
                op_type=profile.op_type,
                macs=profile.macs,
                moved_elements=moved,
                intensity=profile.flops / moved if moved else 0.0,
            )
        )
    return rows


#: Operator-name fragments mapping transformer operators onto the stage
#: categories of Fig. 6(b).
_STAGE_PATTERNS = {
    "MHA (QKV)": ("_q_proj", "_k_proj", "_v_proj", "_qk", "_sv"),
    "MHA (FC)": ("_o_proj",),
    "FFN (FC)": ("_ffn_",),
}


def stage_of(operator_name: str) -> str:
    """Fig. 6(b) stage category of a transformer operator."""
    for stage, patterns in _STAGE_PATTERNS.items():
        if any(pattern in operator_name for pattern in patterns):
            return stage
    return "Other"


def transformer_stage_intensity(graph: Graph) -> Dict[str, float]:
    """Arithmetic intensity per computation stage of a transformer block."""
    profiles = profile_graph(graph)
    flops: Dict[str, float] = {}
    moved: Dict[str, float] = {}
    for name, profile in profiles.items():
        stage = stage_of(name)
        flops[stage] = flops.get(stage, 0.0) + profile.flops
        moved[stage] = moved.get(stage, 0.0) + profile.streamed_elements + profile.weight_elements
    return {stage: (flops[stage] / moved[stage] if moved[stage] else 0.0) for stage in flops}


def intensity_vs_sequence_length(
    model: str,
    sequence_lengths: Sequence[int],
    batch_size: int = 1,
    phase: Phase = Phase.ENCODE,
) -> Dict[int, Dict[str, float]]:
    """Stage intensity of a transformer across sequence lengths (Fig. 6(b)).

    Returns:
        Mapping ``seq_len -> {stage -> intensity, "model" -> average}``.
    """
    results: Dict[int, Dict[str, float]] = {}
    for seq_len in sequence_lengths:
        workload = Workload(batch_size=batch_size, seq_len=seq_len, phase=phase)
        graph = build_model(model, workload)
        stages = transformer_stage_intensity(graph)
        stages["model"] = model_arithmetic_intensity(graph)
        results[seq_len] = stages
    return results


def model_intensity_comparison(
    models: Sequence[str], workload: Workload | None = None
) -> Dict[str, float]:
    """Average arithmetic intensity of several models (Fig. 5(c)).

    Raises:
        ValueError: If ``models`` is empty — an empty comparison is
            always a caller bug (a mistyped flag, an empty sweep list)
            and silently returning ``{}`` hides it.
    """
    if not models:
        raise ValueError("model_intensity_comparison requires at least one model name")
    workload = workload or Workload(batch_size=1, seq_len=64)
    comparison: Dict[str, float] = {}
    for name in models:
        phase = Phase.DECODE if name.startswith(("llama", "opt", "gpt")) else Phase.ENCODE
        graph = build_model(name, Workload(
            batch_size=workload.batch_size, seq_len=workload.seq_len, phase=phase
        ))
        comparison[name] = model_arithmetic_intensity(graph)
    return comparison
