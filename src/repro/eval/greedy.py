"""Mid-fidelity evaluation: the full pipeline with the greedy allocator.

:class:`GreedyEvaluator` runs every pass the compile tier runs — DP
segmentation, fixed-mode fallback arbitration, refinement accounting —
but swaps the per-segment MILP allocator for the greedy one
(``use_milp=False``), so a candidate is scored by a *real, executable
plan* without paying for a single MILP solve.  That places it between
the rungs the package already has:

* unlike the ``analytical`` tier its metrics come from a concrete plan
  (segment boundaries, mode assignments, inter-segment costs all
  materialised), so candidate rankings reflect the actual plan
  structure, not a closed-form floor;
* unlike the ``compile`` tier its plan is heuristic: the greedy
  allocator can (and on contended segments does) pick worse array
  splits than the MILP optimum, so greedy metrics are **not a bound in
  either direction** on the compile-tier cost.  They are an estimate —
  typically within a few percent, occasionally not — which is exactly
  the trust level a middle successive-halving rung needs: cheap enough
  to score many candidates, faithful enough to rank them.

Because the allocation cache and the per-run solve memo key on the
engine (``"greedy"`` vs ``"milp"``), greedy evaluations never pollute
MILP cache entries and vice versa; a candidate promoted from this rung
to ``compile`` fidelity starts its MILP solves from whatever the run
has already warmed, exactly as if the greedy rung had not run.
"""

from __future__ import annotations

from dataclasses import replace as dc_replace
from typing import List, Optional, Sequence

from ..core.compiler import CompilerOptions
from ..service import CompileJob, CompileService
from .base import Evaluation, Evaluator
from .compiled import evaluation_from_outcome

__all__ = ["GreedyEvaluator"]


class GreedyEvaluator(Evaluator):
    """Evaluates via the full pipeline with the greedy (no-MILP) allocator.

    Args:
        service: The compile service jobs run through; its cache,
            backend and pool width govern every evaluation, exactly as
            for :class:`~repro.eval.compiled.CompileEvaluator`.
    """

    fidelity = "greedy"

    def __init__(self, service: Optional[CompileService] = None) -> None:
        self.service = service if service is not None else CompileService()

    @staticmethod
    def _greedy_job(job: CompileJob) -> CompileJob:
        """The same job with the MILP allocator forced off.

        Code generation is also disabled — rung metrics never need the
        meta-operator flow, and the compile tier regenerates it anyway
        for whichever candidates survive.
        """
        options = job.options or CompilerOptions(generate_code=False)
        return dc_replace(
            job, options=dc_replace(options, use_milp=False, generate_code=False)
        )

    def evaluate(self, job: CompileJob) -> Evaluation:
        outcome = self.service.compile(self._greedy_job(job))
        return evaluation_from_outcome(outcome, self.fidelity)

    def evaluate_batch(
        self,
        jobs: Sequence[CompileJob],
        warm_hints: Optional[Sequence[bool]] = None,
    ) -> List[Evaluation]:
        """Run the batch through the service's worker pool."""
        del warm_hints  # greedy evaluation is cheap warm or cold alike
        outcomes = self.service.compile_batch(
            [self._greedy_job(job) for job in jobs]
        )
        return [
            evaluation_from_outcome(outcome, self.fidelity) for outcome in outcomes
        ]
