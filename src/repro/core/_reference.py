"""Frozen pre-pipeline compile paths — the parity oracles.

This module preserves, verbatim, the *fused* compile loops that
:class:`~repro.core.compiler.CMSwitchCompiler` and
:class:`~repro.baselines.base.BaselineCompiler` ran before the compile
path was decomposed into the named passes of :mod:`repro.pipeline`.
The parity test suite compiles every model through both the pass-based
pipeline and these references and asserts the programs are bit-identical
(:meth:`~repro.core.program.CompiledProgram.fingerprint`), which is what
lets the pipeline refactor claim "same compiler, new shape".

Nothing outside the tests should import this module.  It intentionally
calls the same primitives the passes call (segmenter, allocators, cost
model, code generator) — the point of the oracle is to prove that
*re-ordering and splitting* the orchestration changed nothing, not to
duplicate the numerics.
"""

from __future__ import annotations

import math
import time
from typing import List, Optional

from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph
from .cache import AllocationCache
from .codegen import generate_program
from .program import CompiledProgram, SegmentPlan
from .segmentation import NetworkSegmenter, NoFeasiblePlanError


def reference_compile(
    graph: Graph,
    hardware: DualModeHardwareAbstraction,
    options=None,
    cache: Optional[AllocationCache] = None,
) -> CompiledProgram:
    """The pre-refactor ``CMSwitchCompiler.compile`` body, frozen.

    Dual-mode segmentation, optional fixed-mode fallback pass,
    ``choose_plan`` arbitration, feasibility check, code generation —
    all in one fused function, exactly as the compiler ran it before
    :mod:`repro.pipeline` existed.
    """
    from .compiler import CompilerOptions, choose_plan, plan_cost

    options = options or CompilerOptions()
    start = time.perf_counter()
    segmenter = NetworkSegmenter(
        hardware, options.to_segmentation_options(), cache=cache
    )
    result = segmenter.segment(graph)
    fallback_used = False
    allocation_calls = result.allocation_calls
    cache_hits = result.cache_hits
    disk_hits = result.disk_hits
    if options.allow_memory_mode and options.fixed_mode_fallback:
        fixed_options = options.to_segmentation_options()
        fixed_options.allow_memory_mode = False
        try:
            fixed_result = NetworkSegmenter(
                hardware, fixed_options, cache=cache
            ).segment(graph)
        except NoFeasiblePlanError as exc:
            allocation_calls += exc.stats.get("allocator_solves", 0)
            cache_hits += exc.stats.get("allocation_cache_hits", 0)
            disk_hits += exc.stats.get("allocation_disk_hits", 0)
        else:
            allocation_calls += fixed_result.allocation_calls
            cache_hits += fixed_result.cache_hits
            disk_hits += fixed_result.disk_hits
            result, fallback_used = choose_plan(result, fixed_result)
    final_cost = plan_cost(result)
    if result.segments and not math.isfinite(final_cost):
        attempts = allocation_calls + cache_hits
        raise NoFeasiblePlanError(
            f"no feasible execution plan for graph {graph.name!r} on "
            f"{hardware.name!r}: every evaluated plan has infinite cost",
            stats={
                "allocator_solves": allocation_calls,
                "allocation_cache_hits": cache_hits,
                "allocation_disk_hits": disk_hits,
                "allocation_cache_hit_rate": (
                    cache_hits / attempts if attempts else 0.0
                ),
                "wall_seconds": time.perf_counter() - start,
            },
        )
    meta_program = None
    if options.generate_code and result.segments:
        meta_program = generate_program(graph.name, result.segments, hardware)
    elapsed = time.perf_counter() - start
    block_repeat = float(graph.metadata.get("block_repeat", 1.0))
    solve_attempts = allocation_calls + cache_hits
    stats = {
        "allocator_solves": allocation_calls,
        "allocation_cache_hits": cache_hits,
        "allocation_disk_hits": disk_hits,
        "allocation_cache_hit_rate": (
            cache_hits / solve_attempts if solve_attempts else 0.0
        ),
        "wall_seconds": elapsed,
    }
    return CompiledProgram(
        graph_name=graph.name,
        compiler_name="cmswitch",
        hardware=hardware,
        segments=result.segments,
        block_repeat=block_repeat,
        compile_seconds=elapsed,
        metadata={
            "graph_metadata": dict(graph.metadata),
            "options": {
                "max_segment_operators": options.max_segment_operators,
                "pipelined": options.pipelined,
                "include_switch_cost": options.include_switch_cost,
                "use_milp": options.use_milp,
                "refine": options.refine,
                "allow_memory_mode": options.allow_memory_mode,
            },
            "num_flattened_units": len(result.units),
            "allocation_calls": allocation_calls,
            "dp_seconds": result.dp_seconds,
            "fixed_mode_fallback_used": fallback_used,
        },
        stats=stats,
        meta_program=meta_program,
    )


def reference_baseline_compile(baseline, graph: Graph) -> CompiledProgram:
    """The pre-refactor ``BaselineCompiler.compile`` body, frozen.

    ``baseline`` is a live PUMA/OCC/CIM-MLC-style instance — its
    ``segment_boundaries`` and ``allocate`` strategy hooks are invoked
    exactly as the fused loop invoked them.
    """
    from ..cost.latency import segment_latency_cycles
    from ..cost.switching import (
        SegmentResources,
        aggregate_resources,
        inter_segment_breakdown,
    )
    from .segmentation import flatten_graph, live_elements_at_boundary

    hardware = baseline.hardware
    start = time.perf_counter()
    units = flatten_graph(graph, hardware)
    groups = baseline.segment_boundaries(units) if units else []
    segments: List[SegmentPlan] = []
    previous_resources: Optional[SegmentResources] = None
    for seg_index, indices in enumerate(groups):
        members = [units[i] for i in indices]
        profiles = {unit.name: unit.profile for unit in members}
        allocations = baseline.allocate(profiles)
        intra = segment_latency_cycles(
            profiles, allocations, hardware, pipelined=baseline.pipelined
        )
        boundary = indices[-1]
        live = (
            live_elements_at_boundary(units, boundary)
            if boundary + 1 < len(units)
            else 0
        )
        resources = aggregate_resources(
            profiles,
            allocations,
            live_output_elements=live,
            num_arrays_total=hardware.num_arrays,
        )
        breakdown = inter_segment_breakdown(
            previous_resources,
            resources,
            profiles,
            allocations,
            hardware,
            allow_boundary_buffering=False,
        )
        segments.append(
            SegmentPlan(
                index=seg_index,
                operator_names=[unit.name for unit in members],
                allocations=allocations,
                profiles=profiles,
                intra_cycles=intra,
                inter_cycles=sum(breakdown.values()),
                inter_breakdown=breakdown,
                resources=resources,
            )
        )
        previous_resources = resources
    meta_program = None
    if baseline.generate_code and segments:
        meta_program = generate_program(graph.name, segments, hardware)
    elapsed = time.perf_counter() - start
    return CompiledProgram(
        graph_name=graph.name,
        compiler_name=baseline.name,
        hardware=hardware,
        segments=segments,
        block_repeat=float(graph.metadata.get("block_repeat", 1.0)),
        compile_seconds=elapsed,
        metadata={"graph_metadata": dict(graph.metadata)},
        meta_program=meta_program,
    )
