"""ResNet image classifiers (He et al., 2016).

ResNet-18 (basic blocks) is part of the end-to-end benchmark set
(Fig. 14); ResNet-50 (bottleneck blocks) drives the motivation studies on
arithmetic intensity and compute/memory preference (Figs. 1(b), 5, 6(a)).
The graphs are built at ImageNet resolution with batch-norm folded as a
separate normalisation operator after every convolution, matching what an
ONNX export of the torchvision models contains.
"""

from __future__ import annotations

from typing import List, Sequence

from ...ir.builder import GraphBuilder
from ...ir.graph import Graph
from ...ir.tensor import DataType, TensorSpec
from ..workload import Workload


def _stem(builder: GraphBuilder, x: TensorSpec) -> TensorSpec:
    """7x7 stride-2 stem convolution followed by 3x3 max-pooling."""
    x = builder.conv2d(x, 64, kernel=7, stride=2, padding=3, name="stem_conv")
    x = builder.batchnorm(x, name="stem_bn")
    x = builder.relu(x, name="stem_relu")
    return builder.pool2d(x, kernel=3, stride=2, padding=1, mode="max", name="stem_pool")


def _basic_block(
    builder: GraphBuilder,
    x: TensorSpec,
    out_channels: int,
    stride: int,
    name: str,
) -> TensorSpec:
    """ResNet-18/34 basic block: two 3x3 convolutions plus a shortcut."""
    identity = x
    y = builder.conv2d(x, out_channels, kernel=3, stride=stride, padding=1, name=f"{name}_conv1")
    y = builder.batchnorm(y, name=f"{name}_bn1")
    y = builder.relu(y, name=f"{name}_relu1")
    y = builder.conv2d(y, out_channels, kernel=3, stride=1, padding=1, name=f"{name}_conv2")
    y = builder.batchnorm(y, name=f"{name}_bn2")
    if stride != 1 or x.shape[1] != out_channels:
        identity = builder.conv2d(
            x, out_channels, kernel=1, stride=stride, padding=0, name=f"{name}_downsample"
        )
        identity = builder.batchnorm(identity, name=f"{name}_downsample_bn")
    y = builder.add(y, identity, name=f"{name}_residual")
    return builder.relu(y, name=f"{name}_relu2")


def _bottleneck_block(
    builder: GraphBuilder,
    x: TensorSpec,
    mid_channels: int,
    stride: int,
    name: str,
) -> TensorSpec:
    """ResNet-50 bottleneck block: 1x1 reduce, 3x3, 1x1 expand (4x)."""
    out_channels = mid_channels * 4
    identity = x
    y = builder.conv2d(x, mid_channels, kernel=1, stride=1, padding=0, name=f"{name}_conv1")
    y = builder.batchnorm(y, name=f"{name}_bn1")
    y = builder.relu(y, name=f"{name}_relu1")
    y = builder.conv2d(y, mid_channels, kernel=3, stride=stride, padding=1, name=f"{name}_conv2")
    y = builder.batchnorm(y, name=f"{name}_bn2")
    y = builder.relu(y, name=f"{name}_relu2")
    y = builder.conv2d(y, out_channels, kernel=1, stride=1, padding=0, name=f"{name}_conv3")
    y = builder.batchnorm(y, name=f"{name}_bn3")
    if stride != 1 or x.shape[1] != out_channels:
        identity = builder.conv2d(
            x, out_channels, kernel=1, stride=stride, padding=0, name=f"{name}_downsample"
        )
        identity = builder.batchnorm(identity, name=f"{name}_downsample_bn")
    y = builder.add(y, identity, name=f"{name}_residual")
    return builder.relu(y, name=f"{name}_relu3")


def _build_resnet(
    name: str,
    workload: Workload,
    stage_blocks: Sequence[int],
    bottleneck: bool,
    dtype: DataType,
) -> Graph:
    """Assemble a ResNet graph with the requested stage configuration."""
    builder = GraphBuilder(name, dtype=dtype)
    x = builder.input("image", (workload.batch_size, 3, workload.image_size, workload.image_size))
    x = _stem(builder, x)
    stage_channels = (64, 128, 256, 512)
    for stage_index, (blocks, channels) in enumerate(zip(stage_blocks, stage_channels)):
        for block_index in range(blocks):
            stride = 2 if (stage_index > 0 and block_index == 0) else 1
            block_name = f"stage{stage_index + 1}_block{block_index + 1}"
            if bottleneck:
                x = _bottleneck_block(builder, x, channels, stride, block_name)
            else:
                x = _basic_block(builder, x, channels, stride, block_name)
    x = builder.global_avg_pool(x, name="gap")
    x = builder.linear(x, 1000, name="classifier")
    builder.output(x)
    graph = builder.finish()
    graph.metadata.update(
        {
            "family": "cnn",
            "model": name,
            "batch_size": workload.batch_size,
            "image_size": workload.image_size,
            "block_repeat": 1.0,
        }
    )
    return graph


def build_resnet18(workload: Workload, dtype: DataType = DataType.INT8) -> Graph:
    """Build ResNet-18 at ImageNet resolution."""
    return _build_resnet("resnet18", workload, (2, 2, 2, 2), bottleneck=False, dtype=dtype)


def build_resnet50(workload: Workload, dtype: DataType = DataType.INT8) -> Graph:
    """Build ResNet-50 at ImageNet resolution."""
    return _build_resnet("resnet50", workload, (3, 4, 6, 3), bottleneck=True, dtype=dtype)
