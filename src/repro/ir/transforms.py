"""Graph-level transforms used by the compilation front end.

Two transforms matter to the dual-mode compiler:

* :func:`partition_operator` — splits a CIM-mappable operator whose
  stationary matrix does not fit on the chip into sub-operators that do
  (the greedy partitioning step described in §4.3.1 of the paper).
* :func:`tile_counts` / :func:`arrays_for_stationary` — the basic tiling
  arithmetic shared by the compiler and the baselines: how many
  ``array_size_h x array_size_w`` arrays a ``K x N`` matrix occupies.

Both operate purely on metadata; the functional simulator performs the
corresponding tensor slicing when it executes sub-operators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .graph import Graph
from .operators import MatMulLike, MatmulDims, Operator
from .tensor import TensorSpec


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def tile_counts(dims: MatmulDims, array_rows: int, array_cols: int) -> Tuple[int, int]:
    """Number of array tiles along K (rows) and N (columns).

    The stationary ``K x N`` matrix is cut into ``ceil(K/rows) x
    ceil(N/cols)`` tiles, each mapped onto one CIM array.
    """
    return ceil_div(dims.k, array_rows), ceil_div(dims.n, array_cols)


def arrays_for_stationary(dims: MatmulDims, array_rows: int, array_cols: int) -> int:
    """Minimum number of compute-mode arrays that hold the stationary matrix."""
    tiles_k, tiles_n = tile_counts(dims, array_rows, array_cols)
    return tiles_k * tiles_n


def arrays_for_elements(num_elements: int, array_rows: int, array_cols: int) -> int:
    """Number of memory-mode arrays needed to buffer ``num_elements`` values.

    A memory-mode array stores ``rows x cols`` elements (8-bit cells storing
    8-bit values in the DynaPlasia-style configuration).
    """
    capacity = array_rows * array_cols
    return ceil_div(max(num_elements, 0), capacity) if num_elements > 0 else 0


@dataclass(frozen=True)
class SubOperator:
    """A shard of a CIM-mappable operator produced by partitioning.

    Attributes:
        operator: The shard, itself a normal CIM-mappable operator.
        parent: Name of the original operator.
        index: Shard index within the parent (execution order).
        total: Total number of shards of the parent.
        k_range: Half-open slice of the K dimension covered by this shard.
        n_range: Half-open slice of the N dimension covered by this shard.
    """

    operator: Operator
    parent: str
    index: int
    total: int
    k_range: Tuple[int, int]
    n_range: Tuple[int, int]

    @property
    def is_partial_sum(self) -> bool:
        """Whether the shard produces partial sums that must be accumulated.

        Shards that split the K (reduction) dimension produce partial
        results; shards that only split N produce disjoint output columns.
        """
        return int(self.operator.attrs.get("k_splits", 1)) > 1


def partition_operator(
    op: Operator,
    max_stationary_elements: int,
    array_rows: int,
    array_cols: int,
) -> List[SubOperator]:
    """Greedily split an operator so every shard's stationary matrix fits.

    The paper partitions operators "with the partition granularity
    determined by the available on-chip resources" so that "each resulting
    sub-operator can be fully mapped onto the chip".  We split the
    stationary ``K x N`` matrix first along N (output columns, which
    produces independent shards) and then along K (reduction, which
    produces partial-sum shards), always in multiples of the array tile
    size so no array is fragmented.

    Args:
        op: A CIM-mappable operator.
        max_stationary_elements: Capacity budget (elements) for one shard's
            stationary matrix — typically ``available_arrays * rows * cols``.
        array_rows: CIM array row count.
        array_cols: CIM array column count.

    Returns:
        The list of shards in execution order.  If the operator already
        fits, a single shard covering the whole operator is returned.

    Raises:
        ValueError: If the operator is not CIM-mappable or the budget is
            smaller than a single array tile.
    """
    if not op.is_cim_mappable:
        raise ValueError(f"cannot partition non-mappable operator {op.name!r}")
    if max_stationary_elements < array_rows * array_cols:
        raise ValueError(
            "partition budget smaller than a single CIM array "
            f"({max_stationary_elements} < {array_rows * array_cols})"
        )
    dims = op.matmul_dims()
    if dims.stationary_elements <= max_stationary_elements:
        return [
            SubOperator(
                operator=op,
                parent=op.name,
                index=0,
                total=1,
                k_range=(0, dims.k),
                n_range=(0, dims.n),
            )
        ]

    # How many whole array tiles fit in the budget.
    budget_tiles = max(1, max_stationary_elements // (array_rows * array_cols))
    tiles_k, tiles_n = tile_counts(dims, array_rows, array_cols)

    # Prefer splitting along N: shards own disjoint output columns.
    tiles_n_per_shard = min(tiles_n, budget_tiles)
    tiles_k_per_shard = max(1, min(tiles_k, budget_tiles // tiles_n_per_shard))

    n_per_shard = min(dims.n, tiles_n_per_shard * array_cols)
    k_per_shard = min(dims.k, tiles_k_per_shard * array_rows)

    shards: List[SubOperator] = []
    n_splits = ceil_div(dims.n, n_per_shard)
    k_splits = ceil_div(dims.k, k_per_shard)
    total = n_splits * k_splits
    index = 0
    for ni in range(n_splits):
        n_lo = ni * n_per_shard
        n_hi = min(dims.n, n_lo + n_per_shard)
        for ki in range(k_splits):
            k_lo = ki * k_per_shard
            k_hi = min(dims.k, k_lo + k_per_shard)
            shard_op = _make_shard(
                op, dims, index, total, (k_lo, k_hi), (n_lo, n_hi), k_splits, n_splits
            )
            shards.append(
                SubOperator(
                    operator=shard_op,
                    parent=op.name,
                    index=index,
                    total=total,
                    k_range=(k_lo, k_hi),
                    n_range=(n_lo, n_hi),
                )
            )
            index += 1
    return shards


def _make_shard(
    op: Operator,
    dims: MatmulDims,
    index: int,
    total: int,
    k_range: Tuple[int, int],
    n_range: Tuple[int, int],
    k_splits: int = 1,
    n_splits: int = 1,
) -> Operator:
    """Build a shard operator covering a (K, N) sub-block of ``op``.

    Shards are expressed as generic matmul-like operators so downstream
    stages (allocation, code generation, simulation) treat them uniformly.
    The shard inherits the parent's static/dynamic weight nature.
    """
    from .operators import Linear, MatMul

    k_lo, k_hi = k_range
    n_lo, n_hi = n_range
    sub_k = k_hi - k_lo
    sub_n = n_hi - n_lo
    dtype = op.outputs[0].dtype
    suffix = f"{op.name}::part{index}"
    lhs = TensorSpec(f"{suffix}_in", (dims.m, sub_k), dtype=dtype)
    out = TensorSpec(f"{suffix}_out", (dims.m, sub_n), dtype=dtype)
    if op.has_static_weight:
        weight = TensorSpec(f"{suffix}_w", (sub_k, sub_n), dtype=dtype)
        shard: Operator = Linear(suffix, input=lhs, output=out, weight=weight, bias=False)
    else:
        rhs = TensorSpec(f"{suffix}_rhs", (sub_k, sub_n), dtype=dtype)
        shard = MatMul(suffix, lhs=lhs, rhs=rhs, output=out)
    shard.attrs.update(
        {
            "parent": op.name,
            "parent_op_type": op.op_type,
            "partition_index": index,
            "partition_total": total,
            "k_range": [k_lo, k_hi],
            "n_range": [n_lo, n_hi],
            "k_splits": k_splits,
            "n_splits": n_splits,
        }
    )
    return shard


def lower_to_matmuls(graph: Graph) -> List[Operator]:
    """Return the CIM-mappable operators of a graph in topological order.

    This is the paper's ``Flatten(G)`` step in Algorithm 1: the network is
    reduced to the ordered list of operators the CIM arrays execute;
    auxiliary operators contribute their activation traffic to their
    nearest mappable successor via the cost model, not to the operator
    list itself.
    """
    return graph.cim_operators()


#: Auxiliary operator types that are fused into the neighbouring MVM/MMM by
#: every compiler under comparison (computed on the peripheral function
#: units as data streams past) and therefore add no extra memory traffic.
FUSEABLE_OP_TYPES = {"activation", "elementwise", "normalization"}


def fuse_auxiliary_traffic(graph: Graph) -> dict:
    """Attribute auxiliary-operator traffic to neighbouring mappable ops.

    Softmax, pooling, concatenation and embedding operators run on the
    peripheral function units while their activations still occupy buffer
    space and bandwidth; their output traffic is folded into the next
    CIM-mappable operator downstream (or the previous one upstream if they
    have no mappable successor).  Purely element-wise operators
    (activations, normalisation, residual adds) are fused into the
    producing MVM/MMM and add no traffic — the standard operator-fusion
    assumption shared by CMSwitch and all baselines.

    Returns:
        Mapping of mappable-operator name to extra streamed elements.
    """
    extra: dict = {op.name: 0 for op in graph.cim_operators()}
    order = graph.topological_order()
    mappable_names = set(extra)
    for op in order:
        if op.is_cim_mappable or op.is_view or op.op_type in FUSEABLE_OP_TYPES:
            continue
        target = _nearest_mappable(graph, op, mappable_names, forward=True)
        if target is None:
            target = _nearest_mappable(graph, op, mappable_names, forward=False)
        if target is not None:
            extra[target] += op.output_elements
    return extra


def _nearest_mappable(graph: Graph, op: Operator, names: set, forward: bool) -> Optional[str]:
    """Breadth-first search for the nearest CIM-mappable neighbour."""
    frontier = graph.successors(op) if forward else graph.predecessors(op)
    visited = {op.name}
    while frontier:
        next_frontier = []
        for candidate in frontier:
            if candidate.name in visited:
                continue
            visited.add(candidate.name)
            if candidate.name in names:
                return candidate.name
            next_frontier.extend(
                graph.successors(candidate) if forward else graph.predecessors(candidate)
            )
        frontier = next_frontier
    return None
