"""CMSwitch reproduction: a dual-mode-aware DNN compiler for CIM accelerators.

This package reproduces the system described in *"Be CIM or Be Memory: A
Dual-mode-aware DNN Compiler for CIM Accelerators"* (ASPLOS 2025): a
compiler that decides, per network segment, how many of a CIM chip's
dual-mode arrays should operate in compute mode (holding weights and
executing MVMs in place) and how many in memory mode (serving as on-chip
scratchpad for activations and KV caches), then schedules the network onto
the chip and emits a dual-mode meta-operator flow.

Quickstart (the :class:`~repro.api.Session` facade is the public API)::

    from repro.api import Session

    session = Session(hardware="dynaplasia")
    program = session.compile("resnet18")
    print(program.summary())

Sub-packages:

* :mod:`repro.api` -- the stable :class:`Session` facade over
  compile / batch / DSE / cache
* :mod:`repro.ir` -- computation-graph IR (ONNX-like substrate)
* :mod:`repro.models` -- benchmark model zoo and workload descriptions
* :mod:`repro.hardware` -- dual-mode hardware abstraction (DEHA) and presets
* :mod:`repro.cost` -- latency and mode-switch cost models
* :mod:`repro.core` -- the CMSwitch compiler (DP segmentation + MIP allocation)
* :mod:`repro.pipeline` -- the pass-based compile pipeline the compilers run
* :mod:`repro.baselines` -- PUMA / OCC / CIM-MLC as pipeline configurations
* :mod:`repro.sim` -- functional and timing simulators
* :mod:`repro.analysis`, :mod:`repro.experiments` -- paper figure/table harness
* :mod:`repro.eval` -- tiered candidate evaluation (analytical lower
  bounds / cached warm compiles / the full pipeline)
* :mod:`repro.dse` -- cache-aware, multi-fidelity design-space
  exploration engine
"""

from .api import Session
from .core.cache import AllocationCache
from .core.compiler import CMSwitchCompiler, CompilerOptions, NoFeasiblePlanError, compile_model
from .core.store import DiskCacheStore
from .core.program import CompiledProgram, SegmentPlan
from .hardware import DualModeHardwareAbstraction, dynaplasia, get_preset, prime, small_test_chip
from .models import Phase, Workload, build_model, list_models
from .pipeline import Pipeline, PipelineContext, build_pipeline
from .service import CompileJob, CompileJobResult, CompileService, compile_batch

__version__ = "0.4.0"

__all__ = [
    "AllocationCache",
    "CMSwitchCompiler",
    "CompileJob",
    "CompileJobResult",
    "CompileService",
    "CompiledProgram",
    "CompilerOptions",
    "DiskCacheStore",
    "DualModeHardwareAbstraction",
    "NoFeasiblePlanError",
    "Phase",
    "Pipeline",
    "PipelineContext",
    "SegmentPlan",
    "Session",
    "Workload",
    "__version__",
    "build_model",
    "build_pipeline",
    "compile_batch",
    "compile_model",
    "dynaplasia",
    "get_preset",
    "list_models",
    "prime",
    "small_test_chip",
]
