"""The named passes of the DACO compile pipeline.

Each pass is a small object with a stable :attr:`Pass.name`, an
:meth:`Pass.enabled` predicate (options-gated passes skip themselves and
show up as ``skip`` trace events) and a :meth:`Pass.run` that transforms
the shared :class:`~repro.pipeline.context.PipelineContext`.  The
standard CMSwitch sequence is::

    Flatten -> PartitionOversized -> Segment -> Allocate
            -> FixedModeFallback -> Refine -> Codegen

which is the paper's flatten / partition / DP segmentation / per-segment
MIP allocation / fallback arbitration / refinement accounting / DMO
code-generation flow, one stage per object.  The passes call exactly the
primitives the fused ``CMSwitchCompiler.compile`` called, in the same
order — the parity suite (``tests/test_api.py``) asserts the resulting
programs are bit-identical to the frozen pre-pipeline reference.
"""

from __future__ import annotations

import math
import time
from typing import Optional

from ..core.codegen import generate_program
from ..core.segmentation import (
    NetworkSegmenter,
    NoFeasiblePlanError,
    SegmentationResult,
    assign_liveness,
    choose_plan,
    expand_profiled,
    plan_cost,
    profile_graph,
)
from .context import PipelineContext

__all__ = [
    "Allocate",
    "Codegen",
    "FixedModeFallback",
    "Flatten",
    "PartitionOversized",
    "Pass",
    "Refine",
    "Segment",
]


class Pass:
    """One named, composable stage of a compile pipeline.

    Subclasses set :attr:`name` (unique within a pipeline — it keys the
    per-pass timing stats and the surgery API) and implement
    :meth:`run`.  Passes communicate exclusively through the context.
    """

    #: Stable identifier; keys ``pass_seconds`` and pipeline surgery.
    name: str = "pass"

    def enabled(self, ctx: PipelineContext) -> bool:
        """Whether this pass applies to the context (default: always)."""
        return True

    def run(self, ctx: PipelineContext) -> None:
        """Transform the context in place."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class Flatten(Pass):
    """Profile the CIM-mappable operators (auxiliary traffic folded in).

    Produces ``ctx.profiled`` — one :class:`ProfiledOperator` per
    mappable operator, oversized ones marked for partitioning.
    """

    name = "flatten"

    def run(self, ctx: PipelineContext) -> None:
        ctx.profiled = profile_graph(ctx.graph, ctx.hardware)


class PartitionOversized(Pass):
    """Shard operators whose stationary operand exceeds the chip.

    Greedy partitioning with the chip capacity as the budget (the
    paper's "determined by the available on-chip resources"), then
    liveness assignment.  Produces ``ctx.units``.
    """

    name = "partition"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.profiled is None:
            raise RuntimeError("PartitionOversized requires the Flatten pass first")
        ctx.units = assign_liveness(
            ctx.graph, expand_profiled(ctx.profiled, ctx.hardware)
        )


class Segment(Pass):
    """Mode-switch-aware DP segmentation (§4.3.1, Algorithm 1, Eq. 3).

    Runs the dynamic program over the flattened units and records the
    chosen boundaries.  The DP's cost oracle is the per-segment
    allocator, so this pass performs (and memoises) the allocation
    solves; ``Allocate`` then materialises plans from the memo.
    """

    name = "segment"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.units is None:
            raise RuntimeError("Segment requires the PartitionOversized pass first")
        options = ctx.options.to_segmentation_options()
        options.solve_memo = ctx.solve_memo
        options.obs = ctx.obs
        options.solver_pool = ctx.solver_pool
        ctx.segmenter = NetworkSegmenter(ctx.hardware, options, cache=ctx.cache)
        if not ctx.units:
            ctx.result = SegmentationResult([], [], 0.0, 0, 0)
            return
        ctx.boundaries = ctx.segmenter.choose_boundaries(ctx.graph, ctx.units)


class Allocate(Pass):
    """Materialise per-segment allocations into :class:`SegmentPlan` s.

    Serves every window from the DP's memo (no fresh solver work) and
    folds the segmenter's solve counters into the context.
    """

    name = "allocate"

    def run(self, ctx: PipelineContext) -> None:
        start = time.perf_counter()
        if ctx.result is not None and ctx.boundaries is None:
            # Empty graph: Segment already produced the empty result.
            self._absorb(ctx)
            return
        if ctx.segmenter is None or ctx.boundaries is None:
            raise RuntimeError("Allocate requires the Segment pass first")
        segments = ctx.segmenter.build_plans(ctx.units, ctx.boundaries)
        dp_seconds = ctx.pass_seconds.get(Segment.name, 0.0) + (
            time.perf_counter() - start
        )
        ctx.result = SegmentationResult(
            segments,
            list(ctx.units),
            dp_seconds,
            ctx.segmenter.allocation_calls,
            ctx.segmenter.cache_hits,
            ctx.segmenter.disk_hits,
            # getattr: test doubles replace the segmenter and predate the
            # speculative-solving counter.
            getattr(ctx.segmenter, "speculative_waste", 0),
        )
        self._absorb(ctx)

    @staticmethod
    def _absorb(ctx: PipelineContext) -> None:
        ctx.allocation_calls = ctx.result.allocation_calls
        ctx.cache_hits = ctx.result.cache_hits
        ctx.disk_hits = ctx.result.disk_hits
        ctx.dp_seconds = ctx.result.dp_seconds
        if ctx.result.speculative_waste:
            ctx.extras["speculative_waste"] = (
                ctx.extras.get("speculative_waste", 0)
                + ctx.result.speculative_waste
            )


class FixedModeFallback(Pass):
    """Evaluate the all-compute plan and keep whichever is faster.

    The dual-mode optimisation space strictly contains the fixed-mode
    space, so a production compiler never ships a plan worse than the
    fixed-mode one; the extra pass is part of CMSwitch's larger
    compilation time (Fig. 18).  Skipped when memory mode is disabled
    or the fallback is turned off.  The fallback segmenter shares the
    allocation cache, so it largely reuses the dual-mode pass's solves
    (cross-mode hits), and its solver work is accounted either way —
    even when it only proves fixed-mode infeasible.
    """

    name = "fixed_fallback"

    def enabled(self, ctx: PipelineContext) -> bool:
        return bool(
            ctx.options.allow_memory_mode and ctx.options.fixed_mode_fallback
        )

    def run(self, ctx: PipelineContext) -> None:
        if ctx.result is None:
            raise RuntimeError("FixedModeFallback requires the Allocate pass first")
        fixed_options = ctx.options.to_segmentation_options()
        fixed_options.allow_memory_mode = False
        fixed_options.solve_memo = ctx.solve_memo
        fixed_options.obs = ctx.obs
        fixed_options.solver_pool = ctx.solver_pool
        try:
            fixed_result = NetworkSegmenter(
                ctx.hardware, fixed_options, cache=ctx.cache
            ).segment(ctx.graph, units=ctx.units)
        except NoFeasiblePlanError as exc:
            # The fallback pass proving fixed-mode infeasible does not
            # invalidate the dual-mode plan — keep it, and keep the
            # fallback pass's solver work in the totals.
            ctx.allocation_calls += exc.stats.get("allocator_solves", 0)
            ctx.cache_hits += exc.stats.get("allocation_cache_hits", 0)
            ctx.disk_hits += exc.stats.get("allocation_disk_hits", 0)
            return
        ctx.allocation_calls += fixed_result.allocation_calls
        ctx.cache_hits += fixed_result.cache_hits
        ctx.disk_hits += fixed_result.disk_hits
        if fixed_result.speculative_waste:
            ctx.extras["speculative_waste"] = (
                ctx.extras.get("speculative_waste", 0)
                + fixed_result.speculative_waste
            )
        ctx.result, ctx.fallback_used = choose_plan(ctx.result, fixed_result)


class Refine(Pass):
    """Account for the weight-duplication refinement in the final plan.

    The duplication transform itself runs *inside* the per-segment
    allocator (:func:`repro.core.allocation.refine_with_spare_arrays`):
    the DP's cost oracle must see refined latencies to pick optimal
    boundaries, and the allocation cache keys on the refinement option —
    hoisting the transform out here would change both.  What this pass
    contributes is the refinement's visibility: per-plan counts of the
    spare arrays duplication consumed, surfaced as
    ``stats["refine_extra_compute_arrays"]``.  Skipped (and the stat
    absent) when refinement is off.
    """

    name = "refine"

    def enabled(self, ctx: PipelineContext) -> bool:
        return bool(ctx.options.refine)

    def run(self, ctx: PipelineContext) -> None:
        if ctx.result is None:
            raise RuntimeError("Refine requires the Allocate pass first")
        extra = 0
        for segment in ctx.result.segments:
            minimum = sum(
                max(1, profile.min_compute_arrays(ctx.hardware))
                for profile in segment.profiles.values()
            )
            extra += max(0, segment.compute_arrays - minimum)
        ctx.extras["refine_extra_compute_arrays"] = extra


class Codegen(Pass):
    """Lower the chosen plan to the dual-mode meta-operator flow (§4.4).

    Emits ``ctx.meta_program``; skipped when code generation is off.  An
    infeasible plan is left untouched — program finalisation raises
    :class:`NoFeasiblePlanError` for it, exactly as the fused compiler
    raised before reaching code generation.
    """

    name = "codegen"

    def enabled(self, ctx: PipelineContext) -> bool:
        return bool(ctx.options.generate_code)

    def run(self, ctx: PipelineContext) -> None:
        result = ctx.result
        if result is None or not result.segments:
            return
        if not math.isfinite(plan_cost(result)):
            return
        ctx.meta_program = generate_program(
            ctx.graph.name, result.segments, ctx.hardware
        )
