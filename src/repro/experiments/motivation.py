"""Motivation studies — Figs. 1(b), 5 and 6 of the paper.

These are pure analyses of the workloads and the latency model, with no
compiler in the loop:

* Fig. 1(b): normalised performance as the ratio of arrays in compute
  mode varies, for a mix of CNN and transformer workloads — the optima
  fall at very different ratios.
* Fig. 5(a)(b): the (compute, memory) heatmaps for LLaMA 2 and ResNet-50.
* Fig. 5(c): the average arithmetic intensity per model.
* Fig. 6(a): layer-wise arithmetic intensity of ResNet-50.
* Fig. 6(b): BERT-large arithmetic intensity per computation stage across
  sequence lengths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..analysis.intensity import (
    intensity_vs_sequence_length,
    layerwise_intensity,
    model_intensity_comparison,
)
from ..analysis.sweep import ModeRatioSweep, mode_allocation_heatmap, mode_ratio_sweep
from ..hardware.deha import DualModeHardwareAbstraction
from ..hardware.presets import dynaplasia
from ..models.registry import build_model
from ..models.workload import Phase, Workload

#: Models of the Fig. 1(b) sweep.
FIG1_MODELS: Sequence[str] = ("gpt2", "llama2-7b", "vgg16", "resnet50", "bert-base", "bert-large")

#: Models of the Fig. 5(c) intensity comparison.
FIG5_MODELS: Sequence[str] = ("llama2-7b", "vgg16", "resnet50", "bert-base", "bert-large")


def _motivation_workload(model: str) -> Workload:
    """Default workload used by the motivation figures."""
    if model.startswith(("llama", "gpt", "opt")):
        return Workload(batch_size=1, seq_len=64, phase=Phase.DECODE)
    if model.startswith("bert"):
        return Workload(batch_size=1, seq_len=64, phase=Phase.ENCODE)
    return Workload(batch_size=1)


def mode_ratio_curves(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = FIG1_MODELS,
    ratios: Optional[Sequence[float]] = None,
) -> Dict[str, ModeRatioSweep]:
    """Fig. 1(b): performance vs. compute-mode ratio per model."""
    hardware = hardware or dynaplasia(num_arrays=100)
    sweeps: Dict[str, ModeRatioSweep] = {}
    for model in models:
        graph = build_model(model, _motivation_workload(model))
        sweeps[model] = mode_ratio_sweep(graph, hardware, ratios)
    return sweeps


def allocation_heatmaps(
    hardware: Optional[DualModeHardwareAbstraction] = None,
    models: Sequence[str] = ("llama2-7b", "resnet50"),
    grid_points: int = 11,
) -> Dict[str, Dict[str, np.ndarray]]:
    """Fig. 5(a)(b): normalised-performance heatmaps over array counts."""
    hardware = hardware or dynaplasia(num_arrays=100)
    heatmaps: Dict[str, Dict[str, np.ndarray]] = {}
    for model in models:
        graph = build_model(model, _motivation_workload(model))
        compute_counts, memory_counts, heatmap = mode_allocation_heatmap(
            graph, hardware, grid_points=grid_points
        )
        heatmaps[model] = {
            "compute_counts": compute_counts,
            "memory_counts": memory_counts,
            "heatmap": heatmap,
        }
    return heatmaps


def intensity_comparison(models: Sequence[str] = FIG5_MODELS) -> Dict[str, float]:
    """Fig. 5(c): average arithmetic intensity per model."""
    return model_intensity_comparison(models)


def resnet_layer_intensity() -> List[Dict]:
    """Fig. 6(a): layer-wise arithmetic intensity of ResNet-50."""
    graph = build_model("resnet50", Workload(batch_size=1))
    rows = []
    for index, layer in enumerate(layerwise_intensity(graph)):
        rows.append(
            {
                "index": index,
                "operator": layer.operator,
                "op_type": layer.op_type,
                "intensity": layer.intensity,
            }
        )
    return rows


def bert_intensity_vs_sequence(
    sequence_lengths: Sequence[int] = (128, 512, 4096),
) -> Dict[int, Dict[str, float]]:
    """Fig. 6(b): BERT-large stage intensity across sequence lengths."""
    return intensity_vs_sequence_length("bert-large", sequence_lengths)


def main() -> None:  # pragma: no cover - convenience CLI
    """Print compact versions of the motivation figures."""
    print("Fig. 1(b): best compute-mode ratio per model")
    for model, sweep in mode_ratio_curves().items():
        print(f"  {model:12s} best ratio = {sweep.best_ratio:.2f}")
    print("\nFig. 5(c): average arithmetic intensity")
    for model, value in intensity_comparison().items():
        print(f"  {model:12s} {value:8.1f} FLOPs/element")
    print("\nFig. 6(b): BERT-large intensity vs sequence length")
    for seq_len, stages in bert_intensity_vs_sequence().items():
        parts = ", ".join(f"{k}={v:.0f}" for k, v in sorted(stages.items()))
        print(f"  seq {seq_len:5d}: {parts}")


if __name__ == "__main__":  # pragma: no cover
    main()
