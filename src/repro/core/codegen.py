"""Lowering segment plans to the meta-operator flow (code generation).

This is the engine behind the pipeline's ``Codegen`` pass
(:class:`repro.pipeline.passes.Codegen` for CMSwitch,
:class:`repro.baselines.passes.BaselineCodegen` for the baselines).
The code generator walks the segment plans produced by the DP + MIP
optimisation, assigns *physical* array indices on a
:class:`~repro.hardware.chip.CIMChip`, and emits the meta-operator flow of
§4.4: mode switches only for arrays whose mode actually changes, weight
loads for static operands, memory read/write operators for streamed data
and one ``parallel { ... }`` block per segment.

Physical assignment greedily reuses arrays that are already in the target
mode, which is what keeps the number of emitted ``CM.switch`` operators —
and therefore the run-time switching overhead — low (§5.5 reports 3–5 %).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware.chip import CIMChip
from ..hardware.deha import ArrayMode, DualModeHardwareAbstraction
from .metaop import (
    ComputeOp,
    MemoryReadOp,
    MemoryWriteOp,
    MetaProgram,
    ParallelBlock,
    SwitchOp,
    SwitchType,
    WeightLoadOp,
)
from .program import SegmentPlan


class CodeGenerationError(RuntimeError):
    """Raised when a segment plan cannot be placed onto the chip."""


def _take_arrays(
    chip: CIMChip, count: int, mode: ArrayMode, owner: str
) -> Tuple[List[int], List[int]]:
    """Claim ``count`` free arrays for ``owner``; prefer mode matches.

    Returns:
        ``(indices, switched)`` — all claimed indices and the subset whose
        mode had to change.
    """
    free = chip.free_arrays()
    if len(free) < count:
        raise CodeGenerationError(
            f"segment needs {count} arrays for {owner!r} but only {len(free)} are free"
        )
    free.sort(key=lambda array: (array.mode is not mode, array.index))
    chosen = free[:count]
    switched = [array.index for array in chosen if array.mode is not mode]
    indices = [array.index for array in chosen]
    chip.assign(indices, owner=owner, mode=mode, content=owner)
    return indices, switched


def generate_program(
    graph_name: str,
    segments: Sequence[SegmentPlan],
    hardware: DualModeHardwareAbstraction,
    chip: Optional[CIMChip] = None,
) -> MetaProgram:
    """Lower segment plans to a :class:`MetaProgram`.

    Args:
        graph_name: Name recorded in the program header.
        segments: Segment plans in execution order.
        hardware: Hardware abstraction (used to create the chip model when
            ``chip`` is not supplied).
        chip: Optional pre-existing chip state to generate against.

    Raises:
        CodeGenerationError: If a segment requires more arrays than exist.
    """
    chip = chip or CIMChip(hardware)
    program = MetaProgram(graph_name=graph_name)

    for segment in segments:
        # Release the previous segment's ownership but keep array modes, so
        # mode reuse across segments minimises switching.
        for array in chip.arrays:
            array.owner = None
            array.content = None

        block = ParallelBlock(segment_index=segment.index)
        switch_to_compute: List[int] = []
        switch_to_memory: List[int] = []
        placements: Dict[str, Dict[str, List[int]]] = {}

        for name in segment.operator_names:
            allocation = segment.allocations[name]
            profile = segment.profiles[name]
            compute_indices: List[int] = []
            memory_indices: List[int] = []
            if allocation.compute_arrays > 0:
                compute_indices, switched = _take_arrays(
                    chip, allocation.compute_arrays, ArrayMode.COMPUTE, name
                )
                switch_to_compute.extend(switched)
            if allocation.memory_arrays > 0:
                memory_indices, switched = _take_arrays(
                    chip, allocation.memory_arrays, ArrayMode.MEMORY, name
                )
                switch_to_memory.extend(switched)
            placements[name] = {"compute": compute_indices, "memory": memory_indices}

        # Mode switches are issued before the segment body (step 2 of the
        # inter-segment procedure, Fig. 10).
        if switch_to_compute:
            block.append(SwitchOp(SwitchType.TO_COMPUTE, tuple(sorted(switch_to_compute))))
        if switch_to_memory:
            block.append(SwitchOp(SwitchType.TO_MEMORY, tuple(sorted(switch_to_memory))))

        # Weight loads, data movement and compute, operator by operator.
        for name in segment.operator_names:
            profile = segment.profiles[name]
            placement = placements[name]
            if profile.has_static_weight and placement["compute"]:
                block.append(
                    WeightLoadOp(
                        operator=name,
                        array_addresses=tuple(placement["compute"]),
                        elements=profile.weight_elements,
                    )
                )
            source = "cim-memory" if placement["memory"] else "main-memory"
            block.append(
                MemoryReadOp(
                    operator=name,
                    elements=profile.streamed_input_elements + profile.extra_streamed_elements,
                    source=source,
                    array_addresses=tuple(placement["memory"]),
                )
            )
            block.append(
                ComputeOp(
                    operator=name,
                    array_addresses=tuple(placement["compute"]),
                    macs=profile.macs,
                    m=profile.matmul_m,
                    k=profile.matmul_k,
                    n=profile.matmul_n,
                )
            )
            destination = "cim-memory" if placement["memory"] else "main-memory"
            block.append(
                MemoryWriteOp(
                    operator=name,
                    elements=profile.output_elements,
                    destination=destination,
                    array_addresses=tuple(placement["memory"]),
                )
            )
        program.append(block)
    return program
