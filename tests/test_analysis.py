"""Tests for the motivation analyses (arithmetic intensity and mode sweeps)."""

import numpy as np
import pytest

from repro.analysis import (
    intensity_vs_sequence_length,
    layerwise_intensity,
    mode_allocation_heatmap,
    mode_ratio_sweep,
    model_arithmetic_intensity,
    model_intensity_comparison,
    stage_of,
    transformer_stage_intensity,
)
from repro.analysis.sweep import ModeRatioSweep
from repro.hardware import dynaplasia, small_test_chip
from repro.models import Phase, Workload, build_model


@pytest.fixture(scope="module")
def motivation_chip():
    return dynaplasia(num_arrays=100)


class TestArithmeticIntensity:
    def test_cnn_intensity_far_above_llm_decode(self):
        resnet = build_model("resnet50", Workload(batch_size=1))
        llama = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.DECODE))
        assert model_arithmetic_intensity(resnet) > 50
        assert model_arithmetic_intensity(llama) < 5

    def test_llama_decode_intensity_close_to_two(self):
        llama = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.DECODE))
        assert 1.0 < model_arithmetic_intensity(llama) < 4.0

    def test_layerwise_intensity_varies_within_resnet(self):
        rows = layerwise_intensity(build_model("resnet50", Workload(batch_size=1)))
        intensities = [row.intensity for row in rows if row.op_type == "conv2d"]
        assert max(intensities) > 5 * min(intensities)

    def test_layerwise_rows_cover_cim_operators(self, tiny_transformer_graph):
        rows = layerwise_intensity(tiny_transformer_graph)
        assert len(rows) == len(tiny_transformer_graph.cim_operators())

    def test_stage_classification(self):
        assert stage_of("layer0_q_proj") == "MHA (QKV)"
        assert stage_of("layer0_qk") == "MHA (QKV)"
        assert stage_of("layer0_o_proj") == "MHA (FC)"
        assert stage_of("layer3_ffn_fc1") == "FFN (FC)"
        assert stage_of("classifier") == "Other"

    def test_stage_intensity_keys(self, tiny_transformer_graph):
        stages = transformer_stage_intensity(tiny_transformer_graph)
        assert "MHA (QKV)" in stages and "FFN (FC)" in stages
        assert all(value >= 0 for value in stages.values())

    def test_bert_intensity_grows_with_sequence_length(self):
        results = intensity_vs_sequence_length("bert-large", (128, 1024), batch_size=1)
        assert results[1024]["model"] > results[128]["model"]

    def test_ffn_intensity_above_qkv_at_long_sequences(self):
        results = intensity_vs_sequence_length("bert-large", (2048,), batch_size=1)
        stages = results[2048]
        assert stages["FFN (FC)"] > stages["MHA (QKV)"]

    def test_model_comparison_ordering(self):
        comparison = model_intensity_comparison(("resnet50", "vgg16", "llama2-7b"))
        assert comparison["resnet50"] > comparison["llama2-7b"]
        assert comparison["vgg16"] > comparison["llama2-7b"]

    def test_model_comparison_rejects_empty_list(self):
        with pytest.raises(ValueError, match="at least one model"):
            model_intensity_comparison(())


class TestModeRatioSweep:
    def test_resnet_prefers_compute_heavy_split(self, motivation_chip):
        graph = build_model("resnet50", Workload(batch_size=1))
        sweep = mode_ratio_sweep(graph, motivation_chip)
        assert sweep.best_ratio >= 0.5

    def test_llama_decode_prefers_memory_heavy_split(self, motivation_chip):
        graph = build_model("llama2-7b", Workload(batch_size=1, seq_len=64, phase=Phase.DECODE))
        sweep = mode_ratio_sweep(graph, motivation_chip)
        assert sweep.best_ratio <= 0.3

    def test_normalized_performance_peaks_at_one(self, motivation_chip, tiny_cnn_graph):
        sweep = mode_ratio_sweep(tiny_cnn_graph, motivation_chip)
        normalized = sweep.normalized_performance
        assert max(normalized) == pytest.approx(1.0)
        assert all(0.0 <= value <= 1.0 + 1e-9 for value in normalized)

    def test_custom_ratio_grid(self, motivation_chip, tiny_cnn_graph):
        sweep = mode_ratio_sweep(tiny_cnn_graph, motivation_chip, ratios=(0.2, 0.5, 0.8))
        assert sweep.ratios == [0.2, 0.5, 0.8]
        assert len(sweep.latencies) == 3

    def test_block_repeat_scales_latency_not_shape(self, motivation_chip):
        graph = build_model("bert", Workload(batch_size=1, seq_len=64, phase=Phase.ENCODE))
        sweep = mode_ratio_sweep(graph, motivation_chip)
        assert all(lat > 0 for lat in sweep.latencies)

    def test_best_ratio_tie_breaks_to_lowest_compute_ratio(self):
        # Equal-latency samples: the lowest compute ratio must win (same
        # performance with fewer compute-mode arrays), regardless of the
        # order the ratios were sampled in.
        sweep = ModeRatioSweep(model="t", ratios=[0.2, 0.5, 0.8], latencies=[7.0, 7.0, 9.0])
        assert sweep.best_ratio == 0.2
        shuffled = ModeRatioSweep(model="t", ratios=[0.8, 0.5, 0.2], latencies=[9.0, 7.0, 7.0])
        assert shuffled.best_ratio == 0.2

    def test_best_ratio_ignores_nonfinite_samples(self):
        sweep = ModeRatioSweep(
            model="t",
            ratios=[0.1, 0.4, 0.7],
            latencies=[float("inf"), float("nan"), 5.0],
        )
        assert sweep.best_ratio == 0.7

    def test_best_ratio_raises_when_nothing_feasible(self):
        sweep = ModeRatioSweep(
            model="t", ratios=[0.1, 0.9], latencies=[float("inf"), float("nan")]
        )
        with pytest.raises(ValueError, match="no feasible sample"):
            sweep.best_ratio
        with pytest.raises(ValueError, match="no feasible sample"):
            sweep.normalized_performance


class TestHeatmap:
    def test_heatmap_shape_and_range(self, motivation_chip, tiny_cnn_graph):
        compute_counts, memory_counts, heatmap = mode_allocation_heatmap(
            tiny_cnn_graph, motivation_chip, grid_points=6
        )
        assert heatmap.shape == (len(compute_counts), len(memory_counts))
        assert np.nanmax(heatmap) == pytest.approx(1.0)
        assert (heatmap >= 0).all() and (heatmap <= 1.0 + 1e-9).all()

    def test_infeasible_cells_are_zero(self, motivation_chip, tiny_cnn_graph):
        compute_counts, memory_counts, heatmap = mode_allocation_heatmap(
            tiny_cnn_graph, motivation_chip, grid_points=6
        )
        # The bottom-right corner exceeds the chip (compute + memory > N).
        assert heatmap[-1, -1] == 0.0

    def test_compiled_array_sweep_propagates_genuine_bugs(self, tiny_mlp_graph):
        # A broken compile must raise, never masquerade as an infeasible
        # design point.  Bad options are rejected at construction time
        # now, so smuggle the bad value in by mutation — the sweep still
        # surfaces it (the DSE runner re-validates when it clones the
        # options per job) instead of reporting an infeasible chip.
        from repro.analysis import compiled_array_sweep
        from repro.core import CompilerOptions

        bad = CompilerOptions(generate_code=False)
        bad.max_segment_operators = "boom"
        with pytest.raises(ValueError, match="max_segment_operators"):
            compiled_array_sweep(tiny_mlp_graph, small_test_chip(), (4,), options=bad)

    def test_compiler_options_validated_at_construction(self):
        # The historical failure mode for a bad DP window was a TypeError
        # deep inside the dynamic program; it is a named error now.
        from repro.core import CompilerOptions, SegmentationOptions

        with pytest.raises(ValueError, match="max_segment_operators"):
            CompilerOptions(max_segment_operators="boom")
        with pytest.raises(ValueError, match="max_segment_operators"):
            CompilerOptions(max_segment_operators=0)
        with pytest.raises(ValueError, match="max_segment_operators"):
            SegmentationOptions(max_segment_operators=-3)

    def test_single_array_chip_degenerates_gracefully(self, tiny_mlp_graph):
        # A 1-array chip collapses the compute axis to [1] and the memory
        # axis to [0, 1]; the only legal cell (1 compute, 0 memory) must
        # carry the peak, and the (1, 1) cell (over the chip) must be 0.
        chip = small_test_chip(num_arrays=1)
        compute_counts, memory_counts, heatmap = mode_allocation_heatmap(
            tiny_mlp_graph, chip, grid_points=5
        )
        assert list(compute_counts) == [1]
        assert list(memory_counts) == [0, 1]
        assert heatmap.shape == (1, 2)
        assert heatmap[0, 0] == pytest.approx(1.0)
        assert heatmap[0, 1] == 0.0
