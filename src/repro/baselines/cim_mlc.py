"""CIM-MLC-style baseline compiler (Qu et al., ASPLOS 2024).

CIM-MLC is the paper's main baseline and the state of the art it builds
on: a multi-level compilation stack with **multi-grained pipelining and
operator duplication**.  CMSwitch explicitly adopts CIM-MLC's kernel
optimisations, so this baseline is literally a *configuration* of the
CMSwitch pass pipeline (:mod:`repro.pipeline`) — the same ``Flatten``,
``PartitionOversized``, ``Segment``, ``Allocate``, ``Refine`` and
``Codegen`` passes — with a single difference: every array is pinned to
compute mode (``allow_memory_mode=False``, which also disables the
``FixedModeFallback`` pass, the plan already being fixed-mode).  Any
performance difference between the two is therefore attributable to the
dual-mode dimension of the optimisation space, which is exactly the
comparison the paper makes.
"""

from __future__ import annotations

from typing import Optional

from ..core.compiler import CMSwitchCompiler, CompilerOptions
from ..core.program import CompiledProgram
from ..hardware.deha import DualModeHardwareAbstraction
from ..ir.graph import Graph


class CIMMLCCompiler:
    """DP segmentation + pipelining + duplication with fixed compute mode."""

    name = "cim-mlc"

    def __init__(
        self,
        hardware: DualModeHardwareAbstraction,
        options: Optional[CompilerOptions] = None,
        generate_code: bool = False,
    ) -> None:
        base = options or CompilerOptions()
        self.options = CompilerOptions(
            max_segment_operators=base.max_segment_operators,
            pipelined=True,
            include_switch_cost=base.include_switch_cost,
            use_milp=base.use_milp,
            refine=base.refine,
            allow_memory_mode=False,
            generate_code=generate_code,
        )
        self.hardware = hardware
        self._inner = CMSwitchCompiler(hardware, self.options)

    def compile(self, graph: Graph) -> CompiledProgram:
        """Compile ``graph`` with the fixed-mode CIM-MLC strategy."""
        program = self._inner.compile(graph)
        program.compiler_name = self.name
        return program
