#!/usr/bin/env python3
"""Design-space exploration with the dual-mode hardware abstraction.

Because the compiler only sees the chip through the DEHA parameters, it
doubles as an architecture-exploration tool: sweep the array count, the
mode split or the workload and watch how the optimal compute/memory
split and the achievable latency move.  This example drives the
first-class DSE engine (:mod:`repro.dse`) instead of hand-rolled loops:

* reproduces the motivation sweep (how the best compute-mode ratio
  differs between ResNet-50 and LLaMA 2, Fig. 1(b)),
* compares the DynaPlasia-like target against a PRIME-like ReRAM chip
  (the §5.5 scalability study),
* explores a (array count x mode split) design space for ResNet-18 with
  the grid strategy and prints the latency/energy/arrays Pareto
  frontier — every design point shares the two-tier allocation cache,
  so the fixed-mode pass reuses dual-mode solves and re-running the
  exploration is nearly free.

Run with ``python examples/design_space_exploration.py``.  Pass a
directory as the first argument to persist the allocation cache there:
re-running the script (or widening the sweep, or fanning it out across
processes) then reuses every solve the previous run already did, and the
DSE planner schedules the warm points first.
"""

import sys

from repro.analysis import mode_ratio_sweep
from repro.baselines import CIMMLCCompiler
from repro.dse import DesignSpace, DSERunner
from repro.experiments import prime_scalability
from repro.hardware import dynaplasia
from repro.models import Phase, Workload, build_model


def motivation_sweep() -> None:
    """Best compute-mode ratio per model (Fig. 1(b))."""
    hardware = dynaplasia(num_arrays=100)
    print("best compute-mode ratio on a 100-array chip:")
    for model, phase in (("resnet50", Phase.PREFILL), ("llama2-7b", Phase.DECODE)):
        graph = build_model(model, Workload(batch_size=1, seq_len=64, phase=phase))
        sweep = mode_ratio_sweep(graph, hardware)
        print(f"  {model:12s} -> {sweep.best_ratio * 100:4.0f}% compute mode")
    print()


def prime_comparison() -> None:
    """CMSwitch on a PRIME-like ReRAM target (§5.5)."""
    print("PRIME-like ReRAM target (speedup of CMSwitch over CIM-MLC):")
    for row in prime_scalability():
        print(f"  {row['model']:12s} {row['speedup_vs_cim-mlc']:.2f}x "
              f"(memory-array ratio {row['memory_array_ratio'] * 100:.1f}%)")
    print()


def array_count_exploration(cache_dir=None) -> None:
    """Explore (array count x mode split) for ResNet-18 with repro.dse.

    The whole space runs through one :class:`DSERunner`: the planner
    collapses structurally identical candidates, probes the persistent
    store so warm points are compiled first, and every point's
    fixed-mode fallback pass reuses the dual-mode MILP solves through
    the shared allocation cache.  With a ``cache_dir`` the reuse
    survives across script invocations and processes.
    """
    graph = build_model("resnet18", Workload(batch_size=1))
    space = DesignSpace(
        models=[graph],
        base_hardware=dynaplasia(),
        hardware_axes={"num_arrays": [32, 64, 96, 128, 192]},
        option_axes={"allow_memory_mode": [True, False]},
    )
    runner = DSERunner(space, strategy="grid", objective="latency", cache_dir=cache_dir)
    result = runner.run()

    print("ResNet-18 design space (DynaPlasia-like base, CMSwitch vs CIM-MLC):")
    for record in result.records:
        if not record.allow_memory_mode or not record.feasible:
            continue
        hardware = dynaplasia(num_arrays=record.num_arrays)
        mlc = CIMMLCCompiler(hardware).compile(graph)
        print(f"  {record.num_arrays:4d} arrays: CMSwitch {record.latency_ms:7.3f} ms, "
              f"CIM-MLC {mlc.end_to_end_ms:7.3f} ms "
              f"({mlc.end_to_end_cycles / record.cycles:.2f}x, "
              f"{record.allocator_solves} solves, {record.disk_hits} disk hits)")
    print()
    print(result.render_report())
    print(result.summary())
    print()


def main() -> None:
    cache_dir = sys.argv[1] if len(sys.argv) > 1 else None
    motivation_sweep()
    prime_comparison()
    array_count_exploration(cache_dir)


if __name__ == "__main__":
    main()
